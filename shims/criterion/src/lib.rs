#![warn(missing_docs)]
//! Offline drop-in replacement for the subset of the `criterion` API the
//! workspace's benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases the dependency name `criterion` to this crate. Bench files keep
//! their imports, `criterion_group!` / `criterion_main!` wiring, and
//! closure structure unchanged.
//!
//! Measurement is deliberately simple: a short warmup, then a timed batch
//! sized to the configured measurement window, reporting the mean
//! iteration time. There is no statistical analysis, outlier detection, or
//! HTML report — the point is that `cargo bench` builds, runs every bench
//! path, and prints comparable numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion accepted by `bench_function` — string names or full
/// [`BenchmarkId`]s, as in real criterion.
pub trait IntoBenchmarkId {
    /// Convert to the printable id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// The timing harness handed to bench closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`, first warming up, then running as many iterations
    /// as fit in the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: run until ~1/8 of the window has passed.
        let warmup_budget = self.measurement_time / 8;
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters as u32;
        let budget = self.measurement_time - warmup_budget;
        let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.0);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut b);
        let mean = if b.iters_done == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters_done as u32
        };
        println!("{full:<60} {mean:>12.2?}/iter ({} iters)", b.iters_done);
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        self.run(id.into_benchmark_id(), f);
    }

    /// Benchmark a closure that receives a reference to a fixed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id.into_benchmark_id(), |b| f(b, input));
    }

    /// Tolerated configuration hook; the shim sizes batches by time, not
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level bench driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Substring filter: `cargo bench -- <name>`. Harness flags cargo
        // passes (`--bench`, `--test`) and `--option=value` forms are
        // ignored rather than rejected.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            measurement_time: Duration::from_millis(400),
            filter,
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            criterion: self,
        };
        g.run(id.into_benchmark_id(), f);
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }
}

/// Define a bench group: a named function that runs each bench fn in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("smoke");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        g.bench_with_input(BenchmarkId::from_parameter(42), &7u64, |b, &i| {
            b.iter(|| std::hint::black_box(i * 2));
        });
        g.finish();
        assert!(ran);
    }
}
