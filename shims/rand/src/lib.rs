#![warn(missing_docs)]
//! Offline drop-in replacement for the subset of the `rand` 0.9 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases the dependency name `rand` to this crate (see
//! `[workspace.dependencies]` in the root manifest). Source files keep
//! their `use rand::...` imports unchanged.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms and runs, which is what the data generators and the
//! experiment harnesses rely on. Only the API surface actually used by the
//! workspace is provided: [`Rng::random_range`], [`Rng::random`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, uniform `bool`, full-width integers).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types constructible from a fixed seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type; mirrors `rand::distr::uniform`.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a canonical "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Sample uniformly from `[0, n)` without modulo bias (Lemire rejection).
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
