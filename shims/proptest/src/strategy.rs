//! The [`Strategy`] trait and the concrete strategies this workspace uses:
//! ranges, [`Just`], tuples, regex-subset strings, map/flat-map/filter
//! combinators, [`BoxedStrategy`], and [`Union`] (the engine behind
//! `prop_oneof!`).

use std::fmt::Debug;
use std::sync::Arc;

use rand::Rng;

use crate::{DynSampler, TestRng};

/// A generator of test inputs. Unlike real proptest this is a plain
/// sampler — there is no value tree and no shrinking.
pub trait Strategy {
    /// The type of value produced.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every produced value.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produce a new strategy from every produced value and draw from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`; other draws are retried.
    ///
    /// # Panics
    /// Panics if 10 000 consecutive draws are all rejected, which signals a
    /// filter that is too strict to ever be practical.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// Strategies are sampled through shared references inside `proptest!`, so
/// a reference to a strategy is itself a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A `Vec` of strategies samples element-wise, as in real proptest.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive draws: {}", self.reason);
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(DynSampler<T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between several strategies of the same value type; the
/// expansion target of `prop_oneof!`.
#[derive(Debug, Clone)]
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
        Union(alternatives)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.0.len());
        self.0[i].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! range_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---------------------------------------------------------------------------
// Tuples (arity 1–6)
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy_impls {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies (`"[a-z][a-z0-9_]{0,8}"`)
// ---------------------------------------------------------------------------

/// One repeated unit of the pattern: a set of inclusive char ranges plus a
/// repetition count range.
#[derive(Debug, Clone)]
struct Piece {
    ranges: Vec<(u32, u32)>,
    min: usize,
    max: usize,
}

/// Parse the regex subset used by the workspace's tests: literal
/// characters, character classes (`[a-z0-9_]`), and `{m}` / `{m,n}`
/// repetition. Anything else panics with the offending pattern.
fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo as u32, chars[i + 2] as u32));
                        i += 3;
                    } else {
                        ranges.push((lo as u32, lo as u32));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in regex strategy {pattern:?}"
                );
                i += 1; // consume ']'
                pieces.push(Piece {
                    ranges,
                    min: 1,
                    max: 1,
                });
            }
            '{' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                let (min, max) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repetition min"),
                        hi.parse().expect("repetition max"),
                    ),
                    None => {
                        let n = spec.parse().expect("repetition count");
                        (n, n)
                    }
                };
                let last = pieces
                    .last_mut()
                    .unwrap_or_else(|| panic!("repetition without a piece in {pattern:?}"));
                last.min = min;
                last.max = max;
                i = close + 1;
            }
            c => {
                assert!(
                    !"\\^$.|?*+()".contains(c),
                    "unsupported regex construct {c:?} in strategy {pattern:?}"
                );
                pieces.push(Piece {
                    ranges: vec![(c as u32, c as u32)],
                    min: 1,
                    max: 1,
                });
                i += 1;
            }
        }
    }
    pieces
}

fn sample_piece(piece: &Piece, rng: &mut TestRng, out: &mut String) {
    let n = piece.min + rng.index(piece.max - piece.min + 1);
    let total: u32 = piece.ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
    for _ in 0..n {
        let mut k = rng.index(total as usize) as u32;
        for &(lo, hi) in &piece.ranges {
            let span = hi - lo + 1;
            if k < span {
                out.push(char::from_u32(lo + k).expect("valid char"));
                break;
            }
            k -= span;
        }
    }
}

/// String literals are regex strategies, as in real proptest
/// (`"[a-z][a-z0-9_]{0,8}"` in a `proptest!` header).
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            sample_piece(piece, rng, &mut out);
        }
        out
    }
}
