#![warn(missing_docs)]
//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases the dependency name `proptest` to this crate. Property tests
//! keep their `use proptest::prelude::*;` imports and `proptest! { ... }`
//! blocks unchanged.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the test name, case index,
//!   and the deterministic per-test seed; re-running reproduces it exactly.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG seed
//!   from the test function name (FNV-1a), so runs are reproducible across
//!   machines and CI — there is no `proptest-regressions` persistence.
//! * **Sampling only.** [`Strategy`] is a sampler, not a value tree.
//!
//! Supported surface: range strategies, tuples (arity ≤ 6), [`Just`],
//! `any::<bool>()`, simple regex string strategies (character classes with
//! `{m,n}` repetition), [`collection::vec`], [`collection::btree_map`],
//! [`option::of`], [`bool::weighted`], `prop_map` / `prop_flat_map` /
//! `prop_filter` / `boxed`, `prop_oneof!`, `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, and [`ProptestConfig::with_cases`].

use std::fmt::Debug;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// The RNG handed to strategies while sampling.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator for a given seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.random()
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.0.random_range(0..n)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// FNV-1a hash of a test name; the per-test deterministic seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// The sampled inputs do not satisfy a precondition (`prop_assume!`);
    /// the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Per-case result type used by `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Maximum `prop_assume!`/filter rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Drives one property: samples inputs and runs the body until the
/// configured number of cases pass. Used by the `proptest!` expansion.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut rng = TestRng::from_seed(seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u32;
    while passed < config.cases {
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}`: too many rejected cases \
                         ({rejected} rejects after {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {attempt} \
                     (deterministic seed {seed:#x}): {msg}",
                    seed = seed_for(name),
                );
            }
        }
    }
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = crate::bool::Weighted;
    fn arbitrary() -> Self::Strategy {
        crate::bool::weighted(0.5)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeMap;

    /// Length specification for collection strategies: a fixed `usize` or
    /// a (half-open or inclusive) range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo {
                self.lo
            } else {
                self.lo + rng.index(self.hi - self.lo + 1)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size` elements sampled from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with keys from `key` and values from `val`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        size: SizeRange,
    }

    /// `BTreeMap` with up to `size` entries (duplicate keys collapse, as in
    /// real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        val: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            val,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord + Clone,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.sample(rng), self.val.sample(rng));
            }
            out
        }
    }
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Some` with probability 3/4, `None` otherwise (matching proptest's
    /// default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < 0.75 {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

/// `bool` strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for biased booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.0
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig, TestCaseError, TestCaseResult, TestRng,
    };
    /// Alias so `prop::collection::vec(...)`-style paths work.
    pub mod prop {
        pub use crate::{bool, collection, option};
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking) so the runner can report the case number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: left = {:?}, right = {:?} at {}:{}",
                stringify!($a), stringify!($b), a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({}): left = {:?}, right = {:?} at {}:{}",
                stringify!($a), stringify!($b), format!($($fmt)*), a, b, file!(), line!()
            )));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`: both = {:?} at {}:{}",
                stringify!($a), stringify!($b), a, file!(), line!()
            )));
        }
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: a block of `#[test]` functions whose arguments
/// are drawn from strategies (`pattern in strategy`). Mirrors
/// `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |__rng| {
                $(let $pat = $crate::Strategy::sample(&{ $strategy }, __rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

// ---------------------------------------------------------------------------
// Boxed strategy plumbing that needs crate-level items.
// ---------------------------------------------------------------------------

pub(crate) type DynSampler<T> = Arc<dyn Fn(&mut TestRng) -> T + Send + Sync>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_sample() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..10, 5usize..=5).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::collection::vec(0u8..4, 1..=3);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::from_seed(3);
        let s = "[a-z][a-z0-9_]{0,8}";
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(!v.is_empty() && v.len() <= 9, "{v:?}");
            let mut chars = v.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_seed(4);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != 99);
            prop_assert!(a + b < 200);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_case_info() {
        crate::run_property(
            "failing",
            &ProptestConfig::with_cases(8),
            |_| Err(TestCaseError::fail("boom")),
        );
    }
}
