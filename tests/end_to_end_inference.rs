//! End-to-end integration: probabilistic inference (Section 4) and
//! workload optimization (Section 6) against brute-force oracles.

use mpf::algebra::{ops, ExecContext};
use mpf::infer::{acyclic, bp, triangulate, BayesNet, JunctionTree, VariableGraph, VeCache};
use mpf::optimizer::{Algorithm, Heuristic};
use mpf::semiring::{approx_eq, SemiringKind};
use mpf::storage::FunctionalRelation;

/// Posterior via optimized MPF query == posterior via enumeration, across
/// random networks, targets, and algorithms.
#[test]
fn random_networks_posteriors_match_enumeration() {
    for seed in 0..6 {
        let bn = BayesNet::random(7, 2, 2, seed);
        let joint = bn.joint().unwrap();
        let sr = SemiringKind::SumProduct;
        let nodes = bn.nodes().to_vec();
        let target = nodes[(seed as usize) % nodes.len()];
        let evidence_var = nodes[(seed as usize + 3) % nodes.len()];
        if evidence_var == target {
            continue;
        }

        // Oracle.
        let cx = &mut ExecContext::new(sr);
        let cond = ops::select_eq(cx, &joint, &[(evidence_var, 1)]).unwrap();
        let marg = ops::group_by(cx, &cond, &[target]).unwrap();
        let z: f64 = marg.measures().iter().sum();
        let want: Vec<f64> = (0..2)
            .map(|v| marg.lookup(&[v]).unwrap_or(0.0) / z)
            .collect();

        for algo in [
            Algorithm::Cs,
            Algorithm::CsPlusLinear,
            Algorithm::CsPlusNonlinear,
            Algorithm::Ve(Heuristic::Degree),
            Algorithm::Ve(Heuristic::Width),
            Algorithm::VePlus(Heuristic::ElimCost),
            Algorithm::Ve(Heuristic::Random(seed)),
        ] {
            let got = bn.posterior(target, &[(evidence_var, 1)], algo).unwrap();
            for v in 0..2 {
                assert!(
                    approx_eq(got[v], want[v]),
                    "seed {seed} {}: Pr={got:?} want {want:?}",
                    algo.label()
                );
            }
        }
    }
}

/// VE-cache over a Bayesian network answers every marginal exactly, and the
/// junction-tree path (BP over populated cliques) agrees.
#[test]
fn cache_and_junction_tree_agree_on_marginals() {
    for seed in [1, 5, 9] {
        let bn = BayesNet::random(6, 2, 2, seed);
        let sr = SemiringKind::SumProduct;
        let cpts: Vec<&FunctionalRelation> = bn.cpts().iter().collect();
        let joint = bn.joint().unwrap();

        // Path 1: VE-cache (Algorithm 3).
        let cache = VeCache::build_in(&mut ExecContext::new(sr), &cpts, None).unwrap();

        // Path 2: Junction tree (Algorithm 5) + BP calibration.
        let schemas: Vec<_> = cpts.iter().map(|r| r.schema().clone()).collect();
        let jt = JunctionTree::from_schemas(&schemas, None).unwrap();
        let mut tables = jt.populate_in(&mut ExecContext::new(sr), &cpts, bn.catalog()).unwrap();
        bp::calibrate_in(&mut ExecContext::new(sr), &mut tables, &jt.tree).unwrap();

        let cx = &mut ExecContext::new(sr);
        for &node in bn.nodes() {
            let want = ops::group_by(cx, &joint, &[node]).unwrap();
            let from_cache = cache.answer(node).unwrap();
            assert!(want.function_eq(&from_cache), "cache wrong (seed {seed})");

            let table = tables
                .iter()
                .find(|t| t.schema().contains(node))
                .expect("every variable is in some clique");
            let from_jt = ops::group_by(cx, table, &[node]).unwrap();
            assert!(want.function_eq(&from_jt), "junction tree wrong (seed {seed})");
        }
    }
}

/// The paper's Figure 12–15 pipeline: a cyclic schema is rejected by BP,
/// fixed by triangulation, and the junction tree supports exact marginals.
#[test]
fn cyclic_schema_junction_tree_pipeline() {
    let mut cat = mpf::storage::Catalog::new();
    let pid = cat.add_var("pid", 2).unwrap();
    let sid = cat.add_var("sid", 2).unwrap();
    let wid = cat.add_var("wid", 2).unwrap();
    let cid = cat.add_var("cid", 2).unwrap();
    let tid = cat.add_var("tid", 2).unwrap();
    let mk = |name: &str, vars: Vec<mpf::storage::VarId>, salt: u32| {
        FunctionalRelation::complete(
            name,
            mpf::storage::Schema::new(vars).unwrap(),
            &cat,
            move |row| ((row.iter().sum::<u32>() + salt) % 3 + 1) as f64 / 2.0,
        )
    };
    let rels = [mk("contracts", vec![pid, sid], 0),
        mk("warehouses", vec![wid, cid], 1),
        mk("transporters", vec![tid], 2),
        mk("location", vec![pid, wid], 3),
        mk("ctdeals", vec![cid, tid], 4),
        mk("stdeals", vec![sid, tid], 5)];
    let refs: Vec<&FunctionalRelation> = rels.iter().collect();
    let schemas: Vec<_> = rels.iter().map(|r| r.schema().clone()).collect();

    // Cyclic: GYO does not reduce, the variable graph is not chordal, and
    // plain BP refuses.
    assert!(!acyclic::is_acyclic(schemas.iter()));
    let graph = VariableGraph::from_schemas(schemas.iter());
    assert!(!graph.is_chordal());
    assert!(bp::bp_acyclic(SemiringKind::SumProduct, &refs).is_err());

    // Junction tree fixes it: triangulate (Figure 14), build cliques
    // (Figure 15), populate, calibrate — and marginals are exact.
    let tri = triangulate::triangulate(&graph, &[tid, sid]);
    assert!(tri.filled.is_chordal());
    let jt = JunctionTree::from_schemas(&schemas, Some(&[tid, sid])).unwrap();
    assert_eq!(jt.cliques.len(), 3);
    let sr = SemiringKind::SumProduct;
    let mut tables = jt.populate_in(&mut ExecContext::new(sr), &refs, &cat).unwrap();
    bp::calibrate_in(&mut ExecContext::new(sr), &mut tables, &jt.tree).unwrap();

    let cx = &mut ExecContext::new(sr);
    let mut view = rels[0].clone();
    for r in &rels[1..] {
        view = ops::product_join(cx, &view, r).unwrap();
    }
    for v in [pid, sid, wid, cid, tid] {
        let want = ops::group_by(cx, &view, &[v]).unwrap();
        let table = tables.iter().find(|t| t.schema().contains(v)).unwrap();
        let got = ops::group_by(cx, table, &[v]).unwrap();
        assert!(want.function_eq(&got), "marginal diverged for {v}");
    }

    // VE-cache handles the cyclic schema transparently (it implements the
    // same triangulation, Theorem 10).
    let cache = VeCache::build_in(&mut ExecContext::new(sr), &refs, None).unwrap();
    for v in [pid, sid, wid, cid, tid] {
        let want = ops::group_by(cx, &view, &[v]).unwrap();
        assert!(want.function_eq(&cache.answer(v).unwrap()));
    }
}

/// Log-space inference end-to-end: posteriors computed with log-measure
/// CPTs in the `LogSumProduct` semiring match linear-space inference after
/// exponentiation — numerical-stability path for deep networks.
#[test]
fn log_space_inference_matches_linear_space() {
    let bn = BayesNet::random(8, 2, 2, 17);
    let sr_lin = SemiringKind::SumProduct;
    let sr_log = SemiringKind::LogSumProduct;
    let target = *bn.nodes().last().unwrap();

    // Log-transform every CPT measure (0 probability -> -inf = log zero).
    let log_cpts: Vec<FunctionalRelation> = bn
        .cpts()
        .iter()
        .map(|cpt| {
            let mut out = FunctionalRelation::new(cpt.name().to_string(), cpt.schema().clone());
            for (row, m) in cpt.rows() {
                out.push_row(row, m.ln()).unwrap();
            }
            out
        })
        .collect();

    let lin_joint = bn.joint().unwrap();
    let want = ops::group_by(&mut ExecContext::new(sr_lin), &lin_joint, &[target]).unwrap();

    let log_cx = &mut ExecContext::new(sr_log);
    let mut log_joint = log_cpts[0].clone();
    for cpt in &log_cpts[1..] {
        log_joint = ops::product_join(log_cx, &log_joint, cpt).unwrap();
    }
    let got_log = ops::group_by(log_cx, &log_joint, &[target]).unwrap();
    for (row, lm) in got_log.rows() {
        let linear = want.lookup(row).unwrap();
        assert!(
            approx_eq(lm.exp(), linear),
            "log-space {} vs linear {}",
            lm.exp(),
            linear
        );
    }

    // The VE-cache machinery also works in log space (division = subtraction).
    let refs: Vec<&FunctionalRelation> = log_cpts.iter().collect();
    let cache = VeCache::build_in(&mut ExecContext::new(sr_log), &refs, None).unwrap();
    let marg = cache.answer(target).unwrap();
    for (row, lm) in marg.rows() {
        assert!(approx_eq(lm.exp(), want.lookup(row).unwrap()));
    }
}

/// Tropical inference end-to-end: most-probable-explanation style queries
/// via the max-product semiring on CPTs.
#[test]
fn max_product_inference() {
    let bn = BayesNet::sprinkler();
    let sr = SemiringKind::MaxProduct;
    let joint = bn.joint().unwrap();
    let rain = bn.catalog().var("rain").unwrap();

    // max over all other vars of the joint, per rain value.
    let want = ops::group_by(&mut ExecContext::new(sr), &joint, &[rain]).unwrap();

    // Same via a VE-cache built in max-product.
    let cpts: Vec<&FunctionalRelation> = bn.cpts().iter().collect();
    let cache = VeCache::build_in(&mut ExecContext::new(sr), &cpts, None).unwrap();
    let got = cache.answer(rain).unwrap();
    assert!(want.function_eq(&got));
}
