//! Cross-crate property tests: random view structures exercised through
//! the optimizer, executor, and inference layers simultaneously.

use mpf::algebra::{ops, ExecContext, RelationStore};
use mpf::infer::{acyclic, bp, VeCache};
use mpf::semiring::SemiringKind;
use mpf::storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

/// A random *connected chain-with-extras* schema: guaranteed acyclic, with
/// random arities, partial support, and positive measures.
#[derive(Debug, Clone)]
struct AcyclicInstance {
    domains: Vec<u64>,
    /// Each relation covers a contiguous window of variables.
    windows: Vec<(usize, usize)>, // (start, len)
    keep_flags: Vec<Vec<bool>>,
    seed: u64,
}

fn acyclic_instance() -> impl Strategy<Value = AcyclicInstance> {
    (3usize..=5, 2usize..=4, 0u64..1000).prop_flat_map(|(nvars, nrels, seed)| {
        let domains = proptest::collection::vec(2u64..=3, nvars);
        domains.prop_flat_map(move |domains| {
            let window = (0..nvars, 1usize..=2).prop_map(move |(s, l)| {
                let start = s.min(nvars - 1);
                let len = l.min(nvars - start);
                (start, len)
            });
            let windows = proptest::collection::vec(window, nrels);
            let domains2 = domains.clone();
            windows.prop_flat_map(move |windows| {
                let sizes: Vec<usize> = windows
                    .iter()
                    .map(|&(s, l)| {
                        domains2[s..s + l].iter().product::<u64>() as usize
                    })
                    .collect();
                let flags: Vec<_> = sizes
                    .iter()
                    .map(|&n| proptest::collection::vec(proptest::bool::weighted(0.85), n))
                    .collect();
                let domains3 = domains2.clone();
                let windows2 = windows.clone();
                flags.prop_map(move |keep_flags| AcyclicInstance {
                    domains: domains3.clone(),
                    windows: windows2.clone(),
                    keep_flags,
                    seed,
                })
            })
        })
    })
}

fn build(inst: &AcyclicInstance) -> (Catalog, Vec<FunctionalRelation>) {
    let mut cat = Catalog::new();
    let vars: Vec<VarId> = inst
        .domains
        .iter()
        .enumerate()
        .map(|(i, &d)| cat.add_var(&format!("x{i}"), d).unwrap())
        .collect();
    let mut rels = Vec::new();
    for (ri, &(start, len)) in inst.windows.iter().enumerate() {
        let schema = Schema::new(vars[start..start + len].to_vec()).unwrap();
        let full = FunctionalRelation::complete("tmp", schema.clone(), &cat, |row| {
            ((row.iter().sum::<u32>() + ri as u32 + inst.seed as u32) % 7 + 1) as f64 / 2.0
        });
        let mut rel = FunctionalRelation::new(format!("r{ri}"), schema);
        for (i, (row, m)) in full.rows().enumerate() {
            if inst.keep_flags[ri][i] {
                rel.push_row(row, m).unwrap();
            }
        }
        rels.push(rel);
    }
    (cat, rels)
}

fn full_view(sr: SemiringKind, rels: &[FunctionalRelation]) -> FunctionalRelation {
    let cx = &mut ExecContext::new(sr);
    let mut acc = rels[0].clone();
    for r in &rels[1..] {
        acc = ops::product_join(cx, &acc, r).unwrap();
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contiguous-window schemas are acyclic (intervals form a chordal
    /// co-occurrence structure), so both BP and VE-cache must satisfy the
    /// Definition 5 invariant against the real view.
    #[test]
    fn vecache_invariant_on_random_schemas(inst in acyclic_instance()) {
        let (_, rels) = build(&inst);
        if rels.iter().any(|r| r.is_empty()) {
            return Ok(());
        }
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        for sr in [SemiringKind::SumProduct, SemiringKind::MinSum] {
            let cache = VeCache::build_in(&mut ExecContext::new(sr), &refs, None).unwrap();
            prop_assert!(
                bp::satisfies_invariant(sr, &refs, cache.tables()).unwrap(),
                "VE-cache invariant failed ({sr:?}) for {inst:?}"
            );
        }
    }

    /// Interval schemas pass the GYO test, and BP over them calibrates.
    #[test]
    fn bp_invariant_on_random_interval_schemas(inst in acyclic_instance()) {
        let (_, rels) = build(&inst);
        if rels.iter().any(|r| r.is_empty()) {
            return Ok(());
        }
        let schemas: Vec<&Schema> = rels.iter().map(|r| r.schema()).collect();
        prop_assume!(acyclic::is_acyclic(schemas.into_iter()));
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        match bp::bp_acyclic(SemiringKind::SumProduct, &refs) {
            Ok((tables, _)) => prop_assert!(
                bp::satisfies_invariant(SemiringKind::SumProduct, &refs, &tables).unwrap()
            ),
            // A GYO-acyclic family can still fail the MST join-tree
            // construction only if disconnected subsets share no variables —
            // handled inside bp_acyclic via components, so any error here is
            // a real bug.
            Err(e) => return Err(TestCaseError::fail(format!("bp_acyclic failed: {e}"))),
        }
    }

    /// Incremental maintenance equals rebuilding on random schemas: change
    /// a random base row's measure, maintain, and compare every answer to a
    /// cache rebuilt from the modified relations.
    #[test]
    fn incremental_maintenance_on_random_schemas(
        inst in acyclic_instance(),
        pick in 0usize..64,
        factor in 1u32..8,
    ) {
        let (_, mut rels) = build(&inst);
        if rels.iter().any(|r| r.is_empty()) {
            return Ok(());
        }
        let sr = SemiringKind::SumProduct;
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let cache = VeCache::build_in(&mut ExecContext::new(sr), &refs, None).unwrap();

        // Pick a base relation and row.
        let ri = pick % rels.len();
        let row_i = (pick / rels.len()) % rels[ri].len();
        let row = rels[ri].row(row_i).to_vec();
        let old = rels[ri].measure(row_i);
        let new = old * (factor as f64) / 2.0;
        let name = rels[ri].name().to_string();

        let maintained = cache.update_measure(&name, &row, old, new).unwrap();
        rels[ri].set_measure(row_i, new);
        let mod_refs: Vec<&FunctionalRelation> = rels.iter().collect();

        prop_assert!(
            bp::satisfies_invariant(sr, &mod_refs, maintained.tables()).unwrap(),
            "maintained cache violates Definition 5 for {inst:?} (rel {ri}, row {row_i})"
        );
    }

    /// Evidence conditioning on the cache equals select-then-marginalize on
    /// the view.
    #[test]
    fn evidence_protocol_on_random_schemas(inst in acyclic_instance()) {
        let (_, rels) = build(&inst);
        if rels.iter().any(|r| r.is_empty()) {
            return Ok(());
        }
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let sr = SemiringKind::SumProduct;
        let cache = VeCache::build_in(&mut ExecContext::new(sr), &refs, None).unwrap();
        let view = full_view(sr, &rels);

        // Condition on the first variable of the first relation.
        let ev_var = rels[0].schema().vars()[0];
        let conditioned = cache.with_evidence(ev_var, 0).unwrap();
        let cx = &mut ExecContext::new(sr);
        let view_cond = ops::select_eq(cx, &view, &[(ev_var, 0)]).unwrap();
        for v in view.schema().iter() {
            if v == ev_var {
                continue;
            }
            let want = ops::group_by(cx, &view_cond, &[v]).unwrap();
            let got = conditioned.answer(v).unwrap();
            prop_assert!(
                want.function_eq_in(&got, sr),
                "evidence protocol diverged on {v} for {inst:?}"
            );
        }
    }
}

/// The store abstraction round-trips through the facade crate.
#[test]
fn facade_reexports_are_usable() {
    let mut cat = Catalog::new();
    let a = cat.add_var("a", 2).unwrap();
    let rel = FunctionalRelation::from_rows(
        "r",
        Schema::new(vec![a]).unwrap(),
        [(vec![0], 1.0), (vec![1], 2.0)],
    )
    .unwrap();
    let mut store = RelationStore::new();
    store.insert(rel);
    assert_eq!(store.len(), 1);
}
