//! Snapshot + property tests for `Database::explain_analyze` (the traced
//! half of the request API). The snapshots are normalized — wall times and
//! the worker count vary run to run and with `MPF_THREADS` — so the same
//! golden text must hold at `MPF_THREADS=1` and `MPF_THREADS=4`.

use mpf::datagen::{SupplyChain, SupplyChainConfig};
use mpf::engine::{
    Database, DenseMode, Query, QueryRequest, ReprMode, SpanKind, Strategy, TraceLevel,
};
use mpf::infer::BayesNet;
use mpf::optimizer::Heuristic;
use mpf::semiring::Combine;
use proptest::prelude::*;

/// Strip the run-dependent parts of an explain-analyze rendering: every
/// `time=<duration>` actual, the `-- workers:` line (tracks MPF_THREADS),
/// and the `-- optimize/execute` timing line.
fn normalize(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        if line.starts_with("-- workers:") || line.starts_with("-- optimize:") {
            continue;
        }
        let mut rest = line;
        while let Some(i) = rest.find("time=") {
            out.push_str(&rest[..i]);
            out.push_str("time=_");
            let tail = &rest[i + "time=".len()..];
            let end = tail
                .find([',', ')'])
                .unwrap_or(tail.len());
            rest = &tail[end..];
        }
        out.push_str(rest);
        out.push('\n');
    }
    out
}

fn supply_chain_db() -> Database {
    let sc = SupplyChain::generate(SupplyChainConfig {
        scale: 0.004,
        ctdeals_density: 0.7,
        ..Default::default()
    });
    // Pinned so the snapshots don't depend on the ambient MPF_DENSE or
    // MPF_REPR.
    let db = Database::from_parts(sc.catalog, sc.store)
        .with_dense(DenseMode::Auto)
        .with_repr(ReprMode::Auto);
    db.run_sql(
        "create mpfview invest as (select pid, sid, wid, cid, tid, \
         measure = (* c.price, l.quantity, w.overhead, ct.discount, t.overhead) \
         from contracts c, location l, warehouses w, ctdeals ct, transporters t \
         where c.pid = l.pid and l.wid = w.wid and w.cid = ct.cid and ct.tid = t.tid)",
    )
    .unwrap();
    db
}

/// The sprinkler Bayes net as an engine database: the joint distribution is
/// the product view over the four CPTs (Section 4 of the paper).
fn sprinkler_db() -> Database {
    let bn = BayesNet::sprinkler();
    let db = Database::from_parts(bn.catalog().clone(), Default::default())
        .with_dense(DenseMode::Auto)
        .with_repr(ReprMode::Auto);
    for cpt in bn.cpts() {
        db.insert_relation(cpt.clone()).unwrap();
    }
    db.create_view(
        "joint",
        &["cpt_cloudy", "cpt_sprinkler", "cpt_rain", "cpt_wet"],
        Combine::Product,
    )
    .unwrap();
    db
}

#[test]
fn supply_chain_explain_analyze_snapshot() {
    let db = supply_chain_db();
    let text = db
        .explain_analyze(
            Query::on("invest")
                .group_by(["wid"])
                .strategy(Strategy::VePlus(Heuristic::Degree)),
        )
        .unwrap();
    let expected = "\
-- strategy: ve+(degree)
-- estimated cost: 17016.00
-- rows scanned=4428, processed=12576, peak intermediate=4000, page io=53
GroupBy (SparseAgg)  (est rows=20.0, rows=20, cells=40, time=_, repr=sparse)
  ProductJoin (SparseTensor)  (est rows=20.0, rows=20, cells=60, time=_, repr=sparse, kernel=chunked)
    ProductJoin (SparseTensor)  (est rows=20.0, rows=20, cells=60, time=_, repr=sparse, kernel=chunked)
      JoinAgg (Fused)  (est rows=4.0, rows=4, cells=8, time=_, repr=rows, fused=true)
        Scan transporters  (est rows=2.0, rows=2, cells=4, time=_, repr=rows)
        Scan ctdeals  (est rows=6.0, rows=6, cells=18, time=_, repr=rows)
      Scan warehouses  (est rows=20.0, rows=20, cells=60, time=_, repr=rows)
    GroupBy (SparseAgg)  (est rows=20.0, rows=20, cells=40, time=_, repr=sparse)
      ProductJoin (SparseTensor)  (est rows=4000.0, rows=4000, cells=16000, time=_, repr=sparse, kernel=chunked)
        Scan contracts  (est rows=400.0, rows=400, cells=1200, time=_, repr=rows)
        Scan location  (est rows=4000.0, rows=4000, cells=12000, time=_, repr=rows)
";
    assert_eq!(normalize(&text), expected, "got:\n{}", normalize(&text));
}

#[test]
fn bayes_net_explain_analyze_snapshot() {
    let db = sprinkler_db();
    let text = db
        .explain_analyze(
            Query::on("joint")
                .group_by(["rain"])
                .filter("wet", 1)
                .strategy(Strategy::VePlus(Heuristic::Degree)),
        )
        .unwrap();
    let expected = "\
-- strategy: ve+(degree)
-- estimated cost: 86.00
-- rows scanned=18, processed=52, peak intermediate=8, page io=15
JoinAgg (Fused)  (est rows=2.0, rows=2, cells=4, time=_, repr=rows, fused=true)
  Select  (est rows=4.0, rows=4, cells=16, time=_, repr=rows)
    Scan cpt_wet  (est rows=8.0, rows=8, cells=32, time=_, repr=rows)
  ProductJoin (Dense)  (est rows=8.0, rows=8, cells=32, time=_, repr=dense, kernel=chunked)
    ProductJoin (Dense)  (est rows=4.0, rows=4, cells=12, time=_, repr=dense, kernel=chunked)
      Scan cpt_cloudy  (est rows=2.0, rows=2, cells=4, time=_, repr=rows)
      Scan cpt_sprinkler  (est rows=4.0, rows=4, cells=12, time=_, repr=rows)
    Scan cpt_rain  (est rows=4.0, rows=4, cells=12, time=_, repr=rows)
";
    assert_eq!(normalize(&text), expected, "got:\n{}", normalize(&text));
}

/// Every traced operator feeds the same accounting as `ExecStats`, so the
/// span tree must reconcile exactly with the answer's stats: scan spans sum
/// to `rows_scanned`, operator spans sum to `rows_processed`, and per-kind
/// span counts equal the per-kind operator counters. A fused
/// join→marginalize span records under `GroupBy` but accounts as one join
/// *plus* one group-by, so it increments both expected counts.
fn assert_trace_reconciles(db: &Database, q: &Query) {
    let ans = db
        .run(QueryRequest::from(q).trace(TraceLevel::Spans))
        .unwrap();
    let tree = ans.trace.as_ref().expect("trace requested");
    let (mut scanned, mut processed) = (0u64, 0u64);
    let (mut scans, mut joins, mut group_bys, mut selects) = (0u64, 0u64, 0u64, 0u64);
    tree.for_each(&mut |s| match s.kind {
        SpanKind::Scan => {
            scanned += s.rows_out;
            scans += 1;
        }
        SpanKind::Join => {
            processed += s.rows_in + s.rows_out;
            joins += 1;
        }
        SpanKind::GroupBy => {
            processed += s.rows_in + s.rows_out;
            group_bys += 1;
            if s.fused {
                joins += 1;
            }
        }
        SpanKind::Select => {
            processed += s.rows_in + s.rows_out;
            selects += 1;
        }
        SpanKind::Phase => {}
    });
    assert_eq!(scanned, ans.stats.rows_scanned, "scan spans vs rows_scanned");
    assert_eq!(
        processed, ans.stats.rows_processed,
        "operator spans vs rows_processed"
    );
    assert_eq!(joins, ans.stats.joins, "join span count");
    assert_eq!(group_bys, ans.stats.group_bys, "group-by span count");
    assert_eq!(selects, ans.stats.selects, "select span count");
    assert!(scans > 0, "a query must scan something");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn span_row_counts_sum_to_exec_stats(
        strategy_idx in 0usize..5,
        query_idx in 0usize..4,
    ) {
        let strategies = [
            Strategy::Naive,
            Strategy::Cs,
            Strategy::CsPlusNonlinear,
            Strategy::Ve(Heuristic::Degree),
            Strategy::VePlus(Heuristic::Width),
        ];
        let queries = [
            Query::on("invest").group_by(["wid"]),
            Query::on("invest").group_by(["cid"]).filter("tid", 1),
            Query::on("invest").group_by(["sid", "tid"]),
            Query::on("invest").group_by([] as [&str; 0]),
        ];
        let db = supply_chain_db();
        let q = queries[query_idx].clone().strategy(strategies[strategy_idx]);
        assert_trace_reconciles(&db, &q);
    }
}

#[test]
fn bayes_net_trace_reconciles_too() {
    let db = sprinkler_db();
    for s in [Strategy::Cs, Strategy::VePlus(Heuristic::Degree)] {
        let q = Query::on("joint")
            .group_by(["rain"])
            .filter("wet", 1)
            .strategy(s);
        assert_trace_reconciles(&db, &q);
    }
}
