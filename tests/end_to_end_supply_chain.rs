//! End-to-end integration: the paper's supply-chain scenario through the
//! full stack (datagen → engine → optimizer → executor → inference cache).

use mpf::datagen::{SupplyChain, SupplyChainConfig};
use mpf::engine::{Database, Query, QueryRequest, RangePredicate, Scenario, SqlOutcome, Strategy};
use mpf::optimizer::Heuristic;
use mpf::semiring::Aggregate;

const VIEW_SQL: &str = "create mpfview invest as (select pid, sid, wid, cid, tid, \
     measure = (* c.price, l.quantity, w.overhead, ct.discount, t.overhead) \
     from contracts c, location l, warehouses w, ctdeals ct, transporters t \
     where c.pid = l.pid and l.wid = w.wid and w.cid = ct.cid and ct.tid = t.tid)";

fn db() -> Database {
    let sc = SupplyChain::generate(SupplyChainConfig {
        scale: 0.004,
        ctdeals_density: 0.7,
        ..Default::default()
    });
    let db = Database::from_parts(sc.catalog, sc.store);
    db.run_sql(VIEW_SQL).unwrap();
    db
}

#[test]
fn every_strategy_agrees_on_every_query_form() {
    let db = db();
    let strategies = [
        Strategy::Naive,
        Strategy::Cs,
        Strategy::CsPlusLinear,
        Strategy::CsPlusNonlinear,
        Strategy::Ve(Heuristic::Degree),
        Strategy::Ve(Heuristic::Width),
        Strategy::Ve(Heuristic::ElimCost),
        Strategy::Ve(Heuristic::Random(3)),
        Strategy::VePlus(Heuristic::Degree),
        Strategy::VePlus(Heuristic::Random(3)),
        Strategy::Auto,
    ];
    let queries = [
        Query::on("invest").group_by(["wid"]),
        Query::on("invest").group_by(["pid"]).aggregate(Aggregate::Min),
        Query::on("invest").group_by(["cid"]).filter("tid", 1),
        Query::on("invest").group_by(["wid"]).filter("wid", 1),
        Query::on("invest").group_by(["sid", "tid"]),
        Query::on("invest").group_by([] as [&str; 0]),
    ];
    for q in &queries {
        let reference = db.run(q.clone().strategy(Strategy::Naive)).unwrap();
        for s in strategies {
            let ans = db.run(q.clone().strategy(s)).unwrap();
            assert!(
                reference.relation.function_eq(&ans.relation),
                "{s:?} diverged on {q:?}"
            );
        }
    }
}

#[test]
fn paper_example_queries_run_via_sql() {
    let db = db();
    // The three Section 3.1 examples, plus strategy clauses.
    for sql in [
        "select pid, min(inv) from invest group by pid",
        "select wid, sum(inv) from invest where wid = 1 group by wid",
        "select cid, sum(inv) from invest where tid = 1 group by cid using ve(degree)",
        "select wid, sum(inv) from invest group by wid using csplus_nonlinear",
        "select tid, sum(inv) from invest group by tid using veplus(width)",
    ] {
        match db.run_sql(sql).unwrap() {
            SqlOutcome::Answer(ans) => assert!(!ans.relation.schema().is_empty()),
            _ => panic!("expected an answer for {sql}"),
        }
    }
}

#[test]
fn having_matches_post_filtered_basic_query() {
    let db = db();
    let base = db.run(Query::on("invest").group_by(["wid"])).unwrap();
    // A bound strictly between min and max guarantees the filter keeps some
    // rows and drops some rows.
    let min = base.relation.measures().iter().copied().fold(f64::MAX, f64::min);
    let max = base.relation.measures().iter().copied().fold(f64::MIN, f64::max);
    assert!(min < max, "generated measures should not be constant");
    let bound = (min + max) / 2.0;
    let filtered = db
        .run(
            Query::on("invest")
                .group_by(["wid"])
                .having(RangePredicate::Greater, bound),
        )
        .unwrap();
    let expected = base
        .relation
        .rows()
        .filter(|&(_, m)| m > bound)
        .count();
    assert_eq!(filtered.relation.len(), expected);
    assert!(expected > 0, "test bound should keep some rows");
    assert!(expected < base.relation.len(), "test bound should drop some rows");
}

#[test]
fn cache_agrees_with_direct_evaluation_and_evidence() {
    let db = db();
    let cache = db.build_cache("invest", Aggregate::Sum, None).unwrap();
    for var in ["pid", "sid", "wid", "cid", "tid"] {
        let cached = db
            .run(QueryRequest::on("invest").group_by([var]).via_cache(&cache))
            .unwrap();
        let direct = db.run(Query::on("invest").group_by([var])).unwrap();
        assert!(
            direct.relation.function_eq(&cached.relation),
            "cache diverged on {var}"
        );
    }
    // Conditioned cache == conditioned view.
    let tid = db.catalog().var("tid").unwrap();
    let conditioned = cache.with_evidence(tid, 2).unwrap();
    for var in ["pid", "wid", "cid"] {
        let cached = db
            .run(QueryRequest::on("invest").group_by([var]).via_cache(&conditioned))
            .unwrap();
        let direct = db
            .run(Query::on("invest").group_by([var]).filter("tid", 2))
            .unwrap();
        assert!(
            direct.relation.function_eq(&cached.relation),
            "conditioned cache diverged on {var}"
        );
    }
}

#[test]
fn linearity_matches_paper_pattern() {
    // With Table 1 proportions at 1% scale (cid domain 10 vs warehouses 50,
    // tid domain 5 = transporters 5), cid fails Eq. 1 (needs bushy search)
    // and tid satisfies it — the paper's Section 7.1 pattern.
    let sc = SupplyChain::generate(SupplyChainConfig::at_scale(0.01));
    let db = Database::from_parts(sc.catalog, sc.store);
    db.run_sql(VIEW_SQL).unwrap();
    assert!(!db.linearity("invest", "cid").unwrap().linear_admissible);
    assert!(db.linearity("invest", "tid").unwrap().linear_admissible);
}

#[test]
fn hypothetical_overrides_do_not_mutate_base() {
    let db = db();
    let q = Query::on("invest").group_by(["cid"]);
    let before = db.run(&q).unwrap();
    let _ = db
        .run(
            QueryRequest::from(&q)
                .scenario(Scenario::named("transfer").move_domain("ctdeals", "tid", 0, 1)),
        )
        .unwrap();
    let after = db.run(&q).unwrap();
    assert!(before.relation.function_eq(&after.relation));
}

/// The Boolean semiring end to end: "does any supply chain exist through
/// this warehouse?" — the paper's `{0,1}` with `∧`/`∨` allowable domain.
#[test]
fn boolean_reachability_view() {
    use mpf::semiring::{Aggregate, Combine};
    use mpf::storage::{FunctionalRelation, Schema};

    let db = Database::new();
    let p = db.add_var("p", 3).unwrap();
    let w = db.add_var("w", 3).unwrap();
    let t = db.add_var("t", 2).unwrap();
    // Edges present = measure 1.0 (true).
    db.insert_relation(
        FunctionalRelation::from_rows(
            "stored_at",
            Schema::new(vec![p, w]).unwrap(),
            [(vec![0, 0], 1.0), (vec![1, 0], 1.0), (vec![2, 1], 1.0)],
        )
        .unwrap(),
    )
    .unwrap();
    db.insert_relation(
        FunctionalRelation::from_rows(
            "shipped_by",
            Schema::new(vec![w, t]).unwrap(),
            [(vec![0, 1], 1.0), (vec![2, 0], 1.0)],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_view("reach", &["stored_at", "shipped_by"], Combine::And)
        .unwrap();

    // Which parts can be shipped at all? Only those stored at warehouse 0
    // (warehouse 1 has no transporter edge).
    let ans = db
        .run(
            Query::on("reach")
                .group_by(["p"])
                .aggregate(Aggregate::Or),
        )
        .unwrap();
    assert_eq!(ans.relation.lookup(&[0]), Some(1.0));
    assert_eq!(ans.relation.lookup(&[1]), Some(1.0));
    // Part 2 is stored only at warehouse 1: no chain.
    assert!(ans.relation.lookup(&[2]).unwrap_or(0.0) == 0.0);
}

#[test]
fn stats_reflect_plan_shape() {
    let db = db();
    let naive = db
        .run(Query::on("invest").group_by(["tid"]).strategy(Strategy::Naive))
        .unwrap();
    let smart = db
        .run(
            Query::on("invest")
                .group_by(["tid"])
                .strategy(Strategy::CsPlusNonlinear),
        )
        .unwrap();
    assert_eq!(naive.stats.group_bys, 1);
    assert!(smart.stats.group_bys >= 1);
    assert!(
        smart.stats.rows_processed <= naive.stats.rows_processed,
        "optimized plan should not process more rows ({} vs {})",
        smart.stats.rows_processed,
        naive.stats.rows_processed
    );
}
