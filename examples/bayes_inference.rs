//! Probabilistic inference as MPF queries (Section 4 of the paper): a
//! Bayesian network's joint distribution is the product join of its CPTs,
//! and posteriors are constrained-domain MPF queries.
//!
//! Run with: `cargo run --release --example bayes_inference`

use mpf::algebra::ExecContext;
use mpf::infer::{bp, BayesNet, VeCache};
use mpf::optimizer::{Algorithm, Heuristic};
use mpf::semiring::SemiringKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The classic sprinkler network:
    // cloudy -> sprinkler, cloudy -> rain, {sprinkler, rain} -> wet.
    let bn = BayesNet::sprinkler();
    let cat = bn.catalog();
    let rain = cat.var("rain")?;
    let wet = cat.var("wet")?;
    let sprinkler = cat.var("sprinkler")?;

    println!("== Pr(rain | wet grass) via MPF queries ==");
    for algo in [
        Algorithm::Cs,
        Algorithm::CsPlusNonlinear,
        Algorithm::Ve(Heuristic::Degree),
        Algorithm::VePlus(Heuristic::Width),
    ] {
        let post = bn.posterior(rain, &[(wet, 1)], algo)?;
        println!(
            "  {:<18} Pr(rain=1 | wet=1) = {:.4}",
            algo.label(),
            post[1]
        );
    }

    println!();
    println!("== Explaining away: observing the sprinkler lowers Pr(rain) ==");
    let p_rain_wet = bn.posterior(rain, &[(wet, 1)], Algorithm::Ve(Heuristic::Degree))?[1];
    let p_rain_wet_sprk = bn.posterior(
        rain,
        &[(wet, 1), (sprinkler, 1)],
        Algorithm::Ve(Heuristic::Degree),
    )?[1];
    println!("  Pr(rain | wet)            = {p_rain_wet:.4}");
    println!("  Pr(rain | wet, sprinkler) = {p_rain_wet_sprk:.4}");
    assert!(p_rain_wet_sprk < p_rain_wet);

    println!();
    println!("== The inference plan (VE = variable elimination order) ==");
    let plan = bn.plan(&[rain], &[(wet, 1)], Algorithm::Ve(Heuristic::Degree));
    println!("{}", plan.render(&|v| cat.name(v).to_string()));

    println!("== Exactness check against brute-force enumeration ==");
    let joint = bn.joint()?;
    println!(
        "  joint has {} rows, total probability {:.6}",
        joint.len(),
        joint.measures().iter().sum::<f64>()
    );

    println!();
    println!("== A random 8-node network, calibrated with Belief Propagation ==");
    let rnd = BayesNet::random(8, 2, 2, 42);
    let cpts: Vec<_> = rnd.cpts().iter().collect();
    match bp::bp_acyclic(SemiringKind::SumProduct, &cpts) {
        Ok((tables, program)) => {
            println!(
                "  schema acyclic: BP ran {} semijoin steps over {} tables",
                program.len(),
                tables.len()
            );
            let ok = bp::satisfies_invariant(SemiringKind::SumProduct, &cpts, &tables)?;
            println!("  Definition 5 invariant holds: {ok}");
        }
        Err(_) => {
            // Cyclic CPT schema: go through the VE-cache (junction-tree path).
            let cache = VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &cpts, None)?;
            println!(
                "  schema cyclic: VE-cache built {} tables instead",
                cache.tables().len()
            );
        }
    }

    println!();
    println!("== Workload optimization: one VE-cache answers every single-variable marginal ==");
    let cache = VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &cpts, None)?;
    for &node in rnd.nodes().iter().take(4) {
        let marg = cache.answer(node)?;
        let p1 = marg.lookup(&[1]).unwrap_or(0.0);
        println!(
            "  Pr({} = 1) = {:.4}  (from cached table, no join at query time)",
            rnd.catalog().name(node),
            p1
        );
    }

    println!();
    println!("== Conditioning the cache (restricted-range protocol, Theorem 5) ==");
    let first = rnd.nodes()[0];
    let last = *rnd.nodes().last().unwrap();
    let conditioned = cache.with_evidence(first, 1)?;
    let marg = conditioned.answer(last)?;
    let z: f64 = marg.measures().iter().sum();
    println!(
        "  Pr({} = 1 | {} = 1) = {:.4}",
        rnd.catalog().name(last),
        rnd.catalog().name(first),
        marg.lookup(&[1]).unwrap_or(0.0) / z
    );

    Ok(())
}
