//! MPF queries in the tropical (min-sum) semiring: cheapest multi-leg
//! routes as marginalization.
//!
//! A shipment travels origin → hub → port → destination; each leg has an
//! additive cost (a functional relation whose measure is the leg price).
//! The MPF view combines legs with `+` and queries aggregate with `MIN`,
//! so `select dest, min(f) ... group by dest` is exactly a shortest-path
//! computation — and every optimizer of the paper applies unchanged,
//! because `(min, +)` is a commutative semiring.
//!
//! Run with: `cargo run --release --example tropical_routing`

use mpf::engine::{Database, Query, Strategy};
use mpf::optimizer::Heuristic;
use mpf::semiring::{Aggregate, Combine};
use mpf::storage::{FunctionalRelation, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    let origin = db.add_var("origin", 3)?;
    let hub = db.add_var("hub", 4)?;
    let port = db.add_var("port", 3)?;
    let dest = db.add_var("dest", 5)?;

    // Leg costs (complete relations; a sparse network would simply omit
    // rows — absent row = additive identity = unreachable, cost +∞).
    db.insert_relation(FunctionalRelation::complete(
        "leg1",
        Schema::new(vec![origin, hub])?,
        &db.catalog(),
        |row| 10.0 + ((row[0] * 7 + row[1] * 13) % 17) as f64,
    ))?;
    db.insert_relation(FunctionalRelation::complete(
        "leg2",
        Schema::new(vec![hub, port])?,
        &db.catalog(),
        |row| 5.0 + ((row[0] * 11 + row[1] * 3) % 23) as f64,
    ))?;
    db.insert_relation(FunctionalRelation::complete(
        "leg3",
        Schema::new(vec![port, dest])?,
        &db.catalog(),
        |row| 8.0 + ((row[0] * 5 + row[1] * 19) % 29) as f64,
    ))?;

    // Combine legs additively: the (min, +) tropical semiring.
    db.create_view("route", &["leg1", "leg2", "leg3"], Combine::Sum)?;

    println!("== Cheapest route cost to each destination ==");
    let ans = db.run(
        Query::on("route")
            .group_by(["dest"])
            .aggregate(Aggregate::Min)
            .strategy(Strategy::VePlus(Heuristic::Degree)),
    )?;
    println!("{}", ans.relation.to_table_string(&db.catalog()));

    println!("== Cheapest route from origin 0 to each destination ==");
    let ans = db.run(
        Query::on("route")
            .group_by(["dest"])
            .aggregate(Aggregate::Min)
            .filter("origin", 0),
    )?;
    println!("{}", ans.relation.to_table_string(&db.catalog()));

    println!("== Bottleneck analysis: cheapest route through each hub ==");
    let ans = db.run(
        Query::on("route")
            .group_by(["hub"])
            .aggregate(Aggregate::Min),
    )?;
    println!("{}", ans.relation.to_table_string(&db.catalog()));

    println!("== Worst-case (MAX) exposure per destination, same view ==");
    let ans = db.run(
        Query::on("route")
            .group_by(["dest"])
            .aggregate(Aggregate::Max),
    )?;
    println!("{}", ans.relation.to_table_string(&db.catalog()));

    // All strategies agree, in this semiring too.
    let reference = db.run(
        Query::on("route")
            .group_by(["dest"])
            .aggregate(Aggregate::Min)
            .strategy(Strategy::Naive),
    )?;
    for s in [
        Strategy::Cs,
        Strategy::CsPlusNonlinear,
        Strategy::Ve(Heuristic::Width),
    ] {
        let again = db.run(
            Query::on("route")
                .group_by(["dest"])
                .aggregate(Aggregate::Min)
                .strategy(s),
        )?;
        assert!(reference.relation.function_eq(&again.relation));
    }
    println!("(all optimizers agree on the tropical answers)");

    Ok(())
}
