//! Execution guardrails on the paper's supply-chain scenario: resource
//! budgets, cancellation, and the strategy-fallback chain.
//!
//! Run with: `cargo run --release --example guardrails`

use std::time::Duration;

use mpf::algebra::{CancelToken, ExecLimits};
use mpf::datagen::{SupplyChain, SupplyChainConfig};
use mpf::engine::{Database, FallbackPolicy, Query};
use mpf::semiring::Combine;

const VIEW_RELS: [&str; 5] = ["contracts", "location", "warehouses", "ctdeals", "transporters"];

fn supply_chain_db() -> Result<Database, Box<dyn std::error::Error>> {
    let sc = SupplyChain::generate(SupplyChainConfig::at_scale(0.01));
    let db = Database::from_parts(sc.catalog.clone(), sc.store.clone());
    db.create_view("invest", &VIEW_RELS, Combine::Product)?;
    Ok(db)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A starved budget: one materialized cell is never enough for the
    //    supply-chain view, so the query is rejected with a typed error
    //    instead of running away.
    let db = supply_chain_db()?.with_limits(ExecLimits::none().with_max_total_cells(1));
    match db.run(Query::on("invest").group_by(["wid"])) {
        Err(e) => println!("1-cell budget  -> {e}"),
        Ok(_) => unreachable!("a 1-cell budget cannot satisfy this query"),
    }

    // 2. A pre-cancelled token: the query stops at the first check.
    let token = CancelToken::new();
    token.cancel();
    let db = supply_chain_db()?.with_limits(ExecLimits::none().with_cancel_token(token));
    match db.run(Query::on("invest").group_by(["wid"])) {
        Err(e) => println!("cancelled      -> {e}"),
        Ok(_) => unreachable!("cancelled queries must not produce answers"),
    }

    // 3. Generous limits are transparent, and the answer records which
    //    strategy served it.
    let db = supply_chain_db()?
        .with_limits(
            ExecLimits::none()
                .with_max_total_cells(10_000_000)
                .with_timeout(Duration::from_secs(2)),
        )
        .with_fallback(FallbackPolicy::default());
    let ans = db.run(Query::on("invest").group_by(["wid"]).filter("wid", 1))?;
    println!(
        "generous       -> warehouse 1 carries {:.2} (served by {:?}, {} fallback attempts)",
        ans.relation.measure(0),
        ans.served_by,
        ans.fallback.len()
    );

    // 4. The parser refuses pathological nesting instead of overflowing.
    let db = supply_chain_db()?;
    let bomb = format!("{}select wid, sum(f) from invest group by wid{}", "(".repeat(10_000), ")".repeat(10_000));
    match db.run_sql(&bomb) {
        Err(e) => println!("10k-paren bomb -> {e}"),
        Ok(_) => unreachable!("pathological nesting must be rejected"),
    }

    Ok(())
}
