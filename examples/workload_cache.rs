//! MPF workload optimization with VE-cache (Section 6 / Algorithm 3):
//! materialize a set of reduced tables once, then answer a whole workload
//! of single-variable MPF queries from the cache — each answer provably
//! equal to evaluating against the full view (Definition 5).
//!
//! Run with: `cargo run --release --example workload_cache`

use std::time::Instant;

use mpf::datagen::{SupplyChain, SupplyChainConfig};
use mpf::engine::{Database, Query, QueryRequest, Strategy};
use mpf::infer::WorkloadQuery;
use mpf::semiring::Aggregate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = SupplyChain::generate(SupplyChainConfig::at_scale(0.01));
    let db = Database::from_parts(sc.catalog.clone(), sc.store.clone());
    db.run_sql(
        "create mpfview invest as (select pid, sid, wid, cid, tid, \
         measure = (* c.price, l.quantity, w.overhead, ct.discount, t.overhead) \
         from contracts c, location l, warehouses w, ctdeals ct, transporters t)",
    )?;

    // Build the cache once.
    let t0 = Instant::now();
    let cache = db.build_cache("invest", Aggregate::Sum, None)?;
    let build_time = t0.elapsed();
    println!("== VE-cache built in {build_time:?} ==");
    println!("  elimination order: {:?}", cache.order());
    for t in cache.tables() {
        let vars: Vec<String> = t
            .schema()
            .iter()
            .map(|v| db.catalog().name(v).to_string())
            .collect();
        println!("  cached {}({}) — {} rows", t.name(), vars.join(", "), t.len());
    }
    println!(
        "  C(S) = {} total cached rows; cache tree satisfies RIP: {}",
        cache.total_cached_rows(),
        cache.verify_tree_rip()
    );

    // A workload: every variable queried, uniform probabilities.
    println!();
    println!("== Workload: one query per variable, cache vs full evaluation ==");
    let vars = ["pid", "sid", "wid", "cid", "tid"];
    let mut cached_total = std::time::Duration::ZERO;
    let mut direct_total = std::time::Duration::ZERO;
    for name in vars {
        let t1 = Instant::now();
        let from_cache = db
            .run(QueryRequest::on("invest").group_by([name]).via_cache(&cache))?
            .relation;
        cached_total += t1.elapsed();

        let t2 = Instant::now();
        let direct = db.run(
            Query::on("invest")
                .group_by([name])
                .strategy(Strategy::CsPlusNonlinear),
        )?;
        direct_total += t2.elapsed();

        assert!(
            direct.relation.function_eq(&from_cache),
            "Definition 5 violated for {name}"
        );
        println!("  {name}: cache answer == view answer ({} rows)", from_cache.len());
    }
    println!("  total cached answering:   {cached_total:?}");
    println!("  total direct evaluation:  {direct_total:?}");
    println!(
        "  cache amortizes after ~{:.1} workloads",
        build_time.as_secs_f64() / (direct_total.as_secs_f64() - cached_total.as_secs_f64()).max(1e-9)
    );

    // Expected-cost objective of Section 6.
    println!();
    println!("== Expected workload cost C(S) + E[cost(q, S)] ==");
    let workload: Vec<WorkloadQuery> = vars
        .iter()
        .map(|&n| WorkloadQuery {
            var: db.catalog().var(n).unwrap(),
            predicates: vec![],
            probability: 1.0 / vars.len() as f64,
        })
        .collect();
    println!("  objective = {:.1}", cache.expected_cost(&workload));

    // Restricted-range protocol: condition the whole cache on tid = 1.
    println!();
    println!("== Conditioned workload (where tid = 1), Theorem 5 protocol ==");
    let tid = db.catalog().var("tid")?;
    let conditioned = cache.with_evidence(tid, 1)?;
    for name in ["wid", "cid"] {
        let from_cache = db
            .run(QueryRequest::on("invest").group_by([name]).via_cache(&conditioned))?
            .relation;
        let direct = db.run(
            Query::on("invest")
                .group_by([name])
                .filter("tid", 1)
                .strategy(Strategy::CsPlusNonlinear),
        )?;
        assert!(direct.relation.function_eq(&from_cache));
        println!("  {name} | tid=1: cache answer == view answer");
    }

    Ok(())
}
