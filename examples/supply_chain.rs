//! The paper's Section 3 decision-support scenario on the supply-chain
//! schema (Figure 1 / Table 1, at laptop scale): total investment per
//! supply chain is the `invest` MPF view, and the business questions are
//! MPF queries.
//!
//! Run with: `cargo run --release --example supply_chain`

use mpf::datagen::{SupplyChain, SupplyChainConfig};
use mpf::engine::{Database, Query, QueryRequest, RangePredicate, Scenario, Strategy};
use mpf::semiring::{Aggregate, Combine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 1 at 1% scale: pid 1000, sid 100, wid 50, cid 10, tid 5;
    // location has 10 K rows.
    let sc = SupplyChain::generate(SupplyChainConfig::at_scale(0.01));
    let db = Database::from_parts(sc.catalog.clone(), sc.store.clone());
    db.run_sql(
        "create mpfview invest as (select pid, sid, wid, cid, tid, \
         measure = (* c.price, l.quantity, w.overhead, ct.discount, t.overhead) \
         from contracts c, location l, warehouses w, ctdeals ct, transporters t \
         where c.pid = l.pid and l.wid = w.wid and w.cid = ct.cid and ct.tid = t.tid)",
    )?;

    println!("== What is the minimum investment on each part? (first 5) ==");
    // select pid, min(inv) from invest group by pid
    let ans = db.run(
        Query::on("invest")
            .group_by(["pid"])
            .aggregate(Aggregate::Min),
    )?;
    for i in 0..5.min(ans.relation.len()) {
        println!(
            "  part {} -> minimum investment {:.2}",
            ans.relation.row(i)[0],
            ans.relation.measure(i)
        );
    }

    println!();
    println!("== How much would it cost for warehouse 1 to go off-line? ==");
    // select wid, sum(inv) from invest where wid=1 group by wid
    let ans = db.run(Query::on("invest").group_by(["wid"]).filter("wid", 1))?;
    println!("  warehouse 1 carries {:.2}", ans.relation.measure(0));

    println!();
    println!("== How much money would each contractor lose if transporter 1 went off-line? ==");
    // select cid, sum(inv) from invest where tid=1 group by cid
    let ans = db.run(Query::on("invest").group_by(["cid"]).filter("tid", 1))?;
    for (row, m) in ans.relation.rows().take(5) {
        println!("  contractor {} -> {:.2}", row[0], m);
    }

    println!();
    println!("== Constrained range: warehouses carrying more than 5M (having) ==");
    let ans = db.run(
        Query::on("invest")
            .group_by(["wid"])
            .having(RangePredicate::Greater, 5_000_000.0),
    )?;
    println!("  {} of 50 warehouses exceed the threshold", ans.relation.len());

    println!();
    println!("== Hypothetical (alternate measure): what if part 0's price doubled? ==");
    let part0_price = db.relation("contracts").unwrap().measure(0);
    let row0: Vec<u32> = db.relation("contracts").unwrap().row(0).to_vec();
    let base = db.run(Query::on("invest").group_by(["pid"]).filter("pid", 0))?;
    let hyp = db.run(
        QueryRequest::on("invest")
            .group_by(["pid"])
            .filter("pid", 0)
            .scenario(Scenario::named("price-doubles").measure(
                "contracts",
                row0,
                part0_price * 2.0,
            )),
    )?;
    println!(
        "  part 0 investment: {:.2} -> {:.2}",
        base.relation.measure(0),
        hyp.relation.measure(0)
    );

    println!();
    println!("== Hypothetical (alternate domain): transfer all deals from transporter 1 to 2 ==");
    let q = Query::on("invest").group_by(["tid"]).filter("tid", 2);
    let base = db.run(&q)?;
    let hyp = db.run(
        QueryRequest::from(&q)
            .scenario(Scenario::named("t1-to-t2").move_domain("ctdeals", "tid", 1, 2)),
    )?;
    println!(
        "  transporter 2 volume: {:.2} -> {:.2}",
        base.relation.measure(0),
        hyp.relation.measure(0)
    );

    println!();
    println!("== Batch what-if: shock each of the first 10 contract prices by +10% ==");
    let contracts = db.relation("contracts").unwrap();
    let set: mpf::engine::ScenarioSet = (0..10.min(contracts.len()))
        .map(|i| {
            Scenario::named(format!("contract-{i}")).measure(
                "contracts",
                contracts.row(i).to_vec(),
                contracts.measure(i) * 1.1,
            )
        })
        .collect();
    let report = db.run_scenarios(
        QueryRequest::on("invest")
            .group_by(["cid"])
            .scenario_set(set),
    )?;
    println!(
        "  {} scenarios in {:.1?} ({} shared trunks built, {} reuses)",
        report.outcomes.len(),
        report.elapsed,
        report.trunk_builds,
        report.trunk_hits
    );
    for o in report.divergent().into_iter().take(3) {
        let d = &o.divergence;
        println!(
            "  {}: {} contractor totals moved, largest shift {:.2}",
            o.name,
            d.moved(),
            d.max_shift()
        );
    }
    println!("  {} scenarios left every contractor unchanged", report.invariant().len());

    println!();
    println!("== Plan linearity test (Section 5.1) ==");
    for var in ["cid", "tid"] {
        let t = db.linearity("invest", var)?;
        println!(
            "  {var}: sigma = {}, sigma_hat = {} -> linear admissible: {}",
            t.sigma, t.sigma_hat, t.linear_admissible
        );
    }

    println!();
    println!("== EXPLAIN of Q1 under nonlinear CS+ ==");
    println!(
        "{}",
        db.describe(
            Query::on("invest")
                .group_by(["wid"])
                .strategy(Strategy::CsPlusNonlinear)
        )?
    );

    // The view combine op is Product; verify the view resolves semirings.
    assert_eq!(db.view("invest")?.combine, Combine::Product);
    Ok(())
}
