//! Quickstart: define functional relations, create an MPF view, and run
//! the three optimizable query forms of the paper under several evaluation
//! strategies.
//!
//! Run with: `cargo run --release --example quickstart`

use mpf::engine::{Database, Query, SqlOutcome, Strategy};
use mpf::optimizer::Heuristic;
use mpf::semiring::{Aggregate, Combine};
use mpf::storage::{FunctionalRelation, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();

    // A toy three-hop network: cost(a, b), cost(b, c) with multiplicative
    // edge factors — the function over (a, b, c) is their product join.
    let a = db.add_var("a", 3)?;
    let b = db.add_var("b", 3)?;
    let c = db.add_var("c", 3)?;

    db.insert_relation(FunctionalRelation::complete(
        "hop1",
        Schema::new(vec![a, b])?,
        &db.catalog(),
        |row| 1.0 + (row[0] * 3 + row[1]) as f64 / 4.0,
    ))?;
    db.insert_relation(FunctionalRelation::complete(
        "hop2",
        Schema::new(vec![b, c])?,
        &db.catalog(),
        |row| 0.5 + (row[0] + 2 * row[1]) as f64 / 3.0,
    ))?;

    // The paper's SQL extension, verbatim.
    db.run_sql(
        "create mpfview path as (select a, b, c, \
         measure = (* h1.f, h2.f) from hop1 h1, hop2 h2 where h1.b = h2.b)",
    )?;

    println!("== Basic MPF query: total path weight per destination ==");
    let ans = db.run(Query::on("path").group_by(["c"]))?;
    println!("{}", ans.relation);

    println!("== Same query, every strategy, same answer ==");
    for strategy in [
        Strategy::Naive,
        Strategy::Cs,
        Strategy::CsPlusLinear,
        Strategy::CsPlusNonlinear,
        Strategy::Ve(Heuristic::Degree),
        Strategy::VePlus(Heuristic::Width),
    ] {
        let r = db.run(Query::on("path").group_by(["c"]).strategy(strategy))?;
        assert!(ans.relation.function_eq(&r.relation));
        println!(
            "  {strategy:?}: est cost {:.1}, {} rows processed, optimized in {:?}",
            r.est_cost, r.stats.rows_processed, r.optimize_time
        );
    }

    println!();
    println!("== Restricted answer: weight of destination c = 2 only ==");
    let ans = db.run(Query::on("path").group_by(["c"]).filter("c", 2))?;
    println!("{}", ans.relation);

    println!("== Constrained domain: per-destination weight given a = 0 ==");
    let out = db.run_sql("select c, sum(f) from path where a = 0 group by c using ve(degree)")?;
    if let SqlOutcome::Answer(ans) = out {
        println!("{}", ans.relation);
    }

    println!("== MIN aggregate over the same view (min-product semiring) ==");
    let ans = db.run(
        Query::on("path")
            .group_by(["c"])
            .aggregate(Aggregate::Min),
    )?;
    println!("{}", ans.relation);

    println!("== EXPLAIN ==");
    println!(
        "{}",
        db.describe(Query::on("path").group_by(["c"]).strategy(Strategy::CsPlusLinear))?
    );

    // Combine::Sum views pair with MIN/MAX (tropical semirings).
    let db2 = Database::new();
    let x = db2.add_var("x", 2)?;
    let y = db2.add_var("y", 2)?;
    db2.insert_relation(FunctionalRelation::complete(
        "e1",
        Schema::new(vec![x, y])?,
        &db2.catalog(),
        |row| (row[0] + 2 * row[1]) as f64,
    ))?;
    db2.create_view("shortest", &["e1"], Combine::Sum)?;
    let ans = db2.run(
        Query::on("shortest")
            .group_by(["y"])
            .aggregate(Aggregate::Min),
    )?;
    println!("== Tropical (min-sum) view ==");
    println!("{}", ans.relation);

    Ok(())
}
