#![warn(missing_docs)]
//! # mpf — Optimizing MPF Queries
//!
//! A from-scratch Rust reproduction of *"Optimizing MPF Queries: Decision
//! Support and Probabilistic Inference"* (Corrada Bravo & Ramakrishnan,
//! SIGMOD 2007).
//!
//! **MPF (Marginalize a Product Function) queries** are aggregate queries
//! over *functional relations* — relations whose measure attribute is
//! functionally determined by the rest. An MPF view is a product join of
//! functional relations; an MPF query marginalizes its measure onto a set
//! of query variables with an aggregate that distributes over the join's
//! combine operation (a commutative semiring). Probabilistic inference on
//! Bayesian networks is the special case where measures are probabilities
//! and the semiring is sum-product.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`semiring`] — commutative semirings (sum-product, tropical, Boolean, ...);
//! * [`storage`] — functional relations, catalog, statistics;
//! * [`algebra`] — product join, marginalization, semijoins, executor;
//! * [`optimizer`] — CS, CS+, nonlinear CS+, VE, VE+ and the plan-linearity
//!   test;
//! * [`infer`] — junction trees, belief propagation, VE-cache workload
//!   optimization, Bayesian networks;
//! * [`engine`] — the [`Database`](engine::Database) facade and the paper's
//!   SQL extension;
//! * [`datagen`] — the paper's experimental workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use mpf::engine::{Database, Query, SqlOutcome};
//! use mpf::semiring::Combine;
//! use mpf::storage::{FunctionalRelation, Schema};
//!
//! let mut db = Database::new();
//! let a = db.add_var("a", 2).unwrap();
//! let b = db.add_var("b", 2).unwrap();
//! db.insert_relation(FunctionalRelation::from_rows(
//!     "r1",
//!     Schema::new(vec![a, b]).unwrap(),
//!     [(vec![0, 0], 1.0), (vec![0, 1], 2.0), (vec![1, 0], 3.0), (vec![1, 1], 4.0)],
//! ).unwrap()).unwrap();
//! db.create_view("v", &["r1"], Combine::Product).unwrap();
//!
//! let ans = db.run(&Query::on("v").group_by(["a"])).unwrap();
//! assert_eq!(ans.relation.lookup(&[0]), Some(3.0));
//!
//! // Or via the paper's SQL extension:
//! let out = db.run_sql("select b, sum(f) from v group by b").unwrap();
//! assert!(matches!(out, SqlOutcome::Answer(_)));
//! ```

/// Commutative semirings (re-export of `mpf-semiring`).
pub use mpf_semiring as semiring;

/// Functional-relation storage (re-export of `mpf-storage`).
pub use mpf_storage as storage;

/// Extended relational algebra and executor (re-export of `mpf-algebra`).
pub use mpf_algebra as algebra;

/// Query optimizers (re-export of `mpf-optimizer`).
pub use mpf_optimizer as optimizer;

/// Workload optimization and probabilistic inference (re-export of
/// `mpf-infer`).
pub use mpf_infer as infer;

/// Database facade and SQL extension (re-export of `mpf-engine`).
pub use mpf_engine as engine;

/// Experiment workload generators (re-export of `mpf-datagen`).
pub use mpf_datagen as datagen;
