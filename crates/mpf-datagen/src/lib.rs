#![warn(missing_docs)]
//! Workload and data generators for the paper's experiments.
//!
//! * [`SupplyChain`] — the Section 3 decision-support schema with the
//!   Table 1 cardinalities and domain sizes, parameterized by the two knobs
//!   the experiments sweep: overall `scale` (Figures 8 and 9) and
//!   `ctdeals` density (Figure 7).
//! * [`synthetic`] — the Section 7.3 star / linear / multistar views:
//!   `N` complete functional relations over domain-10 variables, a linear
//!   chain optionally augmented with hub variables.
//!
//! All generation is deterministic in the provided seed.

pub mod supply_chain;
pub mod synthetic;

pub use supply_chain::{SupplyChain, SupplyChainConfig};
pub use synthetic::{SyntheticKind, SyntheticView};
