//! The Section 3 supply-chain decision-support schema (Figure 1, Table 1).
//!
//! Five functional relations:
//!
//! | relation     | variables   | measure       | Table 1 size |
//! |--------------|-------------|---------------|--------------|
//! | contracts    | pid, sid    | price         | 100 K        |
//! | warehouses   | wid, cid    | w_overhead    | 5 K          |
//! | transporters | tid         | t_overhead    | 500          |
//! | location     | pid, wid    | quantity      | 1 M          |
//! | ctdeals      | cid, tid    | ct_discount   | 500 K        |
//!
//! Domain sizes (Table 1): pid 100 K, sid 10 K, wid 5 K, cid 1 K, tid 500.
//! Note `|cid| × |tid| = 500 K`, i.e. the paper's default `ctdeals` is the
//! *complete* relation — [`SupplyChainConfig::ctdeals_density`] scales that
//! down for the Figure 7 density sweep. [`SupplyChainConfig::scale`]
//! multiplies every cardinality and domain size for the Figure 8/9 scale
//! sweeps.
//!
//! The `invest` MPF view is the product join of all five relations; its
//! measure is `price × quantity × w_overhead × ct_discount × t_overhead`.

use mpf_algebra::RelationStore;
use mpf_optimizer::{BaseRel, CostModel, OptContext, QuerySpec};
use mpf_storage::{Catalog, FunctionalRelation, Schema, Value, VarId};
use rand::Rng;
use rand::SeedableRng;

/// Generation knobs for the supply chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyChainConfig {
    /// Multiplier on every Table 1 cardinality and domain size.
    pub scale: f64,
    /// Fraction of the complete `cid × tid` space present in `ctdeals`.
    pub ctdeals_density: f64,
    /// Optional separate multiplier for the `cid`/`tid` domain sizes.
    ///
    /// Uniform scaling shrinks `ctdeals` (complete over `cid × tid`)
    /// *quadratically* while the other relations shrink linearly, which
    /// erases the Table 1 proportion `|ctdeals| ≈ |location| / 2` that the
    /// Figure 7 density sweep relies on. Setting this to roughly
    /// `sqrt(scale)` restores the paper's relative sizes at laptop scale.
    pub ct_domain_scale: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SupplyChainConfig {
    fn default() -> Self {
        SupplyChainConfig {
            scale: 1.0,
            ctdeals_density: 1.0,
            ct_domain_scale: None,
            seed: 0x5eed,
        }
    }
}

impl SupplyChainConfig {
    /// A configuration scaled to `scale` of Table 1.
    pub fn at_scale(scale: f64) -> Self {
        SupplyChainConfig {
            scale,
            ..Default::default()
        }
    }

    /// A configuration for the Figure 7 density sweep: overall `scale`,
    /// with `cid`/`tid` domains scaled by `sqrt(scale)` to preserve the
    /// Table 1 proportions of `ctdeals` against `location`.
    pub fn proportional(scale: f64) -> Self {
        SupplyChainConfig {
            scale,
            ct_domain_scale: Some(scale.sqrt()),
            ..Default::default()
        }
    }
}

/// A generated supply-chain database.
#[derive(Debug, Clone)]
pub struct SupplyChain {
    /// Catalog holding the five variables.
    pub catalog: Catalog,
    /// The five relations keyed by their names.
    pub store: RelationStore,
    /// `pid` — part ids.
    pub pid: VarId,
    /// `sid` — supplier ids.
    pub sid: VarId,
    /// `wid` — warehouse ids.
    pub wid: VarId,
    /// `cid` — contractor ids.
    pub cid: VarId,
    /// `tid` — transporter ids.
    pub tid: VarId,
    /// The configuration used.
    pub config: SupplyChainConfig,
}

/// Relation names of the `invest` view, in the paper's order.
pub const RELATION_NAMES: [&str; 5] = [
    "contracts",
    "warehouses",
    "transporters",
    "location",
    "ctdeals",
];

impl SupplyChain {
    /// Generate a database. `scale` is clamped so every domain has at least
    /// two values.
    pub fn generate(config: SupplyChainConfig) -> SupplyChain {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let s = config.scale;
        let dom = |base: u64| -> u64 { ((base as f64 * s).round() as u64).max(2) };
        let card = |base: u64| -> u64 { ((base as f64 * s).round() as u64).max(1) };

        let ct_scale = config.ct_domain_scale.unwrap_or(s);
        let ct_dom = |base: u64| -> u64 { ((base as f64 * ct_scale).round() as u64).max(2) };

        let mut catalog = Catalog::new();
        let pid = catalog.add_var("pid", dom(100_000)).unwrap();
        let sid = catalog.add_var("sid", dom(10_000)).unwrap();
        let wid = catalog.add_var("wid", dom(5_000)).unwrap();
        let cid = catalog.add_var("cid", ct_dom(1_000)).unwrap();
        let tid = catalog.add_var("tid", ct_dom(500)).unwrap();

        let d = |v: VarId| catalog.domain_size(v) as u32;

        let mut store = RelationStore::new();

        // contracts(pid, sid, price): one row per pid (Table 1: |contracts|
        // equals |pid|), supplier drawn uniformly.
        let mut contracts =
            FunctionalRelation::new("contracts", Schema::new(vec![pid, sid]).unwrap());
        for p in 0..d(pid) {
            let supplier = rng.random_range(0..d(sid));
            let price = rng.random_range(1.0..100.0);
            contracts.push_row(&[p, supplier], price).unwrap();
        }
        store.insert(contracts);

        // warehouses(wid, cid, w_overhead): one row per wid.
        let mut warehouses =
            FunctionalRelation::new("warehouses", Schema::new(vec![wid, cid]).unwrap());
        for w in 0..d(wid) {
            let contractor = rng.random_range(0..d(cid));
            let overhead = rng.random_range(1.0..1.5);
            warehouses.push_row(&[w, contractor], overhead).unwrap();
        }
        store.insert(warehouses);

        // transporters(tid, t_overhead): one row per tid.
        let mut transporters =
            FunctionalRelation::new("transporters", Schema::new(vec![tid]).unwrap());
        for t in 0..d(tid) {
            transporters
                .push_row(&[t], rng.random_range(1.0..1.3))
                .unwrap();
        }
        store.insert(transporters);

        // location(pid, wid, quantity): ~10 distinct warehouses per part
        // (Table 1: 1 M rows over 100 K parts).
        let per_part = (card(1_000_000) / card(100_000).max(1)).max(1) as usize;
        let mut location =
            FunctionalRelation::new("location", Schema::new(vec![pid, wid]).unwrap());
        for p in 0..d(pid) {
            let k = per_part.min(d(wid) as usize);
            for w in sample_distinct(&mut rng, d(wid), k) {
                let qty = rng.random_range(1.0_f64..50.0).round();
                location.push_row(&[p, w], qty).unwrap();
            }
        }
        store.insert(location);

        // ctdeals(cid, tid, ct_discount): a `density` fraction of the
        // complete cid × tid space.
        let mut ctdeals = FunctionalRelation::new("ctdeals", Schema::new(vec![cid, tid]).unwrap());
        for c in 0..d(cid) {
            for t in 0..d(tid) {
                if rng.random::<f64>() < config.ctdeals_density {
                    let discount = rng.random_range(0.5..1.0);
                    ctdeals.push_row(&[c, t], discount).unwrap();
                }
            }
        }
        store.insert(ctdeals);

        SupplyChain {
            catalog,
            store,
            pid,
            sid,
            wid,
            cid,
            tid,
            config,
        }
    }

    /// The base-relation descriptors of the `invest` view.
    pub fn base_rels(&self) -> Vec<BaseRel> {
        use mpf_algebra::RelationProvider;
        RELATION_NAMES
            .iter()
            .map(|n| BaseRel::of(self.store.relation_of(n).expect("generated")))
            .collect()
    }

    /// An optimizer context for a query over the `invest` view.
    pub fn ctx(&self, query: QuerySpec, cost_model: CostModel) -> OptContext<'_> {
        OptContext::new(&self.catalog, self.base_rels(), query, cost_model)
    }

    /// Look up a variable by its paper name (`pid`, `sid`, `wid`, `cid`,
    /// `tid`).
    pub fn var(&self, name: &str) -> VarId {
        self.catalog.var(name).expect("known variable")
    }

    /// Add the paper's `Stdeals(sid, tid, st_discount)` relation (Appendix
    /// A), which closes the variable graph into the chordless 5-cycle of
    /// Figure 14 and makes the schema cyclic: Belief Propagation must be
    /// preceded by the Junction Tree algorithm. `density` is the fraction
    /// of the `sid × tid` space present.
    pub fn add_stdeals(&mut self, density: f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed ^ 0x57dea15);
        let d_sid = self.catalog.domain_size(self.sid) as u32;
        let d_tid = self.catalog.domain_size(self.tid) as u32;
        let mut stdeals =
            FunctionalRelation::new("stdeals", Schema::new(vec![self.sid, self.tid]).unwrap());
        for s in 0..d_sid {
            for t in 0..d_tid {
                if rng.random::<f64>() < density {
                    stdeals
                        .push_row(&[s, t], rng.random_range(0.5..1.0))
                        .unwrap();
                }
            }
        }
        self.store.insert(stdeals);
    }
}

/// Sample `k` distinct values from `0..n` (k ≤ n), Floyd's algorithm.
fn sample_distinct(rng: &mut impl Rng, n: u32, k: usize) -> Vec<Value> {
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let k = k.min(n as usize) as u32;
    for j in n - k..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    // Sort so downstream measure assignment is deterministic.
    let mut out: Vec<Value> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_algebra::RelationProvider;

    #[test]
    fn table_1_shape_at_small_scale() {
        let sc = SupplyChain::generate(SupplyChainConfig {
            scale: 0.01,
            ctdeals_density: 1.0,
            ..SupplyChainConfig::default()
        });
        // Domains scale: pid 1000, sid 100, wid 50, cid 10, tid 5.
        assert_eq!(sc.catalog.domain_size(sc.pid), 1000);
        assert_eq!(sc.catalog.domain_size(sc.sid), 100);
        assert_eq!(sc.catalog.domain_size(sc.wid), 50);
        assert_eq!(sc.catalog.domain_size(sc.cid), 10);
        assert_eq!(sc.catalog.domain_size(sc.tid), 5);
        // Cardinalities follow Table 1 ratios.
        assert_eq!(sc.store.relation_of("contracts").unwrap().len(), 1000);
        assert_eq!(sc.store.relation_of("warehouses").unwrap().len(), 50);
        assert_eq!(sc.store.relation_of("transporters").unwrap().len(), 5);
        assert_eq!(sc.store.relation_of("location").unwrap().len(), 10_000);
        // Density 1.0 -> complete ctdeals.
        assert_eq!(sc.store.relation_of("ctdeals").unwrap().len(), 50);
    }

    #[test]
    fn relations_are_functional_and_in_domain() {
        let sc = SupplyChain::generate(SupplyChainConfig {
            scale: 0.005,
            ctdeals_density: 0.5,
            seed: 2,
            ..SupplyChainConfig::default()
        });
        for name in RELATION_NAMES {
            let rel = sc.store.relation_of(name).unwrap();
            rel.validate_fd().unwrap_or_else(|e| panic!("{name}: {e}"));
            rel.validate_domains(&sc.catalog)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!rel.is_empty(), "{name} is empty");
        }
    }

    #[test]
    fn density_controls_ctdeals() {
        let lo = SupplyChain::generate(SupplyChainConfig {
            scale: 0.01,
            ctdeals_density: 0.2,
            seed: 3,
            ..SupplyChainConfig::default()
        });
        let hi = SupplyChain::generate(SupplyChainConfig {
            scale: 0.01,
            ctdeals_density: 0.9,
            seed: 3,
            ..SupplyChainConfig::default()
        });
        let lo_n = lo.store.relation_of("ctdeals").unwrap().len();
        let hi_n = hi.store.relation_of("ctdeals").unwrap().len();
        assert!(lo_n < hi_n);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SupplyChain::generate(SupplyChainConfig::at_scale(0.005));
        let b = SupplyChain::generate(SupplyChainConfig::at_scale(0.005));
        for name in RELATION_NAMES {
            assert!(a
                .store
                .relation_of(name)
                .unwrap()
                .function_eq(b.store.relation_of(name).unwrap()));
        }
    }

    #[test]
    fn ctx_exposes_all_five_relations() {
        let sc = SupplyChain::generate(SupplyChainConfig::at_scale(0.005));
        let ctx = sc.ctx(QuerySpec::group_by([sc.wid]), CostModel::Io);
        assert_eq!(ctx.rels.len(), 5);
        assert_eq!(ctx.all_vars().len(), 5);
    }
}
