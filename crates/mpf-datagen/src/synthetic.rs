//! The Section 7.3 synthetic views: star, linear, and multistar.
//!
//! All three share a *linear part*: chain variables `x_0 ... x_N` with
//! table `s_i` over `{x_{i-1}, x_i}`. The paper's three variants are:
//!
//! * **linear** — the chain only ("the variable connecting all tables is
//!   removed");
//! * **star** — "exactly like Figure 6": one hub variable `h` added to
//!   every table;
//! * **multistar** — "instead of a single common variable there are several
//!   common variables each connecting to three different tables": hub
//!   `h_j` is added to tables `2j+1 ..= 2j+3` (windows of three,
//!   overlapping by one).
//!
//! All variables have domain size 10 by default and all relations are
//! complete, per the Table 2 experiment setup. Measures are uniform in
//! `[0.5, 1.5)`, deterministic in the seed.

use mpf_algebra::RelationStore;
use mpf_optimizer::{BaseRel, CostModel, OptContext, QuerySpec};
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use rand::Rng;
use rand::SeedableRng;

/// Which synthetic view family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticKind {
    /// Chain plus a single hub variable in every table (Figure 6).
    Star,
    /// Several hub variables, each shared by a window of three tables.
    Multistar,
    /// Chain only.
    Linear,
}

impl SyntheticKind {
    /// All three kinds, in the column order of the paper's Table 2.
    pub const ALL: [SyntheticKind; 3] = [
        SyntheticKind::Star,
        SyntheticKind::Multistar,
        SyntheticKind::Linear,
    ];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            SyntheticKind::Star => "star",
            SyntheticKind::Multistar => "multistar",
            SyntheticKind::Linear => "linear",
        }
    }
}

/// A generated synthetic view.
#[derive(Debug, Clone)]
pub struct SyntheticView {
    /// Variable catalog.
    pub catalog: Catalog,
    /// The `N` complete relations (`s1 ... sN`).
    pub store: RelationStore,
    /// Chain variables `x_0 ... x_N` (the "linear part" queried by the
    /// experiments).
    pub chain_vars: Vec<VarId>,
    /// Hub variables (empty for [`SyntheticKind::Linear`]).
    pub hub_vars: Vec<VarId>,
    /// Table names in order.
    pub table_names: Vec<String>,
    /// The kind generated.
    pub kind: SyntheticKind,
}

impl SyntheticView {
    /// Generate a view with `n` tables over domain-`domain` variables.
    pub fn generate(kind: SyntheticKind, n: usize, domain: u64, seed: u64) -> SyntheticView {
        assert!(n >= 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut catalog = Catalog::new();
        let chain_vars: Vec<VarId> = (0..=n)
            .map(|i| catalog.add_var(&format!("x{i}"), domain).unwrap())
            .collect();

        // Hubs per kind, and which tables each hub joins.
        let hub_count = match kind {
            SyntheticKind::Linear => 0,
            SyntheticKind::Star => 1,
            SyntheticKind::Multistar => n.saturating_sub(1).div_ceil(2),
        };
        let hub_vars: Vec<VarId> = (0..hub_count)
            .map(|j| catalog.add_var(&format!("h{j}"), domain).unwrap())
            .collect();
        let hubs_of_table = |i: usize| -> Vec<VarId> {
            match kind {
                SyntheticKind::Linear => vec![],
                SyntheticKind::Star => vec![hub_vars[0]],
                SyntheticKind::Multistar => hub_vars
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| {
                        // Hub j covers tables 2j+1 ..= 2j+3 (1-indexed).
                        let lo = 2 * j + 1;
                        (lo..lo + 3).contains(&i)
                    })
                    .map(|(_, &h)| h)
                    .collect(),
            }
        };

        let mut store = RelationStore::new();
        let mut table_names = Vec::with_capacity(n);
        for i in 1..=n {
            let mut vars = vec![chain_vars[i - 1], chain_vars[i]];
            vars.extend(hubs_of_table(i));
            let name = format!("s{i}");
            let rel = FunctionalRelation::complete(
                name.clone(),
                Schema::new(vars).unwrap(),
                &catalog,
                |_| rng.random_range(0.5..1.5),
            );
            store.insert(rel);
            table_names.push(name);
        }

        SyntheticView {
            catalog,
            store,
            chain_vars,
            hub_vars,
            table_names,
            kind,
        }
    }

    /// The base-relation descriptors.
    pub fn base_rels(&self) -> Vec<BaseRel> {
        use mpf_algebra::RelationProvider;
        self.table_names
            .iter()
            .map(|n| BaseRel::of(self.store.relation_of(n).expect("generated")))
            .collect()
    }

    /// An optimizer context for a query against this view.
    pub fn ctx(&self, query: QuerySpec, cost_model: CostModel) -> OptContext<'_> {
        OptContext::new(&self.catalog, self.base_rels(), query, cost_model)
    }

    /// The paper's Table 2 query: on "the first variable in the linear
    /// section".
    pub fn first_chain_query(&self) -> QuerySpec {
        QuerySpec::group_by([self.chain_vars[0]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_algebra::RelationProvider;

    #[test]
    fn linear_shape() {
        let v = SyntheticView::generate(SyntheticKind::Linear, 5, 10, 1);
        assert_eq!(v.chain_vars.len(), 6);
        assert!(v.hub_vars.is_empty());
        assert_eq!(v.table_names.len(), 5);
        for name in &v.table_names {
            let rel = v.store.relation_of(name).unwrap();
            assert_eq!(rel.arity(), 2);
            assert_eq!(rel.len(), 100); // complete over 10 × 10
            assert!(rel.is_complete(&v.catalog));
        }
    }

    #[test]
    fn star_adds_one_hub_everywhere() {
        let v = SyntheticView::generate(SyntheticKind::Star, 5, 10, 1);
        assert_eq!(v.hub_vars.len(), 1);
        for name in &v.table_names {
            let rel = v.store.relation_of(name).unwrap();
            assert_eq!(rel.arity(), 3);
            assert_eq!(rel.len(), 1000);
            assert!(rel.schema().contains(v.hub_vars[0]));
        }
    }

    #[test]
    fn multistar_hubs_cover_windows_of_three() {
        let v = SyntheticView::generate(SyntheticKind::Multistar, 5, 10, 1);
        // n=5 -> 2 hubs: h0 over s1..s3, h1 over s3..s5.
        assert_eq!(v.hub_vars.len(), 2);
        let has = |t: usize, h: usize| {
            v.store
                .relation_of(&format!("s{t}"))
                .unwrap()
                .schema()
                .contains(v.hub_vars[h])
        };
        assert!(has(1, 0) && has(2, 0) && has(3, 0));
        assert!(!has(4, 0) && !has(5, 0));
        assert!(has(3, 1) && has(4, 1) && has(5, 1));
        assert!(!has(1, 1) && !has(2, 1));
        // Every hub connects exactly three tables.
        for h in 0..2 {
            let count = (1..=5).filter(|&t| has(t, h)).count();
            assert_eq!(count, 3);
        }
    }

    #[test]
    fn deterministic_and_small_domain() {
        let a = SyntheticView::generate(SyntheticKind::Star, 3, 4, 9);
        let b = SyntheticView::generate(SyntheticKind::Star, 3, 4, 9);
        for name in &a.table_names {
            assert!(a
                .store
                .relation_of(name)
                .unwrap()
                .function_eq(b.store.relation_of(name).unwrap()));
        }
    }

    #[test]
    fn ctx_round_trip() {
        let v = SyntheticView::generate(SyntheticKind::Multistar, 5, 10, 1);
        let ctx = v.ctx(v.first_chain_query(), CostModel::Io);
        assert_eq!(ctx.rels.len(), 5);
        // 6 chain vars + 2 hubs.
        assert_eq!(ctx.all_vars().len(), 8);
    }
}
