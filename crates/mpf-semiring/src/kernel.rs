//! Compile-time (monomorphized) semiring operations over the engine's
//! `f64` carrier.
//!
//! [`crate::SemiringKind`] dispatches every `add`/`mul` through a
//! `match` — fine for the hash operators, whose cost is dominated by key
//! extraction and probing, but fatal for the columnar kernels, whose
//! inner loops are a handful of arithmetic instructions that the
//! compiler can only vectorize when the operation is statically known.
//! This module provides one zero-sized type per semiring implementing
//! [`SemiringOps`] (associated-const identities, inlined static ops) and
//! the [`for_each_semiring`](crate::for_each_semiring) macro that
//! monomorphizes a generic kernel for all seven and selects the
//! instantiation from a runtime [`crate::SemiringKind`]. Both the CSR
//! sparse-tensor kernels (`mpf_algebra::sparse`) and the dense grid
//! kernels (`mpf_algebra::dense`) are instantiated through this module,
//! so every columnar inner loop in the engine compiles to straight-line
//! per-semiring code. The definitions here are *the same expressions*
//! as the dynamic [`crate::SemiringKind::add`]/
//! [`crate::SemiringKind::mul`] arms, so both paths produce
//! bit-identical results cell for cell.
//!
//! # Deterministic reduction shape
//!
//! The chunked (SIMD-friendly) kernels fold contiguous runs through
//! [`LANES`] parallel accumulators and combine them with
//! [`reduce_lanes`], a fixed pairwise tree. The association order of a
//! chunked fold is therefore a pure function of the run *length* —
//! never of thread count, partitioning, or chunk scheduling — so a
//! given query produces bit-identical answers at any `MPF_THREADS`
//! setting, under either `MPF_KERNEL` value. Across kernel modes
//! (`scalar` vs `chunked`) the association order differs, which for the
//! non-associative floating-point folds (`SumProduct`,
//! `LogSumProduct`) may change results within rounding; the min/max
//! family (`MinSum`, `MaxSum`, `MinProduct`, `MaxProduct`,
//! `BoolOrAnd`) is insensitive to association, so scalar and chunked
//! kernels agree exactly there.

use crate::{logsumexp, SemiringKind};

/// Lane width of the chunked kernels: contiguous runs fold through this
/// many independent `f64` accumulators so the additive operation
/// autovectorizes. 8 × f64 = one AVX-512 register, two AVX2 registers,
/// four NEON registers — a shape every current target handles well.
pub const LANES: usize = 8;

/// Combine [`LANES`] partial accumulators with a fixed pairwise
/// reduction tree: `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` for
/// `LANES = 8`. The shape is a compile-time constant — part of the
/// deterministic-reduction contract documented at the module level —
/// so chunked results never depend on how work was scheduled.
#[inline(always)]
pub fn reduce_lanes<S: SemiringOps>(lanes: [f64; LANES]) -> f64 {
    let a = S::add(lanes[0], lanes[4]);
    let b = S::add(lanes[1], lanes[5]);
    let c = S::add(lanes[2], lanes[6]);
    let d = S::add(lanes[3], lanes[7]);
    S::add(S::add(a, c), S::add(b, d))
}

/// Fold a contiguous run of values with the semiring's additive
/// operation using the chunked lane shape: [`LANES`] independent
/// accumulators over full blocks, [`reduce_lanes`]'s fixed tree, then a
/// left-to-right scalar tail. The association order depends only on
/// `vals.len()` (the deterministic-reduction contract), and the lane
/// loop has no cross-iteration dependence, so it autovectorizes.
#[inline(always)]
pub fn fold_run<S: SemiringOps>(vals: &[f64]) -> f64 {
    let n = vals.len();
    let mut lanes = [S::ZERO; LANES];
    let mut t = 0;
    while t + LANES <= n {
        for q in 0..LANES {
            lanes[q] = S::add(lanes[q], vals[t + q]);
        }
        t += LANES;
    }
    let mut acc = reduce_lanes::<S>(lanes);
    while t < n {
        acc = S::add(acc, vals[t]);
        t += 1;
    }
    acc
}

/// Statically-known semiring operations over `f64` measures (Boolean
/// measures are `0.0`/`1.0`, as everywhere in the engine).
pub trait SemiringOps: Copy + Send + Sync + 'static {
    /// The runtime tag this type monomorphizes.
    const KIND: SemiringKind;
    /// Additive identity (`SemiringKind::zero`).
    const ZERO: f64;
    /// Multiplicative identity (`SemiringKind::one`).
    const ONE: f64;
    /// The additive (aggregate) operation.
    fn add(a: f64, b: f64) -> f64;
    /// The multiplicative (product join) operation.
    fn mul(a: f64, b: f64) -> f64;
}

/// `(+, ×)` — probabilistic inference, totals.
#[derive(Debug, Clone, Copy)]
pub struct SumProduct;

impl SemiringOps for SumProduct {
    const KIND: SemiringKind = SemiringKind::SumProduct;
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// `(min, +)` — minimum additive cost.
#[derive(Debug, Clone, Copy)]
pub struct MinSum;

impl SemiringOps for MinSum {
    const KIND: SemiringKind = SemiringKind::MinSum;
    const ZERO: f64 = f64::INFINITY;
    const ONE: f64 = 0.0;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// `(max, +)` — maximum additive gain.
#[derive(Debug, Clone, Copy)]
pub struct MaxSum;

impl SemiringOps for MaxSum {
    const KIND: SemiringKind = SemiringKind::MaxSum;
    const ZERO: f64 = f64::NEG_INFINITY;
    const ONE: f64 = 0.0;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// `(min, ×)` — minimum multiplicative cost.
#[derive(Debug, Clone, Copy)]
pub struct MinProduct;

impl SemiringOps for MinProduct {
    const KIND: SemiringKind = SemiringKind::MinProduct;
    const ZERO: f64 = f64::INFINITY;
    const ONE: f64 = 1.0;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        // `+∞` (the additive identity) must annihilate; avoid the IEEE
        // `∞ × 0 = NaN` pitfall — same guard as the dynamic dispatch.
        if a == f64::INFINITY || b == f64::INFINITY {
            f64::INFINITY
        } else {
            a * b
        }
    }
}

/// `(max, ×)` — Viterbi / most probable explanation.
#[derive(Debug, Clone, Copy)]
pub struct MaxProduct;

impl SemiringOps for MaxProduct {
    const KIND: SemiringKind = SemiringKind::MaxProduct;
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// `(∨, ∧)` on `{0.0, 1.0}` — existence queries.
#[derive(Debug, Clone, Copy)]
pub struct BoolOrAnd;

impl SemiringOps for BoolOrAnd {
    const KIND: SemiringKind = SemiringKind::BoolOrAnd;
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        if a != 0.0 || b != 0.0 {
            1.0
        } else {
            0.0
        }
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        if a != 0.0 && b != 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

/// `(logsumexp, +)` — sum-product over log-space measures.
#[derive(Debug, Clone, Copy)]
pub struct LogSumProduct;

impl SemiringOps for LogSumProduct {
    const KIND: SemiringKind = SemiringKind::LogSumProduct;
    const ZERO: f64 = f64::NEG_INFINITY;
    const ONE: f64 = 0.0;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        logsumexp(a, b)
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Monomorphize a generic kernel over every semiring and call the
/// instantiation matching a runtime [`crate::SemiringKind`]:
///
/// ```
/// use mpf_semiring::{for_each_semiring, kernel::SemiringOps, SemiringKind};
///
/// fn dot<S: SemiringOps>(xs: &[f64], ys: &[f64]) -> f64 {
///     xs.iter().zip(ys).fold(S::ZERO, |acc, (&x, &y)| S::add(acc, S::mul(x, y)))
/// }
///
/// let sr = SemiringKind::MinSum;
/// let d = for_each_semiring!(sr, dot(&[1.0, 2.0], &[3.0, 5.0]));
/// assert_eq!(d, 4.0);
/// ```
///
/// The expansion is a `match` over all seven variants, each arm calling
/// `$func::<$crate::kernel::Variant>($args...)` — the static type flows
/// into the kernel's inner loops, so they compile to straight-line
/// vectorizable code per semiring.
#[macro_export]
macro_rules! for_each_semiring {
    ($kind:expr, $func:ident ( $($args:expr),* $(,)? )) => {
        match $kind {
            $crate::SemiringKind::SumProduct => {
                $func::<$crate::kernel::SumProduct>($($args),*)
            }
            $crate::SemiringKind::MinSum => {
                $func::<$crate::kernel::MinSum>($($args),*)
            }
            $crate::SemiringKind::MaxSum => {
                $func::<$crate::kernel::MaxSum>($($args),*)
            }
            $crate::SemiringKind::MinProduct => {
                $func::<$crate::kernel::MinProduct>($($args),*)
            }
            $crate::SemiringKind::MaxProduct => {
                $func::<$crate::kernel::MaxProduct>($($args),*)
            }
            $crate::SemiringKind::BoolOrAnd => {
                $func::<$crate::kernel::BoolOrAnd>($($args),*)
            }
            $crate::SemiringKind::LogSumProduct => {
                $func::<$crate::kernel::LogSumProduct>($($args),*)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check<S: SemiringOps>(cases: &[(f64, f64)]) {
        assert_eq!(S::ZERO, S::KIND.zero());
        assert_eq!(S::ONE, S::KIND.one());
        for &(a, b) in cases {
            let add = S::add(a, b);
            let mul = S::mul(a, b);
            let dadd = S::KIND.add(a, b);
            let dmul = S::KIND.mul(a, b);
            assert!(
                add == dadd || (add.is_nan() && dadd.is_nan()),
                "{:?} add({a}, {b})",
                S::KIND
            );
            assert!(
                mul == dmul || (mul.is_nan() && dmul.is_nan()),
                "{:?} mul({a}, {b})",
                S::KIND
            );
        }
    }

    #[test]
    fn static_ops_match_dynamic_dispatch() {
        let cases: Vec<(f64, f64)> = vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (0.5, 2.0),
            (-3.0, 7.0),
            (f64::INFINITY, 0.0),
            (f64::NEG_INFINITY, 1.0),
            (f64::INFINITY, f64::NEG_INFINITY),
            (1e308, 1e308),
            (-745.0, -745.0),
        ];
        for sr in SemiringKind::ALL {
            for_each_semiring!(sr, check(&cases));
        }
    }

    #[test]
    fn reduce_lanes_matches_reference_tree() {
        fn check_tree<S: SemiringOps>() {
            let lanes = [3.0, -1.0, 4.0, 1.5, -9.0, 2.5, 6.0, -5.0];
            let a = S::add(lanes[0], lanes[4]);
            let b = S::add(lanes[1], lanes[5]);
            let c = S::add(lanes[2], lanes[6]);
            let d = S::add(lanes[3], lanes[7]);
            let expect = S::add(S::add(a, c), S::add(b, d));
            let got = reduce_lanes::<S>(lanes);
            assert!(
                got == expect || (got.is_nan() && expect.is_nan()),
                "{:?}",
                S::KIND
            );
            // All-identity lanes reduce to the additive identity.
            assert_eq!(reduce_lanes::<S>([S::ZERO; LANES]), S::ZERO);
        }
        for sr in SemiringKind::ALL {
            for_each_semiring!(sr, check_tree());
        }
    }

    #[test]
    fn fold_run_shape_is_a_function_of_length_only() {
        fn check_fold<S: SemiringOps>() {
            for n in [0usize, 1, 7, 8, 9, 16, 23] {
                let vals: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();
                // Reference: the documented lane shape, written out.
                let mut lanes = [S::ZERO; LANES];
                let mut t = 0;
                while t + LANES <= n {
                    for q in 0..LANES {
                        lanes[q] = S::add(lanes[q], vals[t + q]);
                    }
                    t += LANES;
                }
                let mut expect = reduce_lanes::<S>(lanes);
                for &v in &vals[t..] {
                    expect = S::add(expect, v);
                }
                assert_eq!(fold_run::<S>(&vals).to_bits(), expect.to_bits(), "{:?} n={n}", S::KIND);
            }
            assert_eq!(fold_run::<S>(&[]), S::ZERO);
        }
        for sr in SemiringKind::ALL {
            for_each_semiring!(sr, check_fold());
        }
    }

    #[test]
    fn macro_selects_the_matching_instantiation() {
        fn kind_of<S: SemiringOps>() -> SemiringKind {
            S::KIND
        }
        for sr in SemiringKind::ALL {
            assert_eq!(for_each_semiring!(sr, kind_of()), sr);
        }
    }
}
