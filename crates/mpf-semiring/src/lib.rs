#![warn(missing_docs)]
//! Commutative semirings for MPF queries.
//!
//! The MPF (Marginalize a Product Function) setting of Corrada Bravo &
//! Ramakrishnan (SIGMOD 2007) is defined over measures drawn from an
//! arbitrary **commutative semiring**: a set closed under an additive and a
//! multiplicative operation, where both operations are associative and
//! commutative, the additive operation distributes with respect to the
//! multiplicative operation, and the set contains identity elements of both
//! operations (Section 2 of the paper).
//!
//! The *multiplicative* operation is used by the **product join** (the `*` in
//! `s1[f] * s2[f]`), and the *additive* operation is the aggregate used by
//! marginalization (`SUM`, `MIN`, ... in `GroupBy`). Distributivity is what
//! makes the Generalized Distributive Law — and therefore every optimization
//! in the paper — sound: a `GroupBy` may be pushed below a product join
//! exactly because `add` distributes over `mul`.
//!
//! Two layers are provided:
//!
//! * [`Semiring`] — a type-level trait, with lawful instances
//!   ([`SumProduct`], [`MinSum`], [`MaxSum`], [`MinProduct`], [`MaxProduct`],
//!   [`BoolOrAnd`]). These are convenient for generic algorithms and for
//!   property-testing the semiring laws.
//! * [`SemiringKind`] — a dynamic (enum-dispatched) view over `f64` measures,
//!   used by the storage/execution layers so relations do not need to be
//!   monomorphized per semiring.
//!
//! Division ([`SemiringKind::div`]) is the partial inverse of `mul` needed by
//! the *update semijoin* of the Belief Propagation backward pass (Definition 6
//! / Appendix A of the paper). We adopt the standard BP convention
//! `0 / 0 = 0`.
//!
//! A third, compile-time layer lives in [`kernel`]: zero-sized op types
//! monomorphizing the columnar sparse/dense kernels per semiring (the
//! [`for_each_semiring`] macro bridges from a runtime [`SemiringKind`]).

pub mod kernel;

/// A commutative semiring over a value type.
///
/// Laws (all checked by property tests in this crate):
///
/// * `add` and `mul` are associative and commutative;
/// * `zero` is the identity of `add` and annihilates `mul`
///   (`mul(zero, a) = zero`);
/// * `one` is the identity of `mul`;
/// * `mul` distributes over `add`:
///   `mul(a, add(b, c)) = add(mul(a, b), mul(a, c))`.
pub trait Semiring {
    /// The measure type.
    type Value: Copy + PartialEq + core::fmt::Debug;

    /// Additive identity (the value of an empty aggregate).
    fn zero() -> Self::Value;
    /// Multiplicative identity (the implicit measure of a plain relation).
    fn one() -> Self::Value;
    /// The additive (aggregate / marginalization) operation.
    fn add(a: Self::Value, b: Self::Value) -> Self::Value;
    /// The multiplicative (product join) operation.
    fn mul(a: Self::Value, b: Self::Value) -> Self::Value;
}

/// A semiring whose multiplicative monoid admits a (partial) inverse.
///
/// Required by the update semijoin used in Belief Propagation's backward
/// pass. `div(a, b)` must satisfy `mul(div(a, b), b) = a` whenever `b` is
/// invertible; the convention `div(zero, zero) = zero` is used elsewhere.
pub trait SemiringWithDivision: Semiring {
    /// Partial inverse of [`Semiring::mul`].
    fn div(a: Self::Value, b: Self::Value) -> Self::Value;
}

/// The ordinary sum-product semiring `(ℝ, +, ×, 0, 1)`.
///
/// This is the semiring of probabilistic inference: product joins multiply
/// local probabilities, and `SUM` marginalizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumProduct;

impl Semiring for SumProduct {
    type Value = f64;
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

impl SemiringWithDivision for SumProduct {
    fn div(a: f64, b: f64) -> f64 {
        if a == 0.0 && b == 0.0 {
            0.0
        } else {
            a / b
        }
    }
}

/// The tropical min-sum semiring `(ℝ ∪ {+∞}, min, +, +∞, 0)`.
///
/// Useful for shortest-path / minimum-cost style MPF queries where measures
/// of joined relations are *added* and the aggregate takes the minimum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinSum;

impl Semiring for MinSum {
    type Value = f64;
    fn zero() -> f64 {
        f64::INFINITY
    }
    fn one() -> f64 {
        0.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

impl SemiringWithDivision for MinSum {
    fn div(a: f64, b: f64) -> f64 {
        // Inverse of `+`; ∞ - ∞ is the `0/0` case.
        if a == f64::INFINITY && b == f64::INFINITY {
            f64::INFINITY
        } else {
            a - b
        }
    }
}

/// The tropical max-sum semiring `(ℝ ∪ {−∞}, max, +, −∞, 0)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxSum;

impl Semiring for MaxSum {
    type Value = f64;
    fn zero() -> f64 {
        f64::NEG_INFINITY
    }
    fn one() -> f64 {
        0.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

impl SemiringWithDivision for MaxSum {
    fn div(a: f64, b: f64) -> f64 {
        if a == f64::NEG_INFINITY && b == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            a - b
        }
    }
}

/// The min-product semiring `(ℝ₊ ∪ {+∞}, min, ×, +∞, 1)` over non-negative
/// reals.
///
/// This is the semiring behind the paper's decision-support query
/// *"What is the minimum investment on each part?"* — measures are combined
/// by product along the supply chain and aggregated with `MIN`. Distributivity
/// of `min` over `×` requires non-negative measures; the storage layer
/// validates this when the semiring is selected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinProduct;

impl Semiring for MinProduct {
    type Value = f64;
    fn zero() -> f64 {
        f64::INFINITY
    }
    fn one() -> f64 {
        1.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        // `+∞` is the additive identity and must annihilate multiplication;
        // IEEE `∞ × 0 = NaN` would break that, so handle it explicitly.
        if a == f64::INFINITY || b == f64::INFINITY {
            f64::INFINITY
        } else {
            a * b
        }
    }
}

/// The max-product (Viterbi) semiring `([0, ∞), max, ×, 0, 1)`.
///
/// Used for most-probable-explanation inference over probabilistic MPF views.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxProduct;

impl Semiring for MaxProduct {
    type Value = f64;
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

impl SemiringWithDivision for MaxProduct {
    fn div(a: f64, b: f64) -> f64 {
        if a == 0.0 && b == 0.0 {
            0.0
        } else {
            a / b
        }
    }
}

/// The log-space sum-product semiring: measures are *log* weights, the
/// multiplicative operation is `+` and the additive operation is
/// `logsumexp`. Isomorphic to [`SumProduct`] under `exp`, but numerically
/// stable for long product chains of small probabilities — the regime of
/// probabilistic inference over many CPTs (Section 4 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogSumProduct;

/// Numerically-stable `ln(exp(a) + exp(b))`.
pub fn logsumexp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        f64::NEG_INFINITY
    } else {
        hi + (lo - hi).exp().ln_1p()
    }
}

impl Semiring for LogSumProduct {
    type Value = f64;
    fn zero() -> f64 {
        f64::NEG_INFINITY
    }
    fn one() -> f64 {
        0.0
    }
    fn add(a: f64, b: f64) -> f64 {
        logsumexp(a, b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

impl SemiringWithDivision for LogSumProduct {
    fn div(a: f64, b: f64) -> f64 {
        if a == f64::NEG_INFINITY && b == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            a - b
        }
    }
}

/// The Boolean semiring `({0, 1}, ∨, ∧, 0, 1)`.
///
/// The paper singles this out as a pertinent allowable domain: MPF queries in
/// this semiring compute reachability/satisfiability-style facts (does *any*
/// supply chain exist through this warehouse?).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    type Value = bool;
    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn add(a: bool, b: bool) -> bool {
        a || b
    }
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
}

/// Dynamically-dispatched semiring operations over `f64` measures.
///
/// The execution engine stores every measure as `f64` (Boolean measures are
/// `0.0` / `1.0`) and threads one of these values through operators, avoiding
/// monomorphization of the whole engine per semiring while staying faithful
/// to the algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemiringKind {
    /// `(+, ×)` — probabilistic inference, totals.
    SumProduct,
    /// `(min, +)` — minimum additive cost.
    MinSum,
    /// `(max, +)` — maximum additive gain.
    MaxSum,
    /// `(min, ×)` — minimum multiplicative cost (paper's `MIN(inv)`).
    MinProduct,
    /// `(max, ×)` — Viterbi / most probable explanation.
    MaxProduct,
    /// `(∨, ∧)` on `{0.0, 1.0}` — existence queries.
    BoolOrAnd,
    /// `(logsumexp, +)` — sum-product over log-space measures.
    LogSumProduct,
}

impl SemiringKind {
    /// All supported semirings, for exhaustive testing.
    pub const ALL: [SemiringKind; 7] = [
        SemiringKind::SumProduct,
        SemiringKind::MinSum,
        SemiringKind::MaxSum,
        SemiringKind::MinProduct,
        SemiringKind::MaxProduct,
        SemiringKind::BoolOrAnd,
        SemiringKind::LogSumProduct,
    ];

    /// Additive identity.
    pub fn zero(self) -> f64 {
        match self {
            SemiringKind::SumProduct => 0.0,
            SemiringKind::MinSum | SemiringKind::MinProduct => f64::INFINITY,
            SemiringKind::MaxSum | SemiringKind::LogSumProduct => f64::NEG_INFINITY,
            SemiringKind::MaxProduct => 0.0,
            SemiringKind::BoolOrAnd => 0.0,
        }
    }

    /// Multiplicative identity — the implicit measure of a plain (non-measure)
    /// relation, per Section 2 of the paper.
    pub fn one(self) -> f64 {
        match self {
            SemiringKind::SumProduct | SemiringKind::MinProduct | SemiringKind::MaxProduct => 1.0,
            SemiringKind::MinSum | SemiringKind::MaxSum | SemiringKind::LogSumProduct => 0.0,
            SemiringKind::BoolOrAnd => 1.0,
        }
    }

    /// The additive (aggregate) operation.
    #[inline]
    pub fn add(self, a: f64, b: f64) -> f64 {
        match self {
            SemiringKind::SumProduct => a + b,
            SemiringKind::MinSum | SemiringKind::MinProduct => a.min(b),
            SemiringKind::MaxSum | SemiringKind::MaxProduct => a.max(b),
            SemiringKind::LogSumProduct => logsumexp(a, b),
            SemiringKind::BoolOrAnd => {
                if a != 0.0 || b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The multiplicative (product join) operation.
    #[inline]
    pub fn mul(self, a: f64, b: f64) -> f64 {
        match self {
            SemiringKind::SumProduct | SemiringKind::MaxProduct => a * b,
            SemiringKind::MinProduct => {
                // `+∞` (the additive identity) must annihilate; avoid the
                // IEEE `∞ × 0 = NaN` pitfall.
                if a == f64::INFINITY || b == f64::INFINITY {
                    f64::INFINITY
                } else {
                    a * b
                }
            }
            SemiringKind::MinSum | SemiringKind::MaxSum | SemiringKind::LogSumProduct => a + b,
            SemiringKind::BoolOrAnd => {
                if a != 0.0 && b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Whether the multiplicative monoid has a (partial) inverse, i.e.
    /// whether the update semijoin / Belief Propagation backward pass is
    /// available in this semiring.
    pub fn has_division(self) -> bool {
        !matches!(self, SemiringKind::MinProduct | SemiringKind::BoolOrAnd)
    }

    /// Partial inverse of [`SemiringKind::mul`], with the Belief Propagation
    /// convention that dividing the additive identity by itself yields the
    /// additive identity (`0 / 0 = 0` in sum-product).
    ///
    /// # Panics
    /// Panics if the semiring has no division (see
    /// [`SemiringKind::has_division`]).
    #[inline]
    pub fn div(self, a: f64, b: f64) -> f64 {
        match self {
            SemiringKind::SumProduct => {
                if a == 0.0 && b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
            SemiringKind::MaxProduct => {
                if a == 0.0 && b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
            SemiringKind::MinSum => {
                if a == f64::INFINITY && b == f64::INFINITY {
                    f64::INFINITY
                } else {
                    a - b
                }
            }
            SemiringKind::MaxSum | SemiringKind::LogSumProduct => {
                if a == f64::NEG_INFINITY && b == f64::NEG_INFINITY {
                    f64::NEG_INFINITY
                } else {
                    a - b
                }
            }
            SemiringKind::MinProduct | SemiringKind::BoolOrAnd => {
                panic!("semiring {self:?} has no multiplicative inverse")
            }
        }
    }

    /// Fold the additive operation over an iterator of measures.
    pub fn sum(self, values: impl IntoIterator<Item = f64>) -> f64 {
        values
            .into_iter()
            .fold(self.zero(), |acc, v| self.add(acc, v))
    }

    /// Fold the multiplicative operation over an iterator of measures.
    pub fn product(self, values: impl IntoIterator<Item = f64>) -> f64 {
        values
            .into_iter()
            .fold(self.one(), |acc, v| self.mul(acc, v))
    }

    /// Whether a measure value is valid in this semiring's carrier set
    /// (e.g. Boolean measures must be exactly `0.0` or `1.0`, min-product
    /// measures must be non-negative for distributivity to hold).
    pub fn is_valid_measure(self, v: f64) -> bool {
        if v.is_nan() {
            return false;
        }
        match self {
            SemiringKind::SumProduct
            | SemiringKind::MinSum
            | SemiringKind::MaxSum
            | SemiringKind::LogSumProduct => true,
            SemiringKind::MinProduct | SemiringKind::MaxProduct => v >= 0.0,
            SemiringKind::BoolOrAnd => v == 0.0 || v == 1.0,
        }
    }

    /// Whether a value is acceptable as an *accumulator* (the running
    /// result of folding `add`/`mul`) in this semiring.
    ///
    /// Policy: `NaN` is never acceptable — it only arises from invalid
    /// inputs or undefined operations and silently poisons every
    /// downstream measure. An infinity is acceptable **only when it is
    /// this semiring's additive identity** (`+∞` for min-sum/min-product,
    /// `−∞` for max-sum/log-sum-product): those infinities are genuine
    /// carrier elements (the value of an empty aggregate), while in the
    /// real-valued semirings (sum-product, max-product, Boolean) an
    /// infinite accumulator can only mean overflow or infinite inputs.
    pub fn is_valid_accumulation(self, v: f64) -> bool {
        if v.is_nan() {
            return false;
        }
        v.is_finite() || v == self.zero()
    }

    /// [`SemiringKind::add`] that rejects results outside the carrier (see
    /// [`SemiringKind::is_valid_accumulation`]).
    pub fn checked_add(self, a: f64, b: f64) -> Result<f64, MeasureError> {
        let v = self.add(a, b);
        if self.is_valid_accumulation(v) {
            Ok(v)
        } else {
            Err(MeasureError { semiring: self, value: v })
        }
    }

    /// [`SemiringKind::mul`] that rejects results outside the carrier (see
    /// [`SemiringKind::is_valid_accumulation`]).
    pub fn checked_mul(self, a: f64, b: f64) -> Result<f64, MeasureError> {
        let v = self.mul(a, b);
        if self.is_valid_accumulation(v) {
            Ok(v)
        } else {
            Err(MeasureError { semiring: self, value: v })
        }
    }
}

/// A semiring operation produced a measure outside the semiring's carrier
/// set (NaN, or an infinity that is not the additive identity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureError {
    /// The semiring in which the operation ran.
    pub semiring: SemiringKind,
    /// The offending value.
    pub value: f64,
}

impl core::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "measure {} is outside the carrier of the {:?} semiring",
            self.value, self.semiring
        )
    }
}

impl std::error::Error for MeasureError {}

/// The aggregate function named in an MPF query (`AGG` in Definition 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// `SUM(f)`
    Sum,
    /// `MIN(f)`
    Min,
    /// `MAX(f)`
    Max,
    /// `OR(f)` over Boolean measures
    Or,
}

/// The multiplicative operation named in an MPF view definition
/// (`measure = (* s1.f, ..., sn.f)` in the paper's SQL extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Combine {
    /// Measures are multiplied along the product join.
    Product,
    /// Measures are added along the product join.
    Sum,
    /// Boolean conjunction.
    And,
}

/// Resolve a `(Combine, Aggregate)` pair to the semiring in which the pair is
/// lawful (i.e. the aggregate distributes over the combine operation), or
/// `None` if the pair does not form a commutative semiring.
///
/// The paper runs both `SUM(inv)` and `MIN(inv)` over the same product-join
/// view; those are the `(Product, Sum)` and `(Product, Min)` rows here.
pub fn resolve_semiring(combine: Combine, agg: Aggregate) -> Option<SemiringKind> {
    match (combine, agg) {
        (Combine::Product, Aggregate::Sum) => Some(SemiringKind::SumProduct),
        (Combine::Product, Aggregate::Min) => Some(SemiringKind::MinProduct),
        (Combine::Product, Aggregate::Max) => Some(SemiringKind::MaxProduct),
        (Combine::Sum, Aggregate::Min) => Some(SemiringKind::MinSum),
        (Combine::Sum, Aggregate::Max) => Some(SemiringKind::MaxSum),
        (Combine::And, Aggregate::Or) => Some(SemiringKind::BoolOrAnd),
        _ => None,
    }
}

/// Approximate equality for floating-point measures, tolerant of the
/// re-association that plan transformations introduce.
///
/// Handles infinities exactly (tropical identities must compare equal).
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, 1e-9)
}

/// [`approx_eq`] with an explicit relative tolerance.
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    if a == b {
        return true; // covers equal infinities and exact zeros
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= eps * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        for k in SemiringKind::ALL {
            let vals = match k {
                SemiringKind::BoolOrAnd => vec![0.0, 1.0],
                _ => vec![0.0, 1.0, 2.5, 7.0],
            };
            for v in vals {
                assert!(approx_eq(k.add(k.zero(), v), v), "{k:?} add identity");
                assert!(approx_eq(k.mul(k.one(), v), v), "{k:?} mul identity");
                assert!(
                    approx_eq(k.mul(k.zero(), v), k.zero()),
                    "{k:?} zero annihilates"
                );
            }
        }
    }

    #[test]
    fn sum_product_matches_trait() {
        assert_eq!(
            SumProduct::add(2.0, 3.0),
            SemiringKind::SumProduct.add(2.0, 3.0)
        );
        assert_eq!(
            SumProduct::mul(2.0, 3.0),
            SemiringKind::SumProduct.mul(2.0, 3.0)
        );
        assert_eq!(SumProduct::zero(), SemiringKind::SumProduct.zero());
        assert_eq!(SumProduct::one(), SemiringKind::SumProduct.one());
    }

    #[test]
    fn tropical_identities() {
        assert_eq!(MinSum::zero(), f64::INFINITY);
        assert_eq!(MinSum::one(), 0.0);
        assert_eq!(MinSum::add(3.0, 5.0), 3.0);
        assert_eq!(MinSum::mul(3.0, 5.0), 8.0);
        assert_eq!(MaxSum::zero(), f64::NEG_INFINITY);
        assert_eq!(MaxSum::add(3.0, 5.0), 5.0);
    }

    #[test]
    fn division_inverts_mul() {
        for k in SemiringKind::ALL {
            if !k.has_division() {
                continue;
            }
            for a in [0.5, 1.0, 3.0] {
                for b in [0.25, 2.0, 4.0] {
                    let prod = k.mul(a, b);
                    assert!(
                        approx_eq(k.div(prod, b), a),
                        "{k:?}: div(mul({a},{b}),{b}) != {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn division_zero_convention() {
        assert_eq!(SemiringKind::SumProduct.div(0.0, 0.0), 0.0);
        assert_eq!(
            SemiringKind::MinSum.div(f64::INFINITY, f64::INFINITY),
            f64::INFINITY
        );
        assert_eq!(
            SemiringKind::MaxSum.div(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
        assert_eq!(SemiringKind::MaxProduct.div(0.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn bool_division_panics() {
        SemiringKind::BoolOrAnd.div(1.0, 1.0);
    }

    #[test]
    fn resolve_pairs() {
        assert_eq!(
            resolve_semiring(Combine::Product, Aggregate::Sum),
            Some(SemiringKind::SumProduct)
        );
        assert_eq!(
            resolve_semiring(Combine::Product, Aggregate::Min),
            Some(SemiringKind::MinProduct)
        );
        assert_eq!(
            resolve_semiring(Combine::Sum, Aggregate::Min),
            Some(SemiringKind::MinSum)
        );
        assert_eq!(
            resolve_semiring(Combine::And, Aggregate::Or),
            Some(SemiringKind::BoolOrAnd)
        );
        // `SUM` does not distribute over `+` combine (that is double counting).
        assert_eq!(resolve_semiring(Combine::Sum, Aggregate::Sum), None);
        assert_eq!(resolve_semiring(Combine::And, Aggregate::Sum), None);
    }

    #[test]
    fn folds() {
        let k = SemiringKind::SumProduct;
        assert_eq!(k.sum([1.0, 2.0, 3.0]), 6.0);
        assert_eq!(k.product([2.0, 3.0, 4.0]), 24.0);
        let t = SemiringKind::MinSum;
        assert_eq!(t.sum([5.0, 2.0, 9.0]), 2.0);
        assert_eq!(t.product([5.0, 2.0, 9.0]), 16.0);
        // Empty folds give identities.
        assert_eq!(k.sum([]), 0.0);
        assert_eq!(t.sum([]), f64::INFINITY);
    }

    #[test]
    fn accumulation_validity_is_semiring_aware() {
        // NaN is invalid everywhere.
        for k in SemiringKind::ALL {
            assert!(!k.is_valid_accumulation(f64::NAN), "{k:?}");
            assert!(k.is_valid_accumulation(1.0), "{k:?}");
        }
        // Tropical identities are legal accumulators...
        assert!(SemiringKind::MinSum.is_valid_accumulation(f64::INFINITY));
        assert!(SemiringKind::MinProduct.is_valid_accumulation(f64::INFINITY));
        assert!(SemiringKind::MaxSum.is_valid_accumulation(f64::NEG_INFINITY));
        assert!(SemiringKind::LogSumProduct.is_valid_accumulation(f64::NEG_INFINITY));
        // ...but the opposite infinity is not in those carriers.
        assert!(!SemiringKind::MinSum.is_valid_accumulation(f64::NEG_INFINITY));
        assert!(!SemiringKind::MaxSum.is_valid_accumulation(f64::INFINITY));
        // Real-valued semirings treat any infinity as overflow.
        assert!(!SemiringKind::SumProduct.is_valid_accumulation(f64::INFINITY));
        assert!(!SemiringKind::SumProduct.is_valid_accumulation(f64::NEG_INFINITY));
        assert!(!SemiringKind::MaxProduct.is_valid_accumulation(f64::INFINITY));
    }

    #[test]
    fn checked_ops_catch_overflow_and_nan() {
        let sp = SemiringKind::SumProduct;
        assert_eq!(sp.checked_add(2.0, 3.0), Ok(5.0));
        assert_eq!(sp.checked_mul(2.0, 3.0), Ok(6.0));
        let overflow = sp.checked_add(f64::MAX, f64::MAX).unwrap_err();
        assert_eq!(overflow.semiring, sp);
        assert_eq!(overflow.value, f64::INFINITY);
        assert!(sp.checked_mul(f64::MAX, 2.0).is_err());
        // inf − inf = NaN in min-sum division-adjacent arithmetic; via mul
        // the NaN path is inf + (−inf).
        let ms = SemiringKind::MinSum;
        assert!(ms.checked_mul(f64::INFINITY, f64::NEG_INFINITY).is_err());
        // The tropical identity flows through checked ops untouched.
        assert_eq!(ms.checked_add(f64::INFINITY, f64::INFINITY), Ok(f64::INFINITY));
        assert!(format!("{}", overflow).contains("SumProduct"));
    }

    #[test]
    fn measure_validity() {
        assert!(SemiringKind::BoolOrAnd.is_valid_measure(1.0));
        assert!(!SemiringKind::BoolOrAnd.is_valid_measure(0.5));
        assert!(!SemiringKind::MinProduct.is_valid_measure(-1.0));
        assert!(SemiringKind::SumProduct.is_valid_measure(-1.0));
        assert!(!SemiringKind::SumProduct.is_valid_measure(f64::NAN));
    }

    #[test]
    fn log_space_is_isomorphic_to_sum_product() {
        let lsp = SemiringKind::LogSumProduct;
        let sp = SemiringKind::SumProduct;
        for a in [0.001f64, 0.5, 1.0, 3.0] {
            for b in [0.002f64, 0.25, 2.0] {
                assert!(approx_eq(
                    lsp.add(a.ln(), b.ln()).exp(),
                    sp.add(a, b)
                ));
                assert!(approx_eq(
                    lsp.mul(a.ln(), b.ln()).exp(),
                    sp.mul(a, b)
                ));
                assert!(approx_eq(
                    lsp.div(a.ln(), b.ln()).exp(),
                    sp.div(a, b)
                ));
            }
        }
        assert_eq!(lsp.zero(), f64::NEG_INFINITY); // log 0
        assert_eq!(lsp.one(), 0.0); // log 1
    }

    #[test]
    fn logsumexp_is_stable_for_tiny_logs() {
        // Adding two probabilities of 1e-300 in log space must not
        // underflow: ln(2e-300) = ln 2 + ln 1e-300.
        let tiny = 1e-300f64.ln();
        let sum = logsumexp(tiny, tiny);
        assert!(approx_eq(sum, tiny + std::f64::consts::LN_2));
        assert_eq!(logsumexp(f64::NEG_INFINITY, f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert!(approx_eq(logsumexp(f64::NEG_INFINITY, 1.5), 1.5));
    }

    #[test]
    fn approx_eq_behaviour() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.001));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, 1.0));
        assert!(approx_eq(1e12, 1e12 + 1.0));
    }
}
