//! Property tests for the commutative-semiring laws of every instance.
//!
//! Floating-point `add`/`mul` are only approximately associative, so all
//! comparisons use a relative tolerance. For the tropical semirings the
//! operations (`min`, `max`, `+`) are exactly associative on the sampled
//! grid, and distributivity is exact.

use mpf_semiring::{approx_eq_eps, SemiringKind};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Sample measures valid in every semiring's carrier (positive, modest
/// magnitude so products stay finite).
fn measure() -> impl Strategy<Value = f64> {
    (1u32..1000).prop_map(|n| n as f64 / 16.0)
}

fn bool_measure() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0)]
}

fn check_laws(k: SemiringKind, a: f64, b: f64, c: f64) {
    // Commutativity.
    assert!(approx_eq_eps(k.add(a, b), k.add(b, a), EPS), "{k:?} add comm");
    assert!(approx_eq_eps(k.mul(a, b), k.mul(b, a), EPS), "{k:?} mul comm");
    // Associativity.
    assert!(
        approx_eq_eps(k.add(k.add(a, b), c), k.add(a, k.add(b, c)), EPS),
        "{k:?} add assoc"
    );
    assert!(
        approx_eq_eps(k.mul(k.mul(a, b), c), k.mul(a, k.mul(b, c)), EPS),
        "{k:?} mul assoc"
    );
    // Identities.
    assert!(approx_eq_eps(k.add(k.zero(), a), a, EPS), "{k:?} add id");
    assert!(approx_eq_eps(k.mul(k.one(), a), a, EPS), "{k:?} mul id");
    // Annihilation.
    assert!(
        approx_eq_eps(k.mul(k.zero(), a), k.zero(), EPS),
        "{k:?} zero annihilates"
    );
    // Distributivity: a * (b + c) = a*b + a*c.
    assert!(
        approx_eq_eps(
            k.mul(a, k.add(b, c)),
            k.add(k.mul(a, b), k.mul(a, c)),
            EPS
        ),
        "{k:?} distributivity: a={a} b={b} c={c}"
    );
}

proptest! {
    #[test]
    fn numeric_semiring_laws(a in measure(), b in measure(), c in measure()) {
        for k in [
            SemiringKind::SumProduct,
            SemiringKind::MinSum,
            SemiringKind::MaxSum,
            SemiringKind::MinProduct,
            SemiringKind::MaxProduct,
            SemiringKind::LogSumProduct,
        ] {
            check_laws(k, a, b, c);
        }
    }

    #[test]
    fn boolean_semiring_laws(a in bool_measure(), b in bool_measure(), c in bool_measure()) {
        check_laws(SemiringKind::BoolOrAnd, a, b, c);
    }

    #[test]
    fn division_is_right_inverse(a in measure(), b in measure()) {
        for k in SemiringKind::ALL {
            if !k.has_division() {
                continue;
            }
            let prod = k.mul(a, b);
            prop_assert!(
                approx_eq_eps(k.div(prod, b), a, 1e-6),
                "{:?}: div(mul({a},{b}),{b})", k
            );
        }
    }
}
