//! Cost-based physical operator selection.
//!
//! The paper emphasizes that, unlike the GDL setting where one algorithm
//! implements each of multiplication and marginalization, "in the
//! relational case there are multiple algorithms to implement join
//! (multiplication) and aggregation (summation), and the choice of
//! algorithm is based on the cost of accessing disk-resident operands".
//! This module makes that choice for a finished logical plan:
//!
//! * a **hash join** needs its build side (the smaller operand) resident
//!   in the workspace; if the smaller operand exceeds the memory budget, a
//!   Grace (partitioned) hash join is selected with enough partitions that
//!   each build partition fits;
//! * a **hash aggregate** needs one accumulator per distinct group; if the
//!   estimated group count exceeds the budget, sort aggregation is
//!   selected.
//!
//! Operand sizes come from the same catalog-based estimator the join
//! ordering used ([`estimate::plan_estimate`]).

use mpf_algebra::{AggAlgo, JoinAlgo, PhysicalPlan, Plan};

use crate::{estimate, OptContext};

/// Physical selection knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalConfig {
    /// Rows that fit in the operator workspace (hash-table budget).
    pub memory_rows: f64,
}

impl Default for PhysicalConfig {
    fn default() -> Self {
        // Roughly a 16 MB workspace of 16-byte rows — the same order as
        // PostgreSQL 8.1's default `work_mem`-sized hash operators.
        PhysicalConfig {
            memory_rows: 1_000_000.0,
        }
    }
}

/// Annotate a logical plan with cost-chosen operator algorithms.
pub fn choose_physical(
    ctx: &OptContext<'_>,
    plan: &Plan,
    cfg: PhysicalConfig,
) -> PhysicalPlan {
    PhysicalPlan::from_logical(
        plan,
        &mut |left, right| {
            let (_, lr) = estimate::plan_estimate(ctx, left);
            let (_, rr) = estimate::plan_estimate(ctx, right);
            let build = lr.min(rr);
            if build <= cfg.memory_rows {
                JoinAlgo::Hash
            } else {
                // Grace hash join with enough partitions that each build
                // partition fits the workspace.
                JoinAlgo::Grace {
                    partitions: (build / cfg.memory_rows).ceil().max(2.0) as usize,
                }
            }
        },
        &mut |input, group_vars| {
            let (_, in_rows) = estimate::plan_estimate(ctx, input);
            let schema: mpf_storage::Schema = group_vars.iter().copied().collect();
            let groups = estimate::group_rows(ctx, in_rows, &schema);
            if groups <= cfg.memory_rows {
                AggAlgo::HashAgg
            } else {
                AggAlgo::SortAgg
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, Algorithm, BaseRel, CostModel, QuerySpec};
    use mpf_storage::{Catalog, Schema, VarId};

    fn ctx_fixture(cat: &mut Catalog) -> (Vec<BaseRel>, VarId, VarId, VarId) {
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 10_000).unwrap();
        let c = cat.add_var("c", 10_000).unwrap();
        (
            vec![
                BaseRel {
                    name: "r1".into(),
                    schema: Schema::new(vec![a, b]).unwrap(),
                    cardinality: 100_000,
                    fd_lhs: None,
                },
                BaseRel {
                    name: "r2".into(),
                    schema: Schema::new(vec![b, c]).unwrap(),
                    cardinality: 5_000_000,
                    fd_lhs: None,
                },
            ],
            a,
            b,
            c,
        )
    }

    #[test]
    fn small_budget_forces_sort_operators() {
        let mut cat = Catalog::new();
        let (rels, a, ..) = ctx_fixture(&mut cat);
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
        let big = choose_physical(&ctx, &plan, PhysicalConfig { memory_rows: 1e9 });
        assert_eq!(big.sort_operator_count(), 0, "everything fits -> all hash");
        let tiny = choose_physical(&ctx, &plan, PhysicalConfig { memory_rows: 10.0 });
        assert!(
            tiny.spill_operator_count() > 0,
            "nothing fits -> spilling operators appear"
        );
        // Annotations do not change the logical plan.
        assert_eq!(tiny.to_logical(), plan);
    }

    #[test]
    fn default_budget_is_permissive_at_laptop_scale() {
        let mut cat = Catalog::new();
        let (rels, a, ..) = ctx_fixture(&mut cat);
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusLinear).plan;
        let phys = choose_physical(&ctx, &plan, PhysicalConfig::default());
        // r2 (5M rows) exceeds the default budget, but its join partner is
        // the build side, so hash join still applies everywhere except
        // operators whose *smaller* operand exceeds the budget.
        assert!(phys.spill_operator_count() <= plan.join_count() + plan.group_by_count());
    }
}
