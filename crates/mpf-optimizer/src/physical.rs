//! Cost-based physical operator selection.
//!
//! The paper emphasizes that, unlike the GDL setting where one algorithm
//! implements each of multiplication and marginalization, "in the
//! relational case there are multiple algorithms to implement join
//! (multiplication) and aggregation (summation), and the choice of
//! algorithm is based on the cost of accessing disk-resident operands".
//! This module makes that choice for a finished logical plan:
//!
//! * a **hash join** needs its build side (the smaller operand) resident
//!   in the workspace; if the smaller operand exceeds the memory budget, a
//!   Grace (partitioned) hash join is selected with enough partitions that
//!   each build partition fits;
//! * a **hash aggregate** needs one accumulator per distinct group; if the
//!   estimated group count exceeds the budget, sort aggregation is
//!   selected;
//! * when the executor will run with more than one worker thread
//!   ([`PhysicalConfig::threads`]), memory-resident operators over large
//!   operands are annotated with the **parallel partitioned** variants
//!   ([`JoinAlgo::Parallel`], [`AggAlgo::ParallelAgg`]), with the
//!   partition count sized for cache residency by
//!   [`mpf_algebra::partitioned::parallel_partitions`].
//!
//! Operand sizes come from the same catalog-based estimator the join
//! ordering used ([`estimate::plan_estimate`]).

use mpf_algebra::{partitioned, AggAlgo, DenseMode, JoinAlgo, PhysicalPlan, Plan, ReprMode};

use crate::{estimate, OptContext};

/// Estimated bytes per row for an operand of the given arity (mirrors
/// `FunctionalRelation::row_bytes`: 4-byte values plus an 8-byte measure).
fn row_bytes(arity: usize) -> u64 {
    arity as u64 * 4 + 8
}

/// Physical selection knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalConfig {
    /// Rows that fit in the operator workspace (hash-table budget).
    pub memory_rows: f64,
    /// Worker threads the executor will run with. With one thread the
    /// parallel operators are never selected (they degenerate to the
    /// plain hash operators at run time anyway, but the annotation would
    /// be noise in rendered plans).
    pub threads: usize,
    /// Minimum estimated build/group rows before a parallel operator is
    /// worth its partitioning pass. Small operands fit in cache whole;
    /// partitioning them only adds a copy.
    pub parallel_min_rows: f64,
    /// Whether to consider the dense odometer kernels ([`JoinAlgo::Dense`],
    /// [`AggAlgo::DenseAgg`]). Defaults to the `MPF_DENSE` environment
    /// variable ([`DenseMode::from_env`]).
    pub dense_mode: DenseMode,
    /// Minimum estimated operand density (rows over the schema's catalog
    /// grid) before [`DenseMode::Auto`] selects a dense operator. Sparse
    /// operands waste grid cells; at 0.5+ the odometer kernel's
    /// per-cell cost undercuts hashing.
    pub dense_min_density: f64,
    /// Whether to consider the sparse-tensor kernels
    /// ([`JoinAlgo::SparseTensor`], [`AggAlgo::SparseAgg`]). Defaults to
    /// the `MPF_REPR` environment variable ([`ReprMode::from_env`]).
    pub repr_mode: ReprMode,
    /// Minimum estimated operand density before [`ReprMode::Auto`]
    /// selects a sparse-tensor operator. Below ~1% the sorted-merge
    /// kernel's per-side sort does not pay for itself against a hash
    /// table that stays cache-resident.
    pub sparse_min_density: f64,
    /// Whether to fuse a dense join feeding a dense marginalization into
    /// a single [`PhysicalPlan::JoinAgg`] operator that contracts
    /// directly into the output grid without materializing the join
    /// intermediate. On by default; turn off to compare unfused plans.
    pub fuse: bool,
}

impl Default for PhysicalConfig {
    fn default() -> Self {
        // Roughly a 16 MB workspace of 16-byte rows — the same order as
        // PostgreSQL 8.1's default `work_mem`-sized hash operators.
        PhysicalConfig {
            memory_rows: 1_000_000.0,
            threads: mpf_algebra::limits::default_threads(),
            parallel_min_rows: 32_768.0,
            dense_mode: DenseMode::from_env(),
            dense_min_density: 0.5,
            repr_mode: ReprMode::from_env(),
            sparse_min_density: mpf_algebra::sparse::SPARSE_MIN_DENSITY,
            fuse: true,
        }
    }
}

impl PhysicalConfig {
    /// Set the worker-thread count the plan will execute with.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the dense-kernel selection mode (builder style).
    pub fn with_dense(mut self, mode: DenseMode) -> Self {
        self.dense_mode = mode;
        self
    }

    /// Set the sparse-tensor selection mode (builder style).
    pub fn with_repr(mut self, mode: ReprMode) -> Self {
        self.repr_mode = mode;
        self
    }

    /// Enable or disable join→marginalize fusion (builder style).
    pub fn with_fuse(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }
}

/// Whether the dense kernel should be selected for an operator whose
/// inputs have the given (schema, rows) estimates and whose output schema
/// grid must be materialized. `Off`: never. `On`: whenever every grid is
/// feasible. `Auto`: additionally every input must clear the density
/// threshold — near-complete operands are where the odometer kernel wins.
fn dense_applies(
    ctx: &OptContext<'_>,
    cfg: &PhysicalConfig,
    inputs: &[(&mpf_storage::Schema, f64)],
    out_schema: &mpf_storage::Schema,
) -> bool {
    if cfg.dense_mode == DenseMode::Off {
        return false;
    }
    if estimate::schema_density(ctx, out_schema, 0.0).is_none() {
        return false;
    }
    for &(schema, rows) in inputs {
        match estimate::schema_density(ctx, schema, rows) {
            None => return false,
            Some(d) => {
                if cfg.dense_mode == DenseMode::Auto && d < cfg.dense_min_density {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether a sparse-tensor kernel should be selected for an operator with
/// the given input estimates. Checked *after* [`dense_applies`]: when a
/// grid is complete enough for the odometer kernel, dense is strictly
/// better, so sparse covers the middle band — operands too sparse to grid
/// densely (or whose grids overflow the dense cell cap entirely) but
/// populated enough that sorted-merge over linearized coordinates beats
/// hashing. `Off`: never. `Sparse`: whenever the coordinate spaces are
/// feasible. `Auto`: additionally every input must clear
/// [`PhysicalConfig::sparse_min_density`].
fn sparse_applies(
    ctx: &OptContext<'_>,
    cfg: &PhysicalConfig,
    inputs: &[(&mpf_storage::Schema, f64)],
    out_schema: &mpf_storage::Schema,
) -> bool {
    if cfg.repr_mode == ReprMode::Off {
        return false;
    }
    if estimate::schema_density_wide(ctx, out_schema, 0.0).is_none() {
        return false;
    }
    for &(schema, rows) in inputs {
        match estimate::schema_density_wide(ctx, schema, rows) {
            None => return false,
            Some(d) => {
                if cfg.repr_mode == ReprMode::Auto && d < cfg.sparse_min_density {
                    return false;
                }
            }
        }
    }
    true
}

/// Fuse each dense join that feeds a dense marginalization into a single
/// [`PhysicalPlan::JoinAgg`]: the elimination step then contracts both
/// inputs straight into the group accumulator grid, skipping the join
/// intermediate entirely. Only the all-dense pairing is rewritten — that
/// is where the intermediate is a full grid and skipping it pays; the
/// hash and sparse pipelines keep their chosen algorithms.
fn fuse_join_agg(plan: PhysicalPlan) -> PhysicalPlan {
    match plan {
        PhysicalPlan::GroupBy {
            input,
            group_vars,
            algo: AggAlgo::DenseAgg,
        } => match *input {
            PhysicalPlan::Join {
                left,
                right,
                algo: JoinAlgo::Dense,
            } => PhysicalPlan::JoinAgg {
                left: Box::new(fuse_join_agg(*left)),
                right: Box::new(fuse_join_agg(*right)),
                group_vars,
            },
            other => PhysicalPlan::GroupBy {
                input: Box::new(fuse_join_agg(other)),
                group_vars,
                algo: AggAlgo::DenseAgg,
            },
        },
        PhysicalPlan::GroupBy {
            input,
            group_vars,
            algo,
        } => PhysicalPlan::GroupBy {
            input: Box::new(fuse_join_agg(*input)),
            group_vars,
            algo,
        },
        PhysicalPlan::Join { left, right, algo } => PhysicalPlan::Join {
            left: Box::new(fuse_join_agg(*left)),
            right: Box::new(fuse_join_agg(*right)),
            algo,
        },
        PhysicalPlan::Select { input, predicates } => PhysicalPlan::Select {
            input: Box::new(fuse_join_agg(*input)),
            predicates,
        },
        leaf @ (PhysicalPlan::Scan { .. } | PhysicalPlan::JoinAgg { .. }) => leaf,
    }
}

/// Annotate a logical plan with cost-chosen operator algorithms.
pub fn choose_physical(
    ctx: &OptContext<'_>,
    plan: &Plan,
    cfg: PhysicalConfig,
) -> PhysicalPlan {
    let phys = PhysicalPlan::from_logical(
        plan,
        &mut |left, right| {
            let (ls, lr) = estimate::plan_estimate(ctx, left);
            let (rs, rr) = estimate::plan_estimate(ctx, right);
            if dense_applies(ctx, &cfg, &[(&ls, lr), (&rs, rr)], &ls.union(&rs)) {
                return JoinAlgo::Dense;
            }
            if sparse_applies(ctx, &cfg, &[(&ls, lr), (&rs, rr)], &ls.union(&rs)) {
                return JoinAlgo::SparseTensor;
            }
            let build = lr.min(rr);
            if build <= cfg.memory_rows {
                if cfg.threads > 1 && build >= cfg.parallel_min_rows {
                    // Memory-resident but large: partition into
                    // cache-sized buckets and join them on the worker
                    // pool. Row bytes come from the wider schema so the
                    // partition count covers the probe side too.
                    let row_bytes = row_bytes(ls.arity().max(rs.arity()));
                    JoinAlgo::Parallel {
                        partitions: partitioned::parallel_partitions(
                            build as usize,
                            row_bytes,
                            cfg.threads,
                        ),
                    }
                } else {
                    JoinAlgo::Hash
                }
            } else {
                // Grace hash join with enough partitions that each build
                // partition fits the workspace.
                JoinAlgo::Grace {
                    partitions: (build / cfg.memory_rows).ceil().max(2.0) as usize,
                }
            }
        },
        &mut |input, group_vars| {
            let (in_schema, in_rows) = estimate::plan_estimate(ctx, input);
            let schema: mpf_storage::Schema = group_vars.iter().copied().collect();
            if dense_applies(ctx, &cfg, &[(&in_schema, in_rows)], &schema) {
                return AggAlgo::DenseAgg;
            }
            if sparse_applies(ctx, &cfg, &[(&in_schema, in_rows)], &schema) {
                return AggAlgo::SparseAgg;
            }
            let groups = estimate::group_rows(ctx, in_rows, &schema);
            if groups <= cfg.memory_rows {
                if cfg.threads > 1 && groups >= cfg.parallel_min_rows {
                    // Many groups: the accumulator table itself blows the
                    // cache, so partition on the group hash. Few-group
                    // aggregation stays cache-resident and gains nothing.
                    AggAlgo::ParallelAgg {
                        partitions: partitioned::parallel_partitions(
                            groups as usize,
                            row_bytes(schema.arity()),
                            cfg.threads,
                        ),
                    }
                } else {
                    AggAlgo::HashAgg
                }
            } else {
                AggAlgo::SortAgg
            }
        },
    );
    if cfg.fuse {
        fuse_join_agg(phys)
    } else {
        phys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, Algorithm, BaseRel, CostModel, QuerySpec};
    use mpf_storage::{Catalog, Schema, VarId};

    fn ctx_fixture(cat: &mut Catalog) -> (Vec<BaseRel>, VarId, VarId, VarId) {
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 10_000).unwrap();
        let c = cat.add_var("c", 10_000).unwrap();
        (
            vec![
                BaseRel {
                    name: "r1".into(),
                    schema: Schema::new(vec![a, b]).unwrap(),
                    cardinality: 100_000,
                    fd_lhs: None,
                },
                BaseRel {
                    name: "r2".into(),
                    schema: Schema::new(vec![b, c]).unwrap(),
                    cardinality: 5_000_000,
                    fd_lhs: None,
                },
            ],
            a,
            b,
            c,
        )
    }

    #[test]
    fn small_budget_forces_sort_operators() {
        let mut cat = Catalog::new();
        let (rels, a, ..) = ctx_fixture(&mut cat);
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
        let big = choose_physical(
            &ctx,
            &plan,
            PhysicalConfig {
                memory_rows: 1e9,
                ..PhysicalConfig::default()
            }
            .with_threads(1)
            .with_dense(DenseMode::Off)
            .with_repr(ReprMode::Off),
        );
        assert_eq!(big.sort_operator_count(), 0, "everything fits -> all hash");
        let tiny = choose_physical(
            &ctx,
            &plan,
            PhysicalConfig {
                memory_rows: 10.0,
                ..PhysicalConfig::default()
            }
            .with_threads(1)
            .with_dense(DenseMode::Off)
            .with_repr(ReprMode::Off),
        );
        assert!(
            tiny.spill_operator_count() > 0,
            "nothing fits -> spilling operators appear"
        );
        // Annotations do not change the logical plan.
        assert_eq!(tiny.to_logical(), plan);
    }

    #[test]
    fn default_budget_is_permissive_at_laptop_scale() {
        let mut cat = Catalog::new();
        let (rels, a, ..) = ctx_fixture(&mut cat);
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusLinear).plan;
        let phys = choose_physical(
            &ctx,
            &plan,
            PhysicalConfig::default()
                .with_threads(1)
                .with_dense(DenseMode::Off)
                .with_repr(ReprMode::Off),
        );
        // r2 (5M rows) exceeds the default budget, but its join partner is
        // the build side, so hash join still applies everywhere except
        // operators whose *smaller* operand exceeds the budget.
        assert!(phys.spill_operator_count() <= plan.join_count() + plan.group_by_count());
    }

    #[test]
    fn dense_selection_follows_mode_and_density() {
        // Complete relations over small domains: density 1.0 everywhere.
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 8).unwrap();
        let b = cat.add_var("b", 8).unwrap();
        let c = cat.add_var("c", 8).unwrap();
        let mk = |name: &str, schema: Schema, card: u64| BaseRel {
            name: name.into(),
            schema,
            cardinality: card,
            fd_lhs: None,
        };
        let rels = vec![
            mk("r1", Schema::new(vec![a, b]).unwrap(), 64),
            mk("r2", Schema::new(vec![b, c]).unwrap(), 64),
        ];
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
        let cfg = PhysicalConfig::default().with_threads(1).with_repr(ReprMode::Off);
        let off = choose_physical(&ctx, &plan, cfg.with_dense(DenseMode::Off));
        assert_eq!(off.dense_operator_count(), 0);
        let auto = choose_physical(&ctx, &plan, cfg.with_dense(DenseMode::Auto));
        assert_eq!(
            auto.dense_operator_count(),
            plan.join_count() + plan.group_by_count(),
            "complete operands go dense under auto:\n{}",
            auto.render(&|v| format!("x{}", v.0))
        );
        assert_eq!(auto.to_logical(), plan);

        // Sparse data (density 1/16): auto declines, forced mode selects.
        let sparse = vec![
            mk("r1", Schema::new(vec![a, b]).unwrap(), 4),
            mk("r2", Schema::new(vec![b, c]).unwrap(), 4),
        ];
        let sctx = OptContext::new(&cat, sparse, QuerySpec::group_by([a]), CostModel::Io);
        let splan = optimize(&sctx, Algorithm::CsPlusNonlinear).plan;
        let sauto = choose_physical(&sctx, &splan, cfg.with_dense(DenseMode::Auto));
        assert_eq!(sauto.dense_operator_count(), 0, "sparse operands stay hash");
        let son = choose_physical(&sctx, &splan, cfg.with_dense(DenseMode::On));
        assert!(son.dense_operator_count() > 0, "forced mode ignores density");
    }

    #[test]
    fn dense_join_into_dense_agg_fuses() {
        // Complete relations over small domains: both operators go dense
        // under auto, and the join feeds the marginalization directly —
        // the canonical VE elimination step the fused operator targets.
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 8).unwrap();
        let b = cat.add_var("b", 8).unwrap();
        let c = cat.add_var("c", 8).unwrap();
        let mk = |name: &str, schema: Schema, card: u64| BaseRel {
            name: name.into(),
            schema,
            cardinality: card,
            fd_lhs: None,
        };
        let rels = vec![
            mk("r1", Schema::new(vec![a, b]).unwrap(), 64),
            mk("r2", Schema::new(vec![b, c]).unwrap(), 64),
        ];
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
        let cfg = PhysicalConfig::default()
            .with_threads(1)
            .with_dense(DenseMode::Auto)
            .with_repr(ReprMode::Off);
        let fused = choose_physical(&ctx, &plan, cfg);
        fn count_fused(p: &PhysicalPlan) -> usize {
            match p {
                PhysicalPlan::Scan { .. } => 0,
                PhysicalPlan::Select { input, .. } | PhysicalPlan::GroupBy { input, .. } => {
                    count_fused(input)
                }
                PhysicalPlan::Join { left, right, .. } => {
                    count_fused(left) + count_fused(right)
                }
                PhysicalPlan::JoinAgg { left, right, .. } => {
                    1 + count_fused(left) + count_fused(right)
                }
            }
        }
        assert!(
            count_fused(&fused) > 0,
            "dense join into dense agg fuses:\n{}",
            fused.render(&|v| format!("x{}", v.0))
        );
        // Fusion is an annotation change only: the logical plan and the
        // dense operator accounting (one join + one group-by per fused
        // node) are unchanged.
        assert_eq!(fused.to_logical(), plan);
        let unfused = choose_physical(&ctx, &plan, cfg.with_fuse(false));
        assert_eq!(count_fused(&unfused), 0, "with_fuse(false) keeps the pair");
        assert_eq!(
            fused.dense_operator_count(),
            unfused.dense_operator_count()
        );
    }

    #[test]
    fn infeasible_grids_are_never_dense() {
        // Domains whose cross product exceeds MAX_DENSE_CELLS.
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 1 << 13).unwrap();
        let b = cat.add_var("b", 1 << 13).unwrap();
        let rels = vec![BaseRel {
            name: "r1".into(),
            schema: Schema::new(vec![a, b]).unwrap(),
            cardinality: 1 << 26,
            fd_lhs: None,
        }];
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
        let on = choose_physical(
            &ctx,
            &plan,
            PhysicalConfig::default()
                .with_threads(1)
                .with_dense(DenseMode::On)
                .with_repr(ReprMode::Off),
        );
        assert_eq!(on.dense_operator_count(), 0, "grid never materializes");
    }

    #[test]
    fn sparse_selection_covers_the_middle_density_band() {
        // Base densities ~0.19 and an estimated join output density ~0.035:
        // every operand is too sparse for dense auto (0.5) but dense
        // enough for sparse auto (0.01).
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 8).unwrap();
        let b = cat.add_var("b", 8).unwrap();
        let c = cat.add_var("c", 8).unwrap();
        let mk = |name: &str, schema: Schema, card: u64| BaseRel {
            name: name.into(),
            schema,
            cardinality: card,
            fd_lhs: None,
        };
        let rels = vec![
            mk("r1", Schema::new(vec![a, b]).unwrap(), 12),
            mk("r2", Schema::new(vec![b, c]).unwrap(), 12),
        ];
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
        let cfg = PhysicalConfig::default().with_threads(1);
        let off = choose_physical(&ctx, &plan, cfg.with_repr(ReprMode::Off));
        assert_eq!(off.sparse_operator_count(), 0);
        let auto = choose_physical(&ctx, &plan, cfg.with_repr(ReprMode::Auto));
        assert_eq!(
            auto.sparse_operator_count(),
            plan.join_count() + plan.group_by_count(),
            "mid-density operands go sparse under auto:\n{}",
            auto.render(&|v| format!("x{}", v.0))
        );
        assert_eq!(auto.dense_operator_count(), 0, "dense auto declines at 9%");
        assert_eq!(auto.to_logical(), plan);

        // Density below the 1% floor: auto declines, forced mode selects.
        let mut cat2 = Catalog::new();
        let a2 = cat2.add_var("a", 100).unwrap();
        let b2 = cat2.add_var("b", 100).unwrap();
        let c2 = cat2.add_var("c", 100).unwrap();
        let sparse = vec![
            mk("r1", Schema::new(vec![a2, b2]).unwrap(), 50),
            mk("r2", Schema::new(vec![b2, c2]).unwrap(), 50),
        ];
        let sctx = OptContext::new(&cat2, sparse, QuerySpec::group_by([a2]), CostModel::Io);
        let splan = optimize(&sctx, Algorithm::CsPlusNonlinear).plan;
        let sauto = choose_physical(&sctx, &splan, cfg.with_repr(ReprMode::Auto));
        assert_eq!(sauto.sparse_operator_count(), 0, "0.5% operands stay hash");
        let sforced = choose_physical(&sctx, &splan, cfg.with_repr(ReprMode::Sparse));
        assert!(
            sforced.sparse_operator_count() > 0,
            "forced mode ignores density"
        );
    }

    #[test]
    fn dense_wins_over_sparse_on_complete_grids() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 8).unwrap();
        let b = cat.add_var("b", 8).unwrap();
        let rels = vec![BaseRel {
            name: "r1".into(),
            schema: Schema::new(vec![a, b]).unwrap(),
            cardinality: 64,
            fd_lhs: None,
        }];
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
        let phys = choose_physical(
            &ctx,
            &plan,
            PhysicalConfig::default()
                .with_threads(1)
                .with_dense(DenseMode::Auto)
                .with_repr(ReprMode::Auto),
        );
        assert!(phys.dense_operator_count() > 0, "complete grids go dense");
        assert_eq!(phys.sparse_operator_count(), 0, "dense outranks sparse");
    }

    #[test]
    fn wide_grids_go_sparse_where_dense_cannot() {
        // Grid of 2^26 cells: over the dense cap, within the sparse cap.
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 1 << 13).unwrap();
        let b = cat.add_var("b", 1 << 13).unwrap();
        let rels = vec![BaseRel {
            name: "r1".into(),
            schema: Schema::new(vec![a, b]).unwrap(),
            cardinality: 1 << 22,
            fd_lhs: None,
        }];
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
        let phys = choose_physical(
            &ctx,
            &plan,
            PhysicalConfig::default()
                .with_threads(1)
                .with_dense(DenseMode::On)
                .with_repr(ReprMode::Auto),
        );
        assert_eq!(phys.dense_operator_count(), 0, "grid never fits densely");
        assert!(
            phys.sparse_operator_count() > 0,
            "coordinates stay feasible:\n{}",
            phys.render(&|v| format!("x{}", v.0))
        );
    }

    #[test]
    fn parallel_operators_require_threads_and_scale() {
        let mut cat = Catalog::new();
        let (rels, a, ..) = ctx_fixture(&mut cat);
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
        let cfg = PhysicalConfig {
            memory_rows: 1e9,
            parallel_min_rows: 1_000.0,
            ..PhysicalConfig::default()
        }
        .with_dense(DenseMode::Off)
        .with_repr(ReprMode::Off);
        let seq = choose_physical(&ctx, &plan, cfg.with_threads(1));
        assert_eq!(seq.parallel_operator_count(), 0, "one thread -> no parallel ops");
        let par = choose_physical(&ctx, &plan, cfg.with_threads(4));
        assert!(
            par.parallel_operator_count() > 0,
            "large memory-resident operands go parallel:\n{}",
            par.render(&|v| format!("x{}", v.0))
        );
        // Partition counts are worker-aligned and bounded.
        fn check(p: &PhysicalPlan) {
            match p {
                PhysicalPlan::Scan { .. } => {}
                PhysicalPlan::Select { input, .. } => check(input),
                PhysicalPlan::Join { left, right, algo } => {
                    if let JoinAlgo::Parallel { partitions } = algo {
                        assert!(*partitions >= 4 && *partitions % 4 == 0);
                    }
                    check(left);
                    check(right);
                }
                PhysicalPlan::GroupBy { input, algo, .. } => {
                    if let AggAlgo::ParallelAgg { partitions } = algo {
                        assert!(*partitions >= 4 && *partitions % 4 == 0);
                    }
                    check(input);
                }
                PhysicalPlan::JoinAgg { left, right, .. } => {
                    check(left);
                    check(right);
                }
            }
        }
        check(&par);
        assert_eq!(par.to_logical(), plan);
    }
}
