//! Nonlinear (bushy) CS+ dynamic programming — the Section 5.1 extension.
//!
//! The search strategy is extended to all binary partitions of every
//! relation subset. Where the paper compares four candidates per join (no
//! group-by / group-by left / group-by right / both), this implementation
//! gets the same effect compositionally: each subset's memo entry is a
//! **Pareto set** containing both the raw join results and their
//! group-by-reduced variants, so a join of two subsets implicitly
//! enumerates all four (and more) combinations while staying monotone —
//! see the module docs of [`crate::cs`].

use mpf_storage::Schema;

use crate::cs::best_with_root_group_by;
use crate::subplan::{pareto_insert, reduced_variant};
use crate::{OptContext, SubPlan};

/// Find the best bushy plan with correctness-condition group-by placement.
pub fn plan_nonlinear(ctx: &OptContext<'_>) -> SubPlan {
    let n = ctx.rels.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut memo: Vec<Vec<SubPlan>> = vec![Vec::new(); 1 << n];

    for j in 0..n {
        let mask = 1usize << j;
        let leaf = SubPlan::leaf(ctx, j);
        let outside: Vec<&Schema> = (0..n)
            .filter(|&i| i != j)
            .map(|i| &ctx.rels[i].schema)
            .collect();
        if let Some(red) = reduced_variant(ctx, &leaf, outside.iter().copied()) {
            pareto_insert(&mut memo[mask], red);
        }
        pareto_insert(&mut memo[mask], leaf);
    }

    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let lowbit = mask & mask.wrapping_neg();
        let outside: Vec<&Schema> = (0..n)
            .filter(|&i| mask & (1u32 << i) == 0)
            .map(|i| &ctx.rels[i].schema)
            .collect();
        let mut entries: Vec<SubPlan> = Vec::new();

        // Enumerate binary partitions (s1, s2) of `mask`; requiring the
        // lowest set bit in s1 halves the work (join is symmetric and both
        // operands draw from full Pareto sets).
        let mut s1 = (mask - 1) & mask;
        while s1 != 0 {
            if s1 & lowbit != 0 {
                let s2 = mask & !s1;
                for left in &memo[s1 as usize] {
                    for right in &memo[s2 as usize] {
                        let cand = SubPlan::join(ctx, left.clone(), right.clone());
                        if let Some(red) =
                            reduced_variant(ctx, &cand, outside.iter().copied())
                        {
                            pareto_insert(&mut entries, red);
                        }
                        pareto_insert(&mut entries, cand);
                    }
                }
            }
            s1 = (s1 - 1) & mask;
        }
        memo[mask as usize] = entries;
    }

    best_with_root_group_by(ctx, &memo[full as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::plan_linear;
    use crate::{BaseRel, CostModel, QuerySpec};
    use mpf_storage::{Catalog, VarId};

    fn mk(name: &str, vars: Vec<VarId>, card: u64) -> BaseRel {
        BaseRel {
            name: name.into(),
            schema: Schema::new(vars).unwrap(),
            cardinality: card,
            fd_lhs: None,
        }
    }

    /// The Section 5.1 scenario: query variable X of small domain appears in
    /// two relations; a nonlinear plan can reduce the second relation to
    /// |dom(X)| *before* joining, which no linear plan can do.
    #[test]
    fn nonlinear_beats_linear_when_linearity_test_fails() {
        let mut cat = Catalog::new();
        let x = cat.add_var("x", 10).unwrap(); // query var, small domain
        let u = cat.add_var("u", 2000).unwrap();
        let w = cat.add_var("w", 2000).unwrap();
        // x occurs in s1 (big) and s2 (smaller but >> |dom(x)|).
        let rels = vec![
            mk("s1", vec![x, u], 200_000),
            mk("s2", vec![x, w], 50_000),
            mk("s3", vec![u], 2000),
        ];
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([x]), CostModel::Io);
        let linear = plan_linear(&ctx, true);
        let bushy = plan_nonlinear(&ctx);
        assert!(bushy.cost <= linear.cost);
        // The bushy plan groups s2 down to |dom(x)| = 10 rows pre-join.
        assert!(bushy.plan.group_by_count() >= 2);
    }

    #[test]
    fn nonlinear_never_worse_than_linear_cs_plus() {
        // The bushy search space contains every linear plan.
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 50).unwrap();
        let c = cat.add_var("c", 50).unwrap();
        let d = cat.add_var("d", 10).unwrap();
        let rels = vec![
            mk("r1", vec![a, b], 500),
            mk("r2", vec![b, c], 2500),
            mk("r3", vec![c, d], 500),
        ];
        for qv in [a, b, c, d] {
            let ctx = OptContext::new(
                &cat,
                rels.clone(),
                QuerySpec::group_by([qv]),
                CostModel::Io,
            );
            let linear = plan_linear(&ctx, true);
            let bushy = plan_nonlinear(&ctx);
            assert!(
                bushy.cost <= linear.cost + 1e-9,
                "bushy {} > linear {} for query var {qv}",
                bushy.cost,
                linear.cost
            );
        }
    }

    #[test]
    fn two_relation_case_matches_linear() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 10).unwrap();
        let rels = vec![mk("r1", vec![a, b], 100), mk("r2", vec![b], 10)];
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let linear = plan_linear(&ctx, true);
        let bushy = plan_nonlinear(&ctx);
        assert!((bushy.cost - linear.cost).abs() < 1e-9);
    }
}
