//! Variable Elimination as a relational plan generator (Algorithm 2), and
//! its extended-space variant (Section 5.4).
//!
//! To eliminate a variable `v`, all live factors containing `v` are
//! product-joined and the result is grouped onto the remaining variables.
//! Plain VE forces that group-by; extended VE (**VE+**) instead *delays*
//! elimination — the per-variable join plan is built with the CS+
//! greedy-conservative four-way comparison, which inserts group-bys exactly
//! where they pay off (and the final root group-by guarantees semantics).
//! VE+ additionally skips variables that Proposition 1 proves removable by
//! projection.

use mpf_storage::{Schema, VarId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::subplan::best_join_of_four;
use crate::{heuristics, prop1, Heuristic, OptContext, SubPlan};

/// Run Variable Elimination under a heuristic order. `extended = true`
/// selects the VE+ space extension.
pub fn plan_ve(ctx: &OptContext<'_>, heuristic: Heuristic, extended: bool) -> SubPlan {
    let mut to_eliminate: Vec<VarId> = ctx
        .all_vars()
        .into_iter()
        .filter(|v| !ctx.query.group_vars.contains(v))
        .collect();
    if extended {
        // Proposition 1: variables outside every declared FD left-hand side
        // need no aggregation — the final root group-by projects them away.
        let removable = prop1::removable_vars(ctx);
        to_eliminate.retain(|v| !removable.contains(v));
    }
    if let Heuristic::Random(seed) = heuristic {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        to_eliminate.shuffle(&mut rng);
    }
    plan_ve_ordered(ctx, &to_eliminate, heuristic, extended)
}

/// Run Variable Elimination with a fixed elimination order (used for the
/// random-heuristic experiment and for plan-space tests). For deterministic
/// heuristics the order is *re-selected dynamically* from `order`'s members,
/// matching line 5 of Algorithm 2; pass [`Heuristic::Random`] to consume
/// `order` verbatim.
///
/// In extended mode the algorithm also costs the *plain* VE plan for the
/// order it actually realized and returns the cheaper of the two — this is
/// the constructive content of Theorem 3 (`GDLPlan(VE) ⊂ GDLPlan(VE+)` for
/// a fixed order): the extended space contains the forced-group-by plan, so
/// VE+ is never worse than VE on the same order.
pub fn plan_ve_ordered(
    ctx: &OptContext<'_>,
    order: &[VarId],
    heuristic: Heuristic,
    extended: bool,
) -> SubPlan {
    let (plan, realized) = run_ve(ctx, order, heuristic, extended);
    if !extended {
        return plan;
    }
    // Theorem 3: the plain plan for the realized order is in the extended
    // space; keep whichever the cost model prefers.
    let (plain, _) = run_ve(ctx, &realized, Heuristic::Random(0), false);
    if plain.cost < plan.cost {
        plain
    } else {
        plan
    }
}

/// The VE driver; returns the plan and the realized elimination order.
fn run_ve(
    ctx: &OptContext<'_>,
    order: &[VarId],
    heuristic: Heuristic,
    extended: bool,
) -> (SubPlan, Vec<VarId>) {
    let mut factors: Vec<SubPlan> = (0..ctx.rels.len()).map(|i| SubPlan::leaf(ctx, i)).collect();
    let mut remaining: Vec<VarId> = order.to_vec();
    let mut eliminated: Vec<VarId> = Vec::new();

    while !remaining.is_empty() {
        let v = match heuristic {
            Heuristic::Random(_) => remaining[0],
            _ => heuristics::select_next(ctx, heuristic, &factors, &remaining, &eliminated),
        };
        remaining.retain(|&u| u != v);
        eliminated.push(v);

        // rels(v, S): live factors whose schema contains v.
        let mut group: Vec<SubPlan> = Vec::new();
        let mut rest: Vec<SubPlan> = Vec::new();
        for f in factors.drain(..) {
            if f.schema.contains(v) {
                group.push(f);
            } else {
                rest.push(f);
            }
        }
        if group.is_empty() {
            // v already disappeared via an earlier group-by.
            factors = rest;
            continue;
        }
        let p = eliminate(ctx, group, v, &rest, extended);
        rest.push(p);
        factors = rest;
    }

    (finalize(ctx, factors, extended), eliminated)
}

/// Join the factors of `rels(v)` and (for plain VE) group `v` away.
fn eliminate(
    ctx: &OptContext<'_>,
    mut group: Vec<SubPlan>,
    v: VarId,
    others: &[SubPlan],
    extended: bool,
) -> SubPlan {
    // Fixed smallest-first linear order inside the elimination join, per the
    // paper's VE implementation (`joinplan` on a small relation set).
    group.sort_by(|a, b| a.rows.total_cmp(&b.rows));
    let mut iter = group.into_iter();
    let mut acc = iter.next().expect("rels(v) nonempty");
    let pending: Vec<SubPlan> = iter.collect();

    for (i, next) in pending.iter().enumerate() {
        if extended {
            // Outside view for the accumulated side: every other live factor
            // plus the not-yet-joined members of rels(v).
            let mut outside_left: Vec<&Schema> =
                others.iter().map(|f| &f.schema).collect();
            for later in &pending[i..] {
                outside_left.push(&later.schema);
            }
            // Outside view for the incoming factor: others, the remaining
            // pending factors, and the accumulated side.
            let mut outside_right: Vec<&Schema> =
                others.iter().map(|f| &f.schema).collect();
            for (j, later) in pending.iter().enumerate() {
                if j > i {
                    outside_right.push(&later.schema);
                }
            }
            outside_right.push(&acc.schema);
            acc = best_join_of_four(ctx, &acc, next, &outside_left, &outside_right);
        } else {
            acc = SubPlan::join(ctx, acc, next.clone());
        }
    }

    if extended {
        // Delayed elimination: no forced group-by (Section 5.4, change 2).
        acc
    } else {
        // Line 6 of Algorithm 2: group onto everything but v.
        let keep: Vec<VarId> = acc.schema.iter().filter(|&u| u != v).collect();
        SubPlan::group(ctx, acc, &keep)
    }
}

/// Join whatever factors remain (all contain only query variables in plain
/// VE) and apply the root group-by on the query variables.
fn finalize(ctx: &OptContext<'_>, mut factors: Vec<SubPlan>, extended: bool) -> SubPlan {
    factors.sort_by(|a, b| a.rows.total_cmp(&b.rows));
    let mut iter = factors.into_iter();
    let mut acc = iter.next().expect("at least one factor");
    let pending: Vec<SubPlan> = iter.collect();
    for (i, next) in pending.iter().enumerate() {
        if extended {
            let outside_left: Vec<&Schema> =
                pending[i..].iter().map(|f| &f.schema).collect();
            let mut outside_right: Vec<&Schema> =
                pending[i + 1..].iter().map(|f| &f.schema).collect();
            outside_right.push(&acc.schema);
            acc = best_join_of_four(ctx, &acc, next, &outside_left, &outside_right);
        } else {
            acc = SubPlan::join(ctx, acc, next.clone());
        }
    }
    SubPlan::group(ctx, acc, &ctx.query.group_vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseRel, CostModel, QuerySpec};
    use mpf_storage::Catalog;

    fn mk(name: &str, vars: Vec<VarId>, card: u64) -> BaseRel {
        BaseRel {
            name: name.into(),
            schema: Schema::new(vars).unwrap(),
            cardinality: card,
            fd_lhs: None,
        }
    }

    fn chain_ctx(cat: &mut Catalog) -> (Vec<BaseRel>, Vec<VarId>) {
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 50).unwrap();
        let c = cat.add_var("c", 50).unwrap();
        let d = cat.add_var("d", 10).unwrap();
        (
            vec![
                mk("r1", vec![a, b], 500),
                mk("r2", vec![b, c], 2500),
                mk("r3", vec![c, d], 500),
            ],
            vec![a, b, c, d],
        )
    }

    #[test]
    fn ve_produces_group_by_per_variable() {
        let mut cat = Catalog::new();
        let (rels, vars) = chain_ctx(&mut cat);
        let ctx = OptContext::new(
            &cat,
            rels,
            QuerySpec::group_by([vars[0]]),
            CostModel::Io,
        );
        let p = plan_ve(&ctx, Heuristic::Degree, false);
        // Three eliminations (b, c, d) plus the root group-by.
        assert_eq!(p.plan.group_by_count(), 4);
        assert_eq!(p.schema.vars(), &[vars[0]]);
        let mut scans = p.plan.base_relations();
        scans.sort_unstable();
        assert_eq!(scans, vec!["r1", "r2", "r3"]);
    }

    #[test]
    fn ve_plus_no_worse_than_ve_same_order() {
        let mut cat = Catalog::new();
        let (rels, vars) = chain_ctx(&mut cat);
        let ctx = OptContext::new(
            &cat,
            rels,
            QuerySpec::group_by([vars[0]]),
            CostModel::Io,
        );
        // Fixed order via the Random path (consumed verbatim).
        for order in [
            vec![vars[3], vars[2], vars[1]],
            vec![vars[1], vars[2], vars[3]],
            vec![vars[2], vars[1], vars[3]],
        ] {
            let ve = plan_ve_ordered(&ctx, &order, Heuristic::Random(0), false);
            let vep = plan_ve_ordered(&ctx, &order, Heuristic::Random(0), true);
            assert!(
                vep.cost <= ve.cost + 1e-9,
                "VE+ cost {} > VE cost {} for order {order:?}",
                vep.cost,
                ve.cost
            );
        }
    }

    #[test]
    fn random_orders_are_reproducible() {
        let mut cat = Catalog::new();
        let (rels, vars) = chain_ctx(&mut cat);
        let ctx = OptContext::new(
            &cat,
            rels,
            QuerySpec::group_by([vars[0]]),
            CostModel::Io,
        );
        let p1 = plan_ve(&ctx, Heuristic::Random(42), false);
        let p2 = plan_ve(&ctx, Heuristic::Random(42), false);
        assert_eq!(p1.plan, p2.plan);
        assert_eq!(p1.cost, p2.cost);
    }

    #[test]
    fn constrained_domain_query() {
        // `select a, SUM(f) from v where d = 3 group by a` — d is bound but
        // still eliminated; the leaf for r3 carries the selection.
        let mut cat = Catalog::new();
        let (rels, vars) = chain_ctx(&mut cat);
        let ctx = OptContext::new(
            &cat,
            rels,
            QuerySpec::group_by([vars[0]]).filter(vars[3], 3),
            CostModel::Io,
        );
        let p = plan_ve(&ctx, Heuristic::Degree, false);
        assert_eq!(p.schema.vars(), &[vars[0]]);
        let rendered = p.plan.render(&|v| format!("{v}"));
        assert!(rendered.contains("Select"));
    }

    #[test]
    fn all_vars_are_query_vars() {
        // Nothing to eliminate: plan is just joins + root group-by.
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 4).unwrap();
        let b = cat.add_var("b", 4).unwrap();
        let ctx = OptContext::new(
            &cat,
            [mk("r1", vec![a], 4), mk("r2", vec![a, b], 16)],
            QuerySpec::group_by([a, b]),
            CostModel::Io,
        );
        let p = plan_ve(&ctx, Heuristic::Degree, false);
        assert_eq!(p.plan.group_by_count(), 1);
        assert_eq!(p.plan.join_count(), 1);
    }
}
