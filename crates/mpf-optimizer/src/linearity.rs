//! The plan-linearity test of Section 5.1 (Equation 1).
//!
//! For an MPF query on variable `X`, let `σ_X = |dom(X)|` and `σ̂_X` be the
//! cardinality of the smallest base relation containing `X`. Under the
//! paper's simple cost model (join `|R||S|`, aggregate `|R| log |R|`), a
//! linear plan is *admissible* if
//!
//! ```text
//! σ_X² + σ̂_X · log σ̂_X  ≥  σ_X · σ̂_X          (Eq. 1)
//! ```
//!
//! Intuition: a nonlinear plan may reduce the smallest relation containing
//! `X` down to `σ_X` rows *before* joining it (cost `σ̂_X log σ̂_X` for the
//! aggregate plus `σ_X²` for the join), whereas a linear plan must join the
//! un-reduced relation (cost `σ_X · σ̂_X`). When the inequality fails, only
//! a nonlinear plan can exploit the reduction, and the nonlinear CS+ search
//! is warranted.

use mpf_storage::VarId;

use crate::OptContext;

/// Outcome of the linearity test for a query variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearityTest {
    /// `σ_X`: the query variable's domain size.
    pub sigma: f64,
    /// `σ̂_X`: cardinality of the smallest base relation containing `X`.
    pub sigma_hat: f64,
    /// Whether Eq. 1 holds, i.e. whether a linear plan can evaluate the
    /// query efficiently (no need for the bushy search).
    pub linear_admissible: bool,
}

/// Run the test for query variable `x`.
///
/// # Panics
/// Panics if no base relation contains `x`.
pub fn linearity_test(ctx: &OptContext<'_>, x: VarId) -> LinearityTest {
    let sigma = ctx.catalog.domain_size(x) as f64;
    let sigma_hat = ctx
        .rels
        .iter()
        .filter(|r| r.schema.contains(x))
        .map(|r| r.cardinality as f64)
        .fold(f64::INFINITY, f64::min);
    assert!(
        sigma_hat.is_finite(),
        "variable {x} appears in no base relation"
    );
    let lhs = sigma * sigma + sigma_hat * sigma_hat.max(2.0).log2();
    let rhs = sigma * sigma_hat;
    LinearityTest {
        sigma,
        sigma_hat,
        linear_admissible: lhs >= rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseRel, CostModel, QuerySpec};
    use mpf_storage::{Catalog, Schema};

    /// The paper's own numbers (Section 7.1): for Q1, σ_cid = 1000 and
    /// σ̂_cid = 5000 fail Eq. 1 (nonlinear plans needed); for Q2,
    /// σ_tid = σ̂_tid = 500 satisfy it (linear plan optimal).
    #[test]
    fn matches_paper_examples() {
        let mut cat = Catalog::new();
        let cid = cat.add_var("cid", 1000).unwrap();
        let tid = cat.add_var("tid", 500).unwrap();
        let wid = cat.add_var("wid", 5000).unwrap();
        let rels = vec![
            BaseRel {
                name: "warehouses".into(),
                schema: Schema::new(vec![wid, cid]).unwrap(),
                cardinality: 5000,
                fd_lhs: None,
            },
            BaseRel {
                name: "ctdeals".into(),
                schema: Schema::new(vec![cid, tid]).unwrap(),
                cardinality: 500_000,
                fd_lhs: None,
            },
            BaseRel {
                name: "transporters".into(),
                schema: Schema::new(vec![tid]).unwrap(),
                cardinality: 500,
                fd_lhs: None,
            },
        ];
        let ctx = OptContext::new(&cat, rels, QuerySpec::default(), CostModel::Simple);

        let q1 = linearity_test(&ctx, cid);
        assert_eq!(q1.sigma, 1000.0);
        assert_eq!(q1.sigma_hat, 5000.0);
        // 1000² + 5000·log2(5000) ≈ 1e6 + 61439 < 5e6 → inequality fails.
        assert!(!q1.linear_admissible);

        let q2 = linearity_test(&ctx, tid);
        assert_eq!(q2.sigma, 500.0);
        assert_eq!(q2.sigma_hat, 500.0);
        // 500² + 500·log2(500) ≥ 500·500 trivially.
        assert!(q2.linear_admissible);
    }

    #[test]
    #[should_panic(expected = "appears in no base relation")]
    fn unknown_variable_panics() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let ghost = cat.add_var("ghost", 10).unwrap();
        let ctx = OptContext::new(
            &cat,
            [BaseRel {
                name: "r".into(),
                schema: Schema::new(vec![a]).unwrap(),
                cardinality: 10,
                fd_lhs: None,
            }],
            QuerySpec::default(),
            CostModel::Simple,
        );
        linearity_test(&ctx, ghost);
    }
}
