/// Plan cost models.
///
/// The paper uses two notions of cost: a simple analytical model for the
/// plan-linearity derivation (joining `R` and `S` costs `|R||S|`, computing
/// an aggregate on `R` costs `|R| log |R|` — Section 5.1), and the modified
/// PostgreSQL optimizer's IO-based estimates for the experiments. We provide
/// both; the `Io` model reflects our hash-join/hash-aggregate executor
/// (linear in operand and output sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// The paper's analytical model: `join = |L|·|R|`, `agg = |R| log |R|`.
    Simple,
    /// Streaming hash operators: `join = |L| + |R| + |out|`,
    /// `agg = |in| + |out|`, `scan = |R|`.
    Io,
}

impl CostModel {
    /// Cost of scanning a base relation of `rows` rows.
    pub fn scan(self, rows: f64) -> f64 {
        match self {
            // The simple model charges nothing for scans (it counts
            // arithmetic operations); the IO model charges one unit per row.
            CostModel::Simple => 0.0,
            CostModel::Io => rows,
        }
    }

    /// Cost of a product join with the given operand/output cardinalities.
    pub fn join(self, l_rows: f64, r_rows: f64, out_rows: f64) -> f64 {
        match self {
            CostModel::Simple => l_rows * r_rows,
            CostModel::Io => l_rows + r_rows + out_rows,
        }
    }

    /// Cost of a group-by with the given input/output cardinalities.
    pub fn group_by(self, in_rows: f64, out_rows: f64) -> f64 {
        match self {
            CostModel::Simple => in_rows * in_rows.max(2.0).log2(),
            CostModel::Io => in_rows + out_rows,
        }
    }

    /// Cost of a selection scan.
    pub fn select(self, in_rows: f64, out_rows: f64) -> f64 {
        match self {
            CostModel::Simple => 0.0,
            CostModel::Io => in_rows + out_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_model_matches_paper() {
        let m = CostModel::Simple;
        assert_eq!(m.join(100.0, 10.0, 1000.0), 1000.0);
        assert_eq!(m.group_by(8.0, 4.0), 8.0 * 3.0);
        assert_eq!(m.scan(500.0), 0.0);
    }

    #[test]
    fn io_model_is_linear() {
        let m = CostModel::Io;
        assert_eq!(m.join(100.0, 10.0, 50.0), 160.0);
        assert_eq!(m.group_by(100.0, 10.0), 110.0);
        assert_eq!(m.scan(500.0), 500.0);
        assert_eq!(m.select(100.0, 5.0), 105.0);
    }

    #[test]
    fn group_by_handles_tiny_inputs() {
        // log of 0/1-row inputs must not produce negative or NaN costs.
        let m = CostModel::Simple;
        assert!(m.group_by(0.0, 0.0) >= 0.0);
        assert!(m.group_by(1.0, 1.0) >= 0.0);
    }
}
