use mpf_storage::{Catalog, FunctionalRelation, Schema, Value, VarId};

use crate::CostModel;

/// Optimizer-visible description of one base functional relation.
///
/// `fd_lhs` records a declared (narrower-than-maximal) functional dependency
/// `X -> f` with `X ⊂ Var(s)` — e.g. a primary key. `None` means only the
/// maximal FD of Definition 1 is known. Narrow FDs feed the Proposition 1
/// elimination pruning.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseRel {
    /// Relation name (must resolve in the executor's provider).
    pub name: String,
    /// The relation's variables.
    pub schema: Schema,
    /// Row count from the catalog statistics.
    pub cardinality: u64,
    /// Optional declared FD left-hand side (`X_i` in Proposition 1).
    pub fd_lhs: Option<Vec<VarId>>,
}

impl BaseRel {
    /// Describe a stored relation (maximal FD assumed).
    pub fn of(rel: &FunctionalRelation) -> Self {
        BaseRel {
            name: rel.name().to_string(),
            schema: rel.schema().clone(),
            cardinality: rel.len() as u64,
            fd_lhs: None,
        }
    }
}

/// The query being optimized: group variables (the MPF query variables `X`)
/// plus conjunctive equality predicates (the restricted-answer and
/// constrained-domain forms of Section 3.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuerySpec {
    /// The MPF query variables (the `group by` list).
    pub group_vars: Vec<VarId>,
    /// Equality predicates (`where Y = c`).
    pub predicates: Vec<(VarId, Value)>,
}

impl QuerySpec {
    /// A basic MPF query grouping on `vars`.
    pub fn group_by(vars: impl IntoIterator<Item = VarId>) -> Self {
        QuerySpec {
            group_vars: vars.into_iter().collect(),
            predicates: Vec::new(),
        }
    }

    /// Add an equality predicate.
    pub fn filter(mut self, var: VarId, value: Value) -> Self {
        self.predicates.push((var, value));
        self
    }
}

/// Everything an optimization algorithm needs: catalog statistics, the view's
/// base relations, the query, and the cost model.
#[derive(Debug, Clone)]
pub struct OptContext<'a> {
    /// Catalog holding per-variable domain sizes.
    pub catalog: &'a Catalog,
    /// The MPF view's base relations.
    pub rels: Vec<BaseRel>,
    /// The query being optimized.
    pub query: QuerySpec,
    /// Cost model used to rank plans.
    pub cost_model: CostModel,
}

impl<'a> OptContext<'a> {
    /// Build a context from stored relations.
    pub fn new(
        catalog: &'a Catalog,
        rels: impl IntoIterator<Item = BaseRel>,
        query: QuerySpec,
        cost_model: CostModel,
    ) -> Self {
        OptContext {
            catalog,
            rels: rels.into_iter().collect(),
            query,
            cost_model,
        }
    }

    /// The effective domain size of a variable under the query's
    /// predicates: an equality-bound variable has effective domain 1.
    pub fn effective_domain(&self, v: VarId) -> f64 {
        if self.query.predicates.iter().any(|&(pv, _)| pv == v) {
            1.0
        } else {
            self.catalog.domain_size(v) as f64
        }
    }

    /// Product of effective domain sizes over a variable set.
    pub fn domain_product(&self, vars: impl IntoIterator<Item = VarId>) -> f64 {
        vars.into_iter()
            .map(|v| self.effective_domain(v))
            .product()
    }

    /// All variables appearing in the view (union of base schemas).
    pub fn all_vars(&self) -> Vec<VarId> {
        let mut out: Vec<VarId> = Vec::new();
        for r in &self.rels {
            for v in r.schema.iter() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Indices of base relations whose schema contains `v` (the `rels(v, S)`
    /// of Algorithm 2, over base relations).
    pub fn rels_with(&self, v: VarId) -> Vec<usize> {
        (0..self.rels.len())
            .filter(|&i| self.rels[i].schema.contains(v))
            .collect()
    }

    /// Predicates of the query applicable to (i.e. mentioning variables of)
    /// a schema.
    pub fn applicable_predicates(&self, schema: &Schema) -> Vec<(VarId, Value)> {
        self.query
            .predicates
            .iter()
            .copied()
            .filter(|&(v, _)| schema.contains(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_domain_respects_predicates() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 100).unwrap();
        let b = cat.add_var("b", 10).unwrap();
        let ctx = OptContext::new(
            &cat,
            [BaseRel {
                name: "r".into(),
                schema: Schema::new(vec![a, b]).unwrap(),
                cardinality: 500,
                fd_lhs: None,
            }],
            QuerySpec::group_by([b]).filter(a, 3),
            CostModel::Simple,
        );
        assert_eq!(ctx.effective_domain(a), 1.0);
        assert_eq!(ctx.effective_domain(b), 10.0);
        assert_eq!(ctx.domain_product([a, b]), 10.0);
    }

    #[test]
    fn rels_with_finds_containing_relations() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 2).unwrap();
        let b = cat.add_var("b", 2).unwrap();
        let c = cat.add_var("c", 2).unwrap();
        let mk = |name: &str, vars: Vec<VarId>| BaseRel {
            name: name.into(),
            schema: Schema::new(vars).unwrap(),
            cardinality: 4,
            fd_lhs: None,
        };
        let ctx = OptContext::new(
            &cat,
            [mk("r1", vec![a, b]), mk("r2", vec![b, c]), mk("r3", vec![c])],
            QuerySpec::default(),
            CostModel::Simple,
        );
        assert_eq!(ctx.rels_with(b), vec![0, 1]);
        assert_eq!(ctx.rels_with(c), vec![1, 2]);
        assert_eq!(ctx.all_vars(), vec![a, b, c]);
    }
}
