#![warn(missing_docs)]
//! Cost-based optimizers for MPF queries (Section 5 of the paper).
//!
//! Four algorithm families are implemented, all producing [`Plan`]s over the
//! `mpf-algebra` operators:
//!
//! * **CS** ([`Algorithm::Cs`]) — Chaudhuri & Shim's optimizer as it behaves
//!   in the MPF setting: because it does not recognize that the aggregate
//!   distributes over the *product* join (the aggregate is over a function
//!   of many columns), it cannot push group-bys and degenerates to the best
//!   linear join order with a single root `GroupBy` (the paper's Figure 3).
//! * **CS+** ([`Algorithm::CsPlusLinear`], [`Algorithm::CsPlusNonlinear`]) —
//!   CS extended with product-join/aggregate distributivity. The linear form
//!   is Algorithm 1 of the paper (greedy-conservative group-by insertion on
//!   the accumulated side); the nonlinear form searches bushy join orders and
//!   compares four candidates per join (no group-by / left / right / both,
//!   Section 5.1).
//! * **VE** ([`Algorithm::Ve`]) — Variable Elimination (Algorithm 2) under a
//!   pluggable elimination-order [`Heuristic`] (degree, width, elimination
//!   cost, their normalized products, or random).
//! * **VE+** ([`Algorithm::VePlus`]) — VE with the Section 5.4 space
//!   extension: elimination is *delayed* (no forced group-by after the
//!   per-variable join) and the per-variable join plans use the CS+
//!   greedy-conservative group-by insertion.
//!
//! The crate also provides the plan-linearity test of Section 5.1
//! ([`linearity`]), the Proposition 1 FD-based elimination pruning
//! ([`prop1`]), catalog-based cardinality estimation ([`estimate`]), and two
//! cost models ([`CostModel`]).

pub mod bushy;
mod context;
mod cost;
pub mod cs;
pub mod estimate;
pub mod heuristics;
pub mod linearity;
pub mod physical;
pub mod prop1;
mod subplan;
pub mod ve;

pub use context::{BaseRel, OptContext, QuerySpec};
pub use cost::CostModel;
pub use heuristics::Heuristic;
pub use physical::{choose_physical, PhysicalConfig};
pub use subplan::SubPlan;

use mpf_algebra::Plan;

/// The optimization algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Unmodified Chaudhuri–Shim: best linear join order, single root
    /// group-by (no GDL optimization).
    Cs,
    /// CS+ over linear (left-deep) plans — Algorithm 1.
    CsPlusLinear,
    /// CS+ over nonlinear (bushy) plans — Section 5.1 extension.
    CsPlusNonlinear,
    /// Variable Elimination (Algorithm 2) with the given ordering heuristic.
    Ve(Heuristic),
    /// Extended-space Variable Elimination (Section 5.4) with the given
    /// ordering heuristic.
    VePlus(Heuristic),
}

impl Algorithm {
    /// Short label used by the experiment harnesses (matches the paper's
    /// table rows, e.g. `VE(deg) ext.`).
    pub fn label(&self) -> String {
        match self {
            Algorithm::Cs => "CS".into(),
            Algorithm::CsPlusLinear => "CS+ linear".into(),
            Algorithm::CsPlusNonlinear => "Nonlinear CS+".into(),
            Algorithm::Ve(h) => format!("VE({})", h.label()),
            Algorithm::VePlus(h) => format!("VE({}) ext.", h.label()),
        }
    }
}

/// An optimized plan together with its estimated cost and output
/// cardinality (in the context's cost model units).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizedPlan {
    /// The executable plan.
    pub plan: Plan,
    /// Estimated total cost.
    pub est_cost: f64,
    /// Estimated result cardinality.
    pub est_rows: f64,
}

/// The most base relations [`optimize`] accepts: the bitmask
/// dynamic-programming limit — far beyond the N ≤ 7 the paper evaluates,
/// and beyond where Selinger-style DP is practical at all. Callers that
/// must not panic check this before calling [`optimize`].
pub const MAX_DP_RELATIONS: usize = 30;

/// Optimize the MPF query described by `ctx` with the chosen algorithm.
///
/// # Panics
/// Panics if `ctx` has no base relations, or more than
/// [`MAX_DP_RELATIONS`] base relations.
pub fn optimize(ctx: &OptContext<'_>, algorithm: Algorithm) -> OptimizedPlan {
    assert!(!ctx.rels.is_empty(), "cannot optimize over zero relations");
    assert!(
        ctx.rels.len() <= MAX_DP_RELATIONS,
        "dynamic programming limit is {MAX_DP_RELATIONS} relations"
    );
    let sub = match algorithm {
        Algorithm::Cs => cs::plan_linear(ctx, false),
        Algorithm::CsPlusLinear => cs::plan_linear(ctx, true),
        Algorithm::CsPlusNonlinear => bushy::plan_nonlinear(ctx),
        Algorithm::Ve(h) => ve::plan_ve(ctx, h, false),
        Algorithm::VePlus(h) => ve::plan_ve(ctx, h, true),
    };
    OptimizedPlan {
        plan: sub.plan,
        est_cost: sub.cost,
        est_rows: sub.rows,
    }
}
