//! Catalog-based cardinality estimation.
//!
//! Estimates use the classical uniformity + containment assumptions of
//! System-R style optimizers, over the statistics the paper assumes are in
//! the catalog (per-variable domain sizes, per-relation cardinalities):
//!
//! * **selection** on `v = c` keeps a `1/|dom(v)|` fraction of rows;
//! * **product join** output is `|L|·|R| / ∏_{v ∈ shared} |dom(v)|`;
//! * **group-by** output is `min(|in|, ∏_{v ∈ group} |dom(v)|)`.
//!
//! All domain sizes are *effective* domains
//! ([`OptContext::effective_domain`]): a variable bound by an equality
//! predicate contributes 1.

use mpf_storage::Schema;

use crate::OptContext;

/// Estimated rows of a base relation after applying the query's applicable
/// equality predicates.
pub fn base_rows(ctx: &OptContext<'_>, rel_idx: usize) -> f64 {
    let rel = &ctx.rels[rel_idx];
    let mut rows = rel.cardinality as f64;
    for &(v, _) in &ctx.query.predicates {
        if rel.schema.contains(v) {
            let d = ctx.catalog.domain_size(v) as f64;
            if d > 0.0 {
                rows /= d;
            }
        }
    }
    rows.max(1.0)
}

/// Estimated rows of `l ⨝* r` given operand schemas and cardinalities.
pub fn join_rows(
    ctx: &OptContext<'_>,
    l_schema: &Schema,
    l_rows: f64,
    r_schema: &Schema,
    r_rows: f64,
) -> f64 {
    let shared = l_schema.intersect(r_schema);
    let denom = ctx.domain_product(shared.iter()).max(1.0);
    (l_rows * r_rows / denom).max(1.0)
}

/// Estimated rows of `GroupBy_{group}(in)`.
pub fn group_rows(ctx: &OptContext<'_>, in_rows: f64, group: &Schema) -> f64 {
    let dom = ctx.domain_product(group.iter());
    in_rows.min(dom).max(1.0)
}

/// Estimated output schema and cardinality of an arbitrary logical plan
/// (used by physical operator selection, which must size operators the
/// dynamic program has already placed).
pub fn plan_estimate(ctx: &OptContext<'_>, plan: &mpf_algebra::Plan) -> (Schema, f64) {
    use mpf_algebra::Plan;
    match plan {
        Plan::Scan { relation } => {
            let rel = ctx
                .rels
                .iter()
                .find(|r| &r.name == relation)
                .expect("plan scans a context relation");
            (rel.schema.clone(), rel.cardinality as f64)
        }
        Plan::Select { input, predicates } => {
            let (schema, mut rows) = plan_estimate(ctx, input);
            for &(v, _) in predicates {
                let d = ctx.catalog.domain_size(v) as f64;
                if d > 0.0 {
                    rows /= d;
                }
            }
            (schema, rows.max(1.0))
        }
        Plan::Join { left, right } => {
            let (ls, lr) = plan_estimate(ctx, left);
            let (rs, rr) = plan_estimate(ctx, right);
            let rows = join_rows(ctx, &ls, lr, &rs, rr);
            (ls.union(&rs), rows)
        }
        Plan::GroupBy { input, group_vars } => {
            let (_, in_rows) = plan_estimate(ctx, input);
            let schema: Schema = group_vars.iter().copied().collect();
            let rows = group_rows(ctx, in_rows, &schema);
            (schema, rows)
        }
    }
}

/// Estimated density of `rows` rows on the catalog grid of `schema`:
/// `rows / ∏ |dom(v)|`, capped at 1. Grid sizes use the catalog's *real*
/// domains, not the effective ones — the dense kernels grid over the
/// data's actual value range regardless of query predicates. `None` when
/// the grid exceeds [`mpf_storage::dense::MAX_DENSE_CELLS`], which
/// callers treat as "never dense".
pub fn schema_density(ctx: &OptContext<'_>, schema: &Schema, rows: f64) -> Option<f64> {
    let domains: Vec<u64> = schema
        .iter()
        .map(|v| ctx.catalog.domain_size(v))
        .collect();
    let cells = mpf_storage::dense::grid_cells(&domains)?;
    if cells == 0 {
        return Some(0.0);
    }
    Some((rows / cells as f64).min(1.0))
}

/// Estimated density of `rows` rows on the catalog grid of `schema`,
/// under the *sparse* feasibility cap rather than the dense one: the
/// sparse-tensor operators never materialize the grid, only linearized
/// coordinates, so the grid may be as large as
/// [`mpf_storage::layout::MAX_SPARSE_COORD_CELLS`]. `None` when even the
/// coordinate space overflows, which callers treat as "never sparse".
pub fn schema_density_wide(ctx: &OptContext<'_>, schema: &Schema, rows: f64) -> Option<f64> {
    let domains: Vec<u64> = schema
        .iter()
        .map(|v| ctx.catalog.domain_size(v))
        .collect();
    let cells = mpf_storage::layout::grid_cells_wide(&domains)?;
    if cells == 0 {
        return Some(0.0);
    }
    Some((rows / cells as f64).min(1.0))
}

/// Estimated output density of an arbitrary logical plan
/// ([`plan_estimate`] rows over the output schema's catalog grid);
/// `None` when the grid is infeasible for dense execution.
pub fn plan_density(ctx: &OptContext<'_>, plan: &mpf_algebra::Plan) -> Option<f64> {
    let (schema, rows) = plan_estimate(ctx, plan);
    schema_density(ctx, &schema, rows)
}

/// Annotate an executed-plan trace with per-node estimated output rows.
///
/// `span` is the root span the interpreter recorded for `plan` (the span
/// tree mirrors the plan tree node-for-node); after this pass every span
/// carries `est_rows` next to its actual row count, which is what
/// `EXPLAIN ANALYZE` prints to make cost-model drift visible. Returns the
/// root estimate. Span subtrees that do not mirror the plan (e.g. spans
/// grafted by ad-hoc operator calls) are left unannotated.
pub fn annotate_estimates(
    ctx: &OptContext<'_>,
    plan: &mpf_algebra::PhysicalPlan,
    span: &mut mpf_algebra::TraceSpan,
) -> f64 {
    annotate_rec(ctx, plan, span).1
}

fn annotate_rec(
    ctx: &OptContext<'_>,
    plan: &mpf_algebra::PhysicalPlan,
    span: &mut mpf_algebra::TraceSpan,
) -> (Schema, f64) {
    use mpf_algebra::PhysicalPlan as PP;
    // Recurse only when the span's children mirror the plan node's inputs;
    // otherwise estimate the input from the logical plan alone.
    let input_est = |input: &PP, child: Option<&mut mpf_algebra::TraceSpan>| match child {
        Some(c) => annotate_rec(ctx, input, c),
        None => plan_estimate(ctx, &input.to_logical()),
    };
    let (schema, rows) = match plan {
        PP::Scan { relation } => match ctx.rels.iter().find(|r| &r.name == relation) {
            Some(rel) => (rel.schema.clone(), rel.cardinality as f64),
            None => (std::iter::empty().collect(), f64::NAN),
        },
        PP::Select { input, predicates } => {
            let (schema, mut rows) = input_est(input, span.children.first_mut());
            for &(v, _) in predicates {
                let d = ctx.catalog.domain_size(v) as f64;
                if d > 0.0 {
                    rows /= d;
                }
            }
            (schema, rows.max(1.0))
        }
        PP::Join { left, right, .. } => {
            let two = span.children.len() == 2;
            let mut it = span.children.iter_mut();
            let (ls, lr) = input_est(left, if two { it.next() } else { None });
            let (rs, rr) = input_est(right, if two { it.next() } else { None });
            let rows = join_rows(ctx, &ls, lr, &rs, rr);
            (ls.union(&rs), rows)
        }
        PP::GroupBy {
            input, group_vars, ..
        } => {
            let (_, in_rows) = input_est(input, span.children.first_mut());
            let schema: Schema = group_vars.iter().copied().collect();
            let rows = group_rows(ctx, in_rows, &schema);
            (schema, rows)
        }
        PP::JoinAgg {
            left,
            right,
            group_vars,
        } => {
            // Estimated like the unfused pair: join cardinality feeds the
            // group-count model, the intermediate just never materializes.
            let two = span.children.len() == 2;
            let mut it = span.children.iter_mut();
            let (ls, lr) = input_est(left, if two { it.next() } else { None });
            let (rs, rr) = input_est(right, if two { it.next() } else { None });
            let join = join_rows(ctx, &ls, lr, &rs, rr);
            let schema: Schema = group_vars.iter().copied().collect();
            let rows = group_rows(ctx, join, &schema);
            (schema, rows)
        }
    };
    span.est_rows = Some(rows);
    (schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseRel, CostModel, QuerySpec};
    use mpf_storage::Catalog;

    #[test]
    fn estimates_follow_assumptions() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 100).unwrap();
        let c = cat.add_var("c", 5).unwrap();
        let r1 = BaseRel {
            name: "r1".into(),
            schema: Schema::new(vec![a, b]).unwrap(),
            cardinality: 1000,
            fd_lhs: None,
        };
        let r2 = BaseRel {
            name: "r2".into(),
            schema: Schema::new(vec![b, c]).unwrap(),
            cardinality: 500,
            fd_lhs: None,
        };
        let ctx = OptContext::new(
            &cat,
            [r1.clone(), r2.clone()],
            QuerySpec::group_by([a]),
            CostModel::Io,
        );
        assert_eq!(base_rows(&ctx, 0), 1000.0);
        // Join on b: 1000*500/100 = 5000.
        let j = join_rows(&ctx, &r1.schema, 1000.0, &r2.schema, 500.0);
        assert_eq!(j, 5000.0);
        // Grouping 5000 rows onto a (domain 10) -> 10.
        let g = group_rows(&ctx, j, &Schema::new(vec![a]).unwrap());
        assert_eq!(g, 10.0);
        // Grouping 5 rows onto b (domain 100) capped by input.
        let g2 = group_rows(&ctx, 5.0, &Schema::new(vec![b]).unwrap());
        assert_eq!(g2, 5.0);
    }

    #[test]
    fn predicates_shrink_estimates() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 100).unwrap();
        let r1 = BaseRel {
            name: "r1".into(),
            schema: Schema::new(vec![a, b]).unwrap(),
            cardinality: 1000,
            fd_lhs: None,
        };
        let ctx = OptContext::new(
            &cat,
            [r1.clone()],
            QuerySpec::group_by([a]).filter(b, 7),
            CostModel::Io,
        );
        // Selection on b keeps 1/100 of rows.
        assert_eq!(base_rows(&ctx, 0), 10.0);
        // Bound variable contributes effective domain 1 to joins.
        let j = join_rows(&ctx, &r1.schema, 10.0, &r1.schema, 10.0);
        // Shared vars a (10) and b (bound, 1): 10*10/10 = 10.
        assert_eq!(j, 10.0);
    }

    #[test]
    fn cross_product_estimate() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 10).unwrap();
        let sa = Schema::new(vec![a]).unwrap();
        let sb = Schema::new(vec![b]).unwrap();
        let ctx = OptContext::new(&cat, [], QuerySpec::default(), CostModel::Io);
        assert_eq!(join_rows(&ctx, &sa, 10.0, &sb, 10.0), 100.0);
    }
}
