//! Linear-plan dynamic programming: the CS baseline and CS+ (Algorithm 1).
//!
//! Both are Selinger-style dynamic programs over left-deep join orders.
//! CS+ additionally considers a `GroupBy` on top of the accumulated subplan
//! before each extension join — the Chaudhuri–Shim transformation, with
//! group variables chosen per their correctness condition (query variables
//! plus variables appearing in any relation not yet joined).
//!
//! Instead of memoizing a single min-cost plan per relation subset, the
//! program keeps a **Pareto set** keyed by output schema
//! ([`pareto_insert`]): the grouped and ungrouped variants of a prefix are
//! incomparable physical properties (the cheaper one may be wider), and a
//! single-plan memo would make the search non-monotone. This subsumes —
//! and strictly strengthens — the paper's greedy-conservative comparison of
//! `q1j`/`q2j` while staying inside the same `GDLPlan(CS+)` space: every
//! plan considered is a left-deep join tree with correctness-condition
//! group-bys.

use mpf_storage::Schema;

use crate::subplan::{pareto_insert, reduced_variant};
use crate::{OptContext, SubPlan};

/// Find the best linear plan. With `with_group_by = false` this is the
/// unmodified CS algorithm as it behaves on MPF queries (join ordering
/// only, single root group-by — the paper's Figure 3); with `true` it is
/// CS+ (Figure 4).
pub fn plan_linear(ctx: &OptContext<'_>, with_group_by: bool) -> SubPlan {
    let n = ctx.rels.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut memo: Vec<Vec<SubPlan>> = vec![Vec::new(); 1 << n];

    // Singletons: the scan (+ pushed selections), and — for CS+ — its
    // grouped variant (line 3 of Algorithm 1 with a singleton S_j).
    for j in 0..n {
        let mask = 1usize << j;
        let leaf = SubPlan::leaf(ctx, j);
        if with_group_by {
            let outside: Vec<&Schema> = (0..n)
                .filter(|&i| i != j)
                .map(|i| &ctx.rels[i].schema)
                .collect();
            if let Some(red) = reduced_variant(ctx, &leaf, outside.iter().copied()) {
                pareto_insert(&mut memo[mask], red);
            }
        }
        pareto_insert(&mut memo[mask], leaf);
    }

    // Prefix subsets in increasing mask order; extend by one relation. The
    // incoming relation is always the raw leaf (linear plans never group
    // the right operand — that is the nonlinear extension).
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let outside: Vec<&Schema> = (0..n)
            .filter(|&i| mask & (1u32 << i) == 0)
            .map(|i| &ctx.rels[i].schema)
            .collect();
        let mut entries: Vec<SubPlan> = Vec::new();
        let mut bits = mask;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let prev_mask = (mask & !(1u32 << j)) as usize;
            let right = SubPlan::leaf(ctx, j);
            for left in &memo[prev_mask] {
                let cand = SubPlan::join(ctx, left.clone(), right.clone());
                if with_group_by {
                    // The grouped variant of the new prefix becomes next
                    // step's `GroupBy(optPlan(S_j))` candidate.
                    if let Some(red) = reduced_variant(ctx, &cand, outside.iter().copied()) {
                        pareto_insert(&mut entries, red);
                    }
                }
                pareto_insert(&mut entries, cand);
            }
        }
        memo[mask as usize] = entries;
    }

    best_with_root_group_by(ctx, &memo[full as usize])
}

/// Apply the root group-by to every Pareto entry of the full set and return
/// the cheapest complete plan.
pub(crate) fn best_with_root_group_by(ctx: &OptContext<'_>, entries: &[SubPlan]) -> SubPlan {
    entries
        .iter()
        .map(|e| SubPlan::group(ctx, e.clone(), &ctx.query.group_vars))
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .expect("full relation set has at least one plan")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseRel, CostModel, QuerySpec};
    use mpf_storage::{Catalog, Schema, VarId};

    /// Chain schema r1(a,b) — r2(b,c) — r3(c,d) with a large middle table.
    fn chain(cat: &mut Catalog) -> (Vec<BaseRel>, VarId, VarId, VarId, VarId) {
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 100).unwrap();
        let c = cat.add_var("c", 100).unwrap();
        let d = cat.add_var("d", 10).unwrap();
        let mk = |name: &str, vars: Vec<VarId>, card: u64| BaseRel {
            name: name.into(),
            schema: Schema::new(vars).unwrap(),
            cardinality: card,
            fd_lhs: None,
        };
        (
            vec![
                mk("r1", vec![a, b], 1000),
                mk("r2", vec![b, c], 10_000),
                mk("r3", vec![c, d], 1000),
            ],
            a,
            b,
            c,
            d,
        )
    }

    #[test]
    fn cs_has_single_root_group_by() {
        let mut cat = Catalog::new();
        let (rels, a, ..) = chain(&mut cat);
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let p = plan_linear(&ctx, false);
        assert_eq!(p.plan.group_by_count(), 1);
        assert_eq!(p.plan.join_count(), 2);
        assert!(p.plan.is_linear());
        assert_eq!(p.schema.vars(), &[a]);
    }

    #[test]
    fn cs_plus_pushes_group_bys_and_is_cheaper() {
        let mut cat = Catalog::new();
        let (rels, a, ..) = chain(&mut cat);
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let cs = plan_linear(&ctx, false);
        let cs_plus = plan_linear(&ctx, true);
        // The greedy-conservative guarantee: CS+ is never worse than the
        // single-root-group-by plan.
        assert!(cs_plus.cost <= cs.cost);
        // On this schema pushing a group-by pays off.
        assert!(cs_plus.plan.group_by_count() > 1);
        assert!(cs_plus.plan.is_linear());
    }

    #[test]
    fn all_relations_scanned_exactly_once() {
        let mut cat = Catalog::new();
        let (rels, _, b, ..) = chain(&mut cat);
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([b]), CostModel::Io);
        for with_gb in [false, true] {
            let p = plan_linear(&ctx, with_gb);
            let mut names = p.plan.base_relations();
            names.sort_unstable();
            assert_eq!(names, vec!["r1", "r2", "r3"]);
        }
    }

    #[test]
    fn single_relation_query() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 4).unwrap();
        let b = cat.add_var("b", 4).unwrap();
        let ctx = OptContext::new(
            &cat,
            [BaseRel {
                name: "r".into(),
                schema: Schema::new(vec![a, b]).unwrap(),
                cardinality: 16,
                fd_lhs: None,
            }],
            QuerySpec::group_by([a]),
            CostModel::Io,
        );
        let p = plan_linear(&ctx, true);
        assert_eq!(p.plan.join_count(), 0);
        assert_eq!(p.schema.vars(), &[a]);
    }

    #[test]
    fn pareto_keeps_grouped_and_ungrouped_variants() {
        // On the chain with query var a, the singleton {r3} prefix has both
        // a raw and a reduced (grouped onto c) entry.
        let mut cat = Catalog::new();
        let (rels, a, ..) = chain(&mut cat);
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
        let leaf = SubPlan::leaf(&ctx, 2);
        let outside: Vec<&Schema> = vec![&ctx.rels[0].schema, &ctx.rels[1].schema];
        let red = reduced_variant(&ctx, &leaf, outside.iter().copied()).unwrap();
        assert!(red.schema.arity() < leaf.schema.arity());
        let mut set = Vec::new();
        pareto_insert(&mut set, leaf);
        pareto_insert(&mut set, red);
        assert_eq!(set.len(), 2, "different schemas are incomparable");
    }
}
