use mpf_algebra::Plan;
use mpf_storage::{Schema, VarId};

use crate::{estimate, OptContext};

/// A plan fragment annotated with its output schema, estimated cardinality,
/// and accumulated estimated cost — the unit of dynamic programming.
#[derive(Debug, Clone, PartialEq)]
pub struct SubPlan {
    /// The plan fragment.
    pub plan: Plan,
    /// Output variable schema.
    pub schema: Schema,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost (cost-model units).
    pub cost: f64,
}

impl SubPlan {
    /// Leaf subplan: scan base relation `rel_idx`, applying any of the
    /// query's equality predicates that mention its variables (selection
    /// pushdown — always correct because selection commutes with product
    /// join and marginalization on other variables).
    pub fn leaf(ctx: &OptContext<'_>, rel_idx: usize) -> SubPlan {
        let rel = &ctx.rels[rel_idx];
        let preds = ctx.applicable_predicates(&rel.schema);
        let scan_rows = rel.cardinality as f64;
        let rows = estimate::base_rows(ctx, rel_idx);
        let mut cost = ctx.cost_model.scan(scan_rows);
        let plan = if preds.is_empty() {
            Plan::scan(rel.name.clone())
        } else {
            cost += ctx.cost_model.select(scan_rows, rows);
            Plan::select(Plan::scan(rel.name.clone()), preds)
        };
        SubPlan {
            plan,
            schema: rel.schema.clone(),
            rows,
            cost,
        }
    }

    /// Join two subplans (product join).
    pub fn join(ctx: &OptContext<'_>, l: SubPlan, r: SubPlan) -> SubPlan {
        let rows = estimate::join_rows(ctx, &l.schema, l.rows, &r.schema, r.rows);
        let cost = l.cost + r.cost + ctx.cost_model.join(l.rows, r.rows, rows);
        SubPlan {
            plan: Plan::join(l.plan, r.plan),
            schema: l.schema.union(&r.schema),
            rows,
            cost,
        }
    }

    /// Apply a group-by onto `group_vars` (which must be a subset of the
    /// input schema; order is normalized to the input schema's order).
    pub fn group(ctx: &OptContext<'_>, input: SubPlan, group_vars: &[VarId]) -> SubPlan {
        let schema: Schema = input
            .schema
            .iter()
            .filter(|v| group_vars.contains(v))
            .collect();
        let rows = estimate::group_rows(ctx, input.rows, &schema);
        let cost = input.cost + ctx.cost_model.group_by(input.rows, rows);
        SubPlan {
            plan: Plan::group_by(input.plan, schema.vars().to_vec()),
            schema,
            rows,
            cost,
        }
    }

    /// The variables of `inside` that must be **retained** by an inner
    /// group-by for the plan transformation to stay correct (the
    /// Chaudhuri–Shim condition, line 3 of Algorithm 1): query variables,
    /// plus any variable appearing in a relation not yet joined in
    /// (`outside` schemas).
    pub fn needed_vars<'s>(
        ctx: &OptContext<'_>,
        inside: &Schema,
        outside: impl IntoIterator<Item = &'s Schema>,
    ) -> Vec<VarId> {
        let mut keep: Vec<VarId> = inside
            .iter()
            .filter(|v| ctx.query.group_vars.contains(v))
            .collect();
        for sch in outside {
            for v in sch.iter() {
                if inside.contains(v) && !keep.contains(&v) {
                    keep.push(v);
                }
            }
        }
        keep
    }

    /// Whether grouping `inside` onto `keep` actually removes variables
    /// (otherwise the group-by is pure overhead and need not be considered).
    pub fn grouping_reduces(inside: &Schema, keep: &[VarId]) -> bool {
        keep.len() < inside.arity()
    }
}

/// Insert `cand` into a Pareto set of subplans for one relation subset.
///
/// Plans are comparable only when they produce the same variable set; among
/// those, one dominates if it is no worse in both estimated cost and
/// estimated rows. Keeping the full frontier (instead of a single
/// min-cost plan) is what makes the dynamic programs *monotone*: a plan
/// that is cheaper but wider (more columns, more rows) cannot shadow the
/// narrower plan a later join needs. This strengthens the paper's
/// greedy-conservative heuristic — see DESIGN.md §"Pareto DP".
pub fn pareto_insert(set: &mut Vec<SubPlan>, cand: SubPlan) {
    let key = |s: &SubPlan| -> Vec<VarId> {
        let mut v = s.schema.vars().to_vec();
        v.sort_unstable();
        v
    };
    let ck = key(&cand);
    for e in set.iter() {
        if key(e) == ck && e.cost <= cand.cost && e.rows <= cand.rows {
            return; // dominated
        }
    }
    set.retain(|e| !(key(e) == ck && cand.cost <= e.cost && cand.rows <= e.rows));
    set.push(cand);
}

/// The group-by-reduced variant of a subplan: marginalize onto the
/// variables still needed (query variables plus variables shared with any
/// relation outside the subplan's subset), or `None` if nothing can be
/// dropped.
pub fn reduced_variant<'s>(
    ctx: &OptContext<'_>,
    entry: &SubPlan,
    outside: impl IntoIterator<Item = &'s Schema>,
) -> Option<SubPlan> {
    let keep = SubPlan::needed_vars(ctx, &entry.schema, outside);
    SubPlan::grouping_reduces(&entry.schema, &keep)
        .then(|| SubPlan::group(ctx, entry.clone(), &keep))
}

/// Among the four candidate joins of the nonlinear CS+ comparison
/// (Section 5.1: no group-by / group-by left / group-by right / both),
/// return the cheapest. `outside_left` / `outside_right` are the schemas of
/// relations not contained in the respective operand (each side's "future"
/// includes the opposite operand).
pub fn best_join_of_four<'s>(
    ctx: &OptContext<'_>,
    l: &SubPlan,
    r: &SubPlan,
    outside_left: &[&'s Schema],
    outside_right: &[&'s Schema],
) -> SubPlan {
    let keep_l = SubPlan::needed_vars(ctx, &l.schema, outside_left.iter().copied());
    let keep_r = SubPlan::needed_vars(ctx, &r.schema, outside_right.iter().copied());
    let gb_left = SubPlan::grouping_reduces(&l.schema, &keep_l);
    let gb_right = SubPlan::grouping_reduces(&r.schema, &keep_r);

    let mut best = SubPlan::join(ctx, l.clone(), r.clone());
    if gb_left {
        let cand = SubPlan::join(ctx, SubPlan::group(ctx, l.clone(), &keep_l), r.clone());
        if cand.cost < best.cost {
            best = cand;
        }
    }
    if gb_right {
        let cand = SubPlan::join(ctx, l.clone(), SubPlan::group(ctx, r.clone(), &keep_r));
        if cand.cost < best.cost {
            best = cand;
        }
    }
    if gb_left && gb_right {
        let cand = SubPlan::join(
            ctx,
            SubPlan::group(ctx, l.clone(), &keep_l),
            SubPlan::group(ctx, r.clone(), &keep_r),
        );
        if cand.cost < best.cost {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseRel, CostModel, QuerySpec};
    use mpf_storage::Catalog;

    fn ctx_fixture(cat: &Catalog, rels: Vec<BaseRel>, q: QuerySpec) -> OptContext<'_> {
        OptContext::new(cat, rels, q, CostModel::Io)
    }

    #[test]
    fn leaf_applies_predicates() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 10).unwrap();
        let rels = vec![BaseRel {
            name: "r".into(),
            schema: Schema::new(vec![a, b]).unwrap(),
            cardinality: 100,
            fd_lhs: None,
        }];
        let ctx = ctx_fixture(&cat, rels, QuerySpec::group_by([b]).filter(a, 1));
        let leaf = SubPlan::leaf(&ctx, 0);
        assert!(matches!(leaf.plan, Plan::Select { .. }));
        assert_eq!(leaf.rows, 10.0);
    }

    #[test]
    fn needed_vars_keep_query_and_future_join_vars() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 10).unwrap();
        let c = cat.add_var("c", 10).unwrap();
        let d = cat.add_var("d", 10).unwrap();
        let inside = Schema::new(vec![a, b, c]).unwrap();
        let future = Schema::new(vec![c, d]).unwrap();
        let ctx = ctx_fixture(&cat, vec![], QuerySpec::group_by([a]));
        let keep = SubPlan::needed_vars(&ctx, &inside, [&future]);
        // a is a query var, c joins with the future relation; b is droppable.
        assert_eq!(keep, vec![a, c]);
        assert!(SubPlan::grouping_reduces(&inside, &keep));
    }

    #[test]
    fn four_way_prefers_reducing_group_by() {
        // One big relation over (a, b) with a tiny query variable domain:
        // grouping it before joining must win under the IO model.
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 2).unwrap();
        let b = cat.add_var("b", 100_000).unwrap();
        let c = cat.add_var("c", 2).unwrap();
        let big = BaseRel {
            name: "big".into(),
            schema: Schema::new(vec![a, b]).unwrap(),
            cardinality: 200_000,
            fd_lhs: None,
        };
        let small = BaseRel {
            name: "small".into(),
            schema: Schema::new(vec![a, c]).unwrap(),
            cardinality: 4,
            fd_lhs: None,
        };
        let ctx = ctx_fixture(&cat, vec![big, small], QuerySpec::group_by([c]));
        let l = SubPlan::leaf(&ctx, 0);
        let r = SubPlan::leaf(&ctx, 1);
        let r_schema = ctx.rels[1].schema.clone();
        let l_schema = ctx.rels[0].schema.clone();
        let best = best_join_of_four(&ctx, &l, &r, &[&r_schema], &[&l_schema]);
        // The winning plan groups `big` onto {a} (b eliminated) first.
        assert_eq!(best.plan.group_by_count(), 1);
        let plain = SubPlan::join(&ctx, l, r);
        assert!(best.cost < plain.cost);
    }
}
