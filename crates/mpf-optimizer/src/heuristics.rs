//! Elimination-order heuristics for Variable Elimination (Section 5.5).
//!
//! * **degree** — estimates the size of the *post*-elimination relation
//!   (`p` in line 6 of Algorithm 2) as the product of the effective domain
//!   sizes of the neighbours of `v`; greedily minimizes the size of join
//!   operands higher in the tree.
//! * **width** — estimates the size of the *pre*-elimination relation
//!   `joinplan(rels(v, S))` as the product of domain sizes including `v`.
//! * **elimination cost** — estimates the actual cost of the plan required
//!   to eliminate `v`. Per the paper's implementation note, this is an
//!   *overestimate*: a fixed linear join ordering (smallest first) is
//!   assumed and costed with the context's cost model.
//! * **deg & width**, **deg & elim_cost** — normalized products of two
//!   heuristics (each candidate's score is divided by the largest among
//!   candidates, then multiplied; footnote 1 of the paper).
//! * **random** — a seeded random order (the Table 3 experiment).

use mpf_storage::VarId;

use crate::{estimate, OptContext, SubPlan};

/// An elimination-order heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Heuristic {
    /// Minimize the post-elimination relation size.
    Degree,
    /// Minimize the pre-elimination (joined) relation size.
    Width,
    /// Minimize the estimated cost of the elimination plan (overestimated
    /// with a fixed smallest-first linear ordering).
    ElimCost,
    /// Normalized product of degree and width.
    DegreeWidth,
    /// Normalized product of degree and elimination cost.
    DegreeElimCost,
    /// Uniformly random order from the given seed.
    Random(u64),
}

impl Heuristic {
    /// All deterministic heuristics, in the order of the paper's Table 2.
    pub const DETERMINISTIC: [Heuristic; 5] = [
        Heuristic::Degree,
        Heuristic::Width,
        Heuristic::ElimCost,
        Heuristic::DegreeWidth,
        Heuristic::DegreeElimCost,
    ];

    /// Short label matching the paper's table rows.
    pub fn label(&self) -> String {
        match self {
            Heuristic::Degree => "deg".into(),
            Heuristic::Width => "width".into(),
            Heuristic::ElimCost => "elim_cost".into(),
            Heuristic::DegreeWidth => "deg & width".into(),
            Heuristic::DegreeElimCost => "deg & elim_cost".into(),
            Heuristic::Random(_) => "random".into(),
        }
    }
}

/// The degree score of eliminating `v` given the live factor set: product of
/// effective domains of the union schema of `rels(v)` minus `v` itself.
///
/// `eliminated` lists variables already processed; extended VE *delays*
/// their group-by, so they may linger in factor schemas — they are excluded
/// from scores because the next group-by drops them for free.
pub fn degree_score(
    ctx: &OptContext<'_>,
    factors: &[SubPlan],
    v: VarId,
    eliminated: &[VarId],
) -> f64 {
    neighbourhood(factors, v)
        .into_iter()
        .filter(|&u| u != v && !eliminated.contains(&u))
        .map(|u| ctx.effective_domain(u))
        .product()
}

/// The width score: product of effective domains of the union schema of
/// `rels(v)` including `v` (minus already-eliminated stragglers, see
/// [`degree_score`]).
pub fn width_score(
    ctx: &OptContext<'_>,
    factors: &[SubPlan],
    v: VarId,
    eliminated: &[VarId],
) -> f64 {
    neighbourhood(factors, v)
        .into_iter()
        .filter(|&u| !eliminated.contains(&u))
        .map(|u| ctx.effective_domain(u))
        .product()
}

/// The elimination-cost score: estimated cost of joining `rels(v)` in a
/// fixed smallest-first linear order and grouping `v` away (together with
/// any already-eliminated stragglers the group-by would drop anyway).
pub fn elim_cost_score(
    ctx: &OptContext<'_>,
    factors: &[SubPlan],
    v: VarId,
    eliminated: &[VarId],
) -> f64 {
    let mut parts: Vec<&SubPlan> = factors.iter().filter(|f| f.schema.contains(v)).collect();
    if parts.is_empty() {
        return 0.0;
    }
    parts.sort_by(|a, b| a.rows.total_cmp(&b.rows).then(a.schema.arity().cmp(&b.schema.arity())));
    let mut schema = parts[0].schema.clone();
    let mut rows = parts[0].rows;
    let mut cost = 0.0;
    for p in &parts[1..] {
        let out = estimate::join_rows(ctx, &schema, rows, &p.schema, p.rows);
        cost += ctx.cost_model.join(rows, p.rows, out);
        schema = schema.union(&p.schema);
        rows = out;
    }
    let mut dropped: Vec<VarId> = eliminated.to_vec();
    dropped.push(v);
    let grouped = schema.difference(&dropped);
    let out = estimate::group_rows(ctx, rows, &grouped);
    cost + ctx.cost_model.group_by(rows, out)
}

/// Union of the schemas of all live factors containing `v` (the variable's
/// elimination neighbourhood).
fn neighbourhood(factors: &[SubPlan], v: VarId) -> Vec<VarId> {
    let mut out = Vec::new();
    for f in factors {
        if f.schema.contains(v) {
            for u in f.schema.iter() {
                if !out.contains(&u) {
                    out.push(u);
                }
            }
        }
    }
    out
}

/// Select the next variable to eliminate from `candidates` under a
/// deterministic heuristic (Random orders are pre-shuffled by the caller).
///
/// Ties break toward the smaller `VarId` for reproducibility.
///
/// # Panics
/// Panics if called with [`Heuristic::Random`] or empty `candidates`.
pub fn select_next(
    ctx: &OptContext<'_>,
    heuristic: Heuristic,
    factors: &[SubPlan],
    candidates: &[VarId],
    eliminated: &[VarId],
) -> VarId {
    assert!(!candidates.is_empty());
    let scores: Vec<f64> = match heuristic {
        Heuristic::Degree => candidates
            .iter()
            .map(|&v| degree_score(ctx, factors, v, eliminated))
            .collect(),
        Heuristic::Width => candidates
            .iter()
            .map(|&v| width_score(ctx, factors, v, eliminated))
            .collect(),
        Heuristic::ElimCost => candidates
            .iter()
            .map(|&v| elim_cost_score(ctx, factors, v, eliminated))
            .collect(),
        Heuristic::DegreeWidth => normalized_product(
            &candidates
                .iter()
                .map(|&v| degree_score(ctx, factors, v, eliminated))
                .collect::<Vec<_>>(),
            &candidates
                .iter()
                .map(|&v| width_score(ctx, factors, v, eliminated))
                .collect::<Vec<_>>(),
        ),
        Heuristic::DegreeElimCost => normalized_product(
            &candidates
                .iter()
                .map(|&v| degree_score(ctx, factors, v, eliminated))
                .collect::<Vec<_>>(),
            &candidates
                .iter()
                .map(|&v| elim_cost_score(ctx, factors, v, eliminated))
                .collect::<Vec<_>>(),
        ),
        Heuristic::Random(_) => panic!("random orders are pre-shuffled by the VE driver"),
    };
    let mut best = 0;
    for i in 1..candidates.len() {
        if scores[i] < scores[best]
            || (scores[i] == scores[best] && candidates[i] < candidates[best])
        {
            best = i;
        }
    }
    candidates[best]
}

/// Combine two score vectors by normalizing each (dividing by its maximum
/// over the candidates) and multiplying pointwise — footnote 1 of the paper.
fn normalized_product(a: &[f64], b: &[f64]) -> Vec<f64> {
    let max_a = a.iter().copied().fold(f64::MIN, f64::max).max(1e-300);
    let max_b = b.iter().copied().fold(f64::MIN, f64::max).max(1e-300);
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x / max_a) * (y / max_b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, QuerySpec};
    use mpf_algebra::Plan;
    use mpf_storage::{Catalog, Schema};

    fn factor(schema: Schema, rows: f64) -> SubPlan {
        SubPlan {
            plan: Plan::scan("f"),
            schema,
            rows,
            cost: 0.0,
        }
    }

    #[test]
    fn degree_vs_width() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 100).unwrap();
        let c = cat.add_var("c", 5).unwrap();
        let ctx = OptContext::new(&cat, [], QuerySpec::default(), CostModel::Io);
        let factors = vec![
            factor(Schema::new(vec![a, b]).unwrap(), 1000.0),
            factor(Schema::new(vec![b, c]).unwrap(), 500.0),
        ];
        // Eliminating b joins both factors: neighbourhood {a, b, c}.
        assert_eq!(degree_score(&ctx, &factors, b, &[]), 50.0); // 10 * 5
        assert_eq!(width_score(&ctx, &factors, b, &[]), 5000.0); // 10 * 100 * 5
        // Eliminating a touches only the first factor.
        assert_eq!(degree_score(&ctx, &factors, a, &[]), 100.0);
        assert_eq!(width_score(&ctx, &factors, a, &[]), 1000.0);
    }

    #[test]
    fn elim_cost_counts_joins_and_group() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 100).unwrap();
        let ctx = OptContext::new(&cat, [], QuerySpec::default(), CostModel::Io);
        let f1 = factor(Schema::new(vec![a, b]).unwrap(), 1000.0);
        let f2 = factor(Schema::new(vec![b]).unwrap(), 100.0);
        // join rows = 1000*100/100 = 1000; join cost = 100+1000+1000 = 2100
        // group to {a}: out=10, cost = 1000+10 = 1010; total 3110.
        let score = elim_cost_score(&ctx, &[f1, f2], b, &[]);
        assert!((score - 3110.0).abs() < 1e-9, "got {score}");
    }

    #[test]
    fn select_prefers_cheap_variable() {
        let mut cat = Catalog::new();
        let hub = cat.add_var("hub", 10).unwrap();
        let x1 = cat.add_var("x1", 10).unwrap();
        let x2 = cat.add_var("x2", 10).unwrap();
        let x3 = cat.add_var("x3", 10).unwrap();
        let ctx = OptContext::new(&cat, [], QuerySpec::default(), CostModel::Io);
        // Star: hub appears everywhere; x2 in two factors, x1/x3 in one.
        let factors = vec![
            factor(Schema::new(vec![x1, x2, hub]).unwrap(), 1000.0),
            factor(Schema::new(vec![x2, x3, hub]).unwrap(), 1000.0),
        ];
        // Width of hub = 10^4 (all vars); width of x1 = 10^3.
        let pick = select_next(&ctx, Heuristic::Width, &factors, &[hub, x1, x2, x3], &[]);
        assert!(pick == x1 || pick == x3, "width must avoid the hub, got {pick}");
        // Degree of hub = 10^3 (x1,x2,x3); degree of x1 = 10^2 (x2,hub).
        let pick = select_next(&ctx, Heuristic::Degree, &factors, &[hub, x1, x2, x3], &[]);
        assert!(pick == x1 || pick == x3, "degree avoids the hub here, got {pick}");
    }

    #[test]
    fn normalized_product_combines() {
        let combined = normalized_product(&[1.0, 2.0, 4.0], &[8.0, 2.0, 1.0]);
        // normalized a: .25, .5, 1 ; normalized b: 1, .25, .125
        assert_eq!(combined, vec![0.25, 0.125, 0.125]);
    }

    #[test]
    fn deterministic_tiebreak() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 10).unwrap();
        let b = cat.add_var("b", 10).unwrap();
        let ctx = OptContext::new(&cat, [], QuerySpec::default(), CostModel::Io);
        let factors = vec![factor(Schema::new(vec![a, b]).unwrap(), 100.0)];
        // Symmetric scores: the smaller VarId wins.
        assert_eq!(select_next(&ctx, Heuristic::Degree, &factors, &[b, a], &[]), a);
    }
}
