//! Proposition 1: FD-based elimination pruning.
//!
//! If for every base relation `s_i` a declared functional dependency
//! `X_i -> s_i[f]` holds and variable `Y ∉ X_i` for all `i`, then grouping
//! the view onto `Var(r) \ Y` equals *projecting* `Y` away — no measures
//! collapse, so `Y` need not be considered for (aggregating) elimination.
//! A sufficient condition is a primary key per base relation with `Y` in no
//! key.
//!
//! Relations without a declared narrow FD default to the maximal FD of
//! Definition 1 (`X_i = Var(s_i)`), so by default nothing is removable.

use mpf_storage::{FunctionalRelation, VarId};

use crate::OptContext;

/// Variables satisfying Proposition 1 across all base relations: every base
/// relation that contains the variable declares an FD left-hand side that
/// excludes it.
pub fn removable_vars(ctx: &OptContext<'_>) -> Vec<VarId> {
    ctx.all_vars()
        .into_iter()
        .filter(|&v| {
            let mut appears = false;
            for rel in &ctx.rels {
                if rel.schema.contains(v) {
                    appears = true;
                    match &rel.fd_lhs {
                        // Maximal FD: v is in the left-hand side.
                        None => return false,
                        Some(lhs) => {
                            if lhs.contains(&v) {
                                return false;
                            }
                        }
                    }
                }
            }
            appears
        })
        .collect()
}

/// Check a declared FD `lhs -> f` actually holds on the data: no two rows
/// agree on `lhs` but differ elsewhere (value or measure).
///
/// Used by tests and by engines that want to validate declared keys before
/// trusting Proposition 1.
pub fn fd_holds(rel: &FunctionalRelation, lhs: &[VarId]) -> bool {
    let Ok(positions) = rel.schema().positions(lhs) else {
        return false;
    };
    let mut seen: std::collections::HashMap<mpf_storage::Key, usize> =
        std::collections::HashMap::with_capacity(rel.len());
    for i in 0..rel.len() {
        let key = mpf_storage::Key::extract(rel.row(i), &positions);
        if let Some(&j) = seen.get(&key) {
            if rel.row(i) != rel.row(j) || rel.measure(i) != rel.measure(j) {
                return false;
            }
        } else {
            seen.insert(key, i);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseRel, CostModel, QuerySpec};
    use mpf_storage::{Catalog, Schema};

    #[test]
    fn removable_requires_declared_fds_everywhere() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 4).unwrap();
        let b = cat.add_var("b", 4).unwrap();
        let c = cat.add_var("c", 4).unwrap();
        let r1 = BaseRel {
            name: "r1".into(),
            schema: Schema::new(vec![a, b]).unwrap(),
            cardinality: 16,
            fd_lhs: Some(vec![a]), // a -> f, b is a dependent attribute
        };
        let r2 = BaseRel {
            name: "r2".into(),
            schema: Schema::new(vec![a, c]).unwrap(),
            cardinality: 16,
            fd_lhs: None,
        };
        let ctx = OptContext::new(
            &cat,
            [r1.clone(), r2.clone()],
            QuerySpec::default(),
            CostModel::Io,
        );
        // b appears only in r1 and is outside r1's key: removable.
        assert_eq!(removable_vars(&ctx), vec![b]);

        // If r2 also contained b without a narrow FD, b is not removable.
        let r2b = BaseRel {
            name: "r2".into(),
            schema: Schema::new(vec![a, b, c]).unwrap(),
            cardinality: 64,
            fd_lhs: None,
        };
        let ctx2 = OptContext::new(&cat, [r1, r2b], QuerySpec::default(), CostModel::Io);
        assert!(removable_vars(&ctx2).is_empty());
    }

    #[test]
    fn fd_holds_on_data() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 4).unwrap();
        let b = cat.add_var("b", 4).unwrap();
        let schema = Schema::new(vec![a, b]).unwrap();
        // b is functionally determined by a (b = a mod 2, f = a).
        let rel = FunctionalRelation::from_rows(
            "r",
            schema.clone(),
            (0..4u32).map(|x| (vec![x, x % 2], x as f64)),
        )
        .unwrap();
        assert!(fd_holds(&rel, &[a]));
        // a is NOT determined by b (b=0 maps to a=0 and a=2).
        assert!(!fd_holds(&rel, &[b]));
        // Unknown variable in lhs.
        assert!(!fd_holds(&rel, &[VarId(99)]));
    }

    #[test]
    fn prop1_group_by_equals_projection() {
        // The semantic content of Proposition 1: when Y is outside the key,
        // GroupBy_{Var \ Y} collapses no measures — each group has one row
        // per distinct key value, i.e. it is a duplicate-free projection.
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 4).unwrap();
        let y = cat.add_var("y", 4).unwrap();
        let schema = Schema::new(vec![a, y]).unwrap();
        let rel = FunctionalRelation::from_rows(
            "r",
            schema,
            (0..4u32).map(|x| (vec![x, (x * 3) % 4], (x + 1) as f64)),
        )
        .unwrap();
        assert!(fd_holds(&rel, &[a]));
        let grouped = mpf_algebra::ops::group_by(
            &mut mpf_algebra::ExecContext::new(mpf_semiring::SemiringKind::SumProduct),
            &rel,
            &[a],
        )
        .unwrap();
        // Same number of rows (nothing merged) and same measures.
        assert_eq!(grouped.len(), rel.len());
        for (row, m) in rel.rows() {
            assert_eq!(grouped.lookup(&row[..1]), Some(m));
        }
    }
}
