//! Plan-space relationships from Section 5 of the paper, checked as cost
//! inequalities on random optimization contexts:
//!
//! * the CS+ greedy-conservative guarantee ("a plan that is no worse in
//!   terms of cost than the original single GroupBy node plan");
//! * `GDLPlan(CS+ linear) ⊆ GDLPlan(CS+ nonlinear)` — bushy search is
//!   never worse (Theorem 1 via search-space inclusion);
//! * `GDLPlan(VE) ⊆ GDLPlan(VE+)` for a fixed elimination order
//!   (Theorem 3);
//! * VE plans lie in the nonlinear CS+ space cost-wise on these instances
//!   (`cost(CS+) ≤ cost(VE)`, the practical content of Theorem 1's
//!   `GDLPlan(VE) ⊆ GDLPlan(CS+)`).

use mpf_optimizer::{
    optimize, ve::plan_ve_ordered, Algorithm, BaseRel, CostModel, Heuristic, OptContext,
    QuerySpec,
};
use mpf_storage::{Catalog, Schema, VarId};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A random optimization context: variables with random domains, relations
/// over random subsets with containment-consistent cardinalities.
#[derive(Debug, Clone)]
struct Ctx {
    domains: Vec<u64>,
    rel_vars: Vec<Vec<usize>>,
    card_fracs: Vec<f64>,
    query_var: usize,
    seed: u64,
}

fn ctx_strategy() -> impl Strategy<Value = Ctx> {
    (3usize..=6, 2usize..=5, 0u64..10_000).prop_flat_map(|(nvars, nrels, seed)| {
        let domains = proptest::collection::vec(2u64..=50, nvars);
        let rel = proptest::collection::vec(0usize..nvars, 1..=3).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        });
        let rels = proptest::collection::vec(rel, nrels);
        let fracs = proptest::collection::vec(0.05f64..1.0, nrels);
        (domains, rels, fracs, 0usize..nvars).prop_map(move |(domains, rel_vars, card_fracs, query_var)| Ctx {
            domains,
            rel_vars,
            card_fracs,
            query_var,
            seed,
        })
    })
}

fn build<'a>(c: &Ctx, cat: &'a mut Catalog) -> Option<OptContext<'a>> {
    for (i, &d) in c.domains.iter().enumerate() {
        cat.add_var(&format!("x{i}"), d).ok()?;
    }
    let mut rels = Vec::new();
    for (ri, vars) in c.rel_vars.iter().enumerate() {
        let ids: Vec<VarId> = vars.iter().map(|&v| VarId(v as u32)).collect();
        let full: u64 = vars.iter().map(|&v| c.domains[v]).product();
        let card = ((full as f64 * c.card_fracs[ri]).ceil() as u64).max(1);
        rels.push(BaseRel {
            name: format!("r{ri}"),
            schema: Schema::new(ids).ok()?,
            cardinality: card,
            fd_lhs: None,
        });
    }
    // Query variable must appear somewhere.
    if !c.rel_vars.iter().any(|vs| vs.contains(&c.query_var)) {
        return None;
    }
    let query = QuerySpec::group_by([VarId(c.query_var as u32)]);
    Some(OptContext::new(cat, rels, query, CostModel::Io))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CS+ (which may push group-bys) never costs more than CS (which
    /// cannot) — the Chaudhuri–Shim greedy-conservative guarantee.
    #[test]
    fn cs_plus_no_worse_than_cs(c in ctx_strategy()) {
        let mut cat = Catalog::new();
        let Some(ctx) = build(&c, &mut cat) else { return Ok(()) };
        let cs = optimize(&ctx, Algorithm::Cs);
        let csp = optimize(&ctx, Algorithm::CsPlusLinear);
        prop_assert!(
            csp.est_cost <= cs.est_cost + 1e-6,
            "CS+ {} > CS {}",
            csp.est_cost,
            cs.est_cost
        );
    }

    /// The bushy search space contains every linear plan.
    #[test]
    fn nonlinear_no_worse_than_linear(c in ctx_strategy()) {
        let mut cat = Catalog::new();
        let Some(ctx) = build(&c, &mut cat) else { return Ok(()) };
        let lin = optimize(&ctx, Algorithm::CsPlusLinear);
        let non = optimize(&ctx, Algorithm::CsPlusNonlinear);
        prop_assert!(
            non.est_cost <= lin.est_cost + 1e-6,
            "nonlinear {} > linear {}",
            non.est_cost,
            lin.est_cost
        );
    }

    /// Theorem 3: for the *same* elimination order, the extended space
    /// contains the plain VE plan, so VE+ never costs more.
    #[test]
    fn ve_plus_no_worse_than_ve_fixed_order(c in ctx_strategy()) {
        let mut cat = Catalog::new();
        let Some(ctx) = build(&c, &mut cat) else { return Ok(()) };
        let mut order: Vec<VarId> = ctx
            .all_vars()
            .into_iter()
            .filter(|v| !ctx.query.group_vars.contains(v))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(c.seed);
        order.shuffle(&mut rng);
        let ve = plan_ve_ordered(&ctx, &order, Heuristic::Random(0), false);
        let vep = plan_ve_ordered(&ctx, &order, Heuristic::Random(0), true);
        prop_assert!(
            vep.cost <= ve.cost + 1e-6,
            "VE+ {} > VE {} (order {:?})",
            vep.cost,
            ve.cost,
            order
        );
    }

    /// Practical Theorem 1 content: the nonlinear CS+ optimum lower-bounds
    /// every VE plan under every deterministic heuristic.
    #[test]
    fn cs_plus_nonlinear_lower_bounds_ve(c in ctx_strategy()) {
        let mut cat = Catalog::new();
        let Some(ctx) = build(&c, &mut cat) else { return Ok(()) };
        let opt = optimize(&ctx, Algorithm::CsPlusNonlinear);
        for h in Heuristic::DETERMINISTIC {
            let ve = optimize(&ctx, Algorithm::Ve(h));
            prop_assert!(
                opt.est_cost <= ve.est_cost + 1e-6,
                "CS+ {} > VE({}) {}",
                opt.est_cost,
                h.label(),
                ve.est_cost
            );
        }
    }

    /// Every produced plan scans each base relation exactly once and ends
    /// with the query schema.
    #[test]
    fn plans_are_well_formed(c in ctx_strategy()) {
        let mut cat = Catalog::new();
        let Some(ctx) = build(&c, &mut cat) else { return Ok(()) };
        let n = ctx.rels.len();
        for algo in [
            Algorithm::Cs,
            Algorithm::CsPlusLinear,
            Algorithm::CsPlusNonlinear,
            Algorithm::Ve(Heuristic::Degree),
            Algorithm::VePlus(Heuristic::Degree),
        ] {
            let p = optimize(&ctx, algo);
            let mut scans = p.plan.base_relations();
            scans.sort_unstable();
            scans.dedup();
            prop_assert_eq!(scans.len(), n, "{} misses/duplicates scans", algo.label());
            prop_assert_eq!(
                p.plan.join_count(),
                n - 1,
                "{} has wrong join count",
                algo.label()
            );
            let schema_set: std::collections::BTreeSet<VarId> =
                p.schema_of(&ctx).into_iter().collect();
            let want: std::collections::BTreeSet<VarId> =
                ctx.query.group_vars.iter().copied().collect();
            prop_assert_eq!(schema_set, want);
        }
    }
}

/// Helper: output schema of an optimized plan (root group-by vars).
trait SchemaOf {
    fn schema_of(&self, ctx: &OptContext<'_>) -> Vec<VarId>;
}

impl SchemaOf for mpf_optimizer::OptimizedPlan {
    fn schema_of(&self, _ctx: &OptContext<'_>) -> Vec<VarId> {
        match &self.plan {
            mpf_algebra::Plan::GroupBy { group_vars, .. } => group_vars.clone(),
            _ => panic!("optimized plans end in a root group-by"),
        }
    }
}
