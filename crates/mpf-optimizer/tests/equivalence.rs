//! The central correctness property of the whole paper: **every** plan
//! produced by CS, CS+ (linear and nonlinear), VE (under every heuristic and
//! under arbitrary random orders), and VE+ computes exactly the same
//! functional relation as the naive join-everything-then-aggregate plan.
//!
//! This is what Definition 4's `GDLPlan` space membership means
//! semantically, and it holds in any commutative semiring.

use mpf_algebra::{ops, Executor, RelationProvider, RelationStore};
use mpf_optimizer::{optimize, Algorithm, BaseRel, CostModel, Heuristic, OptContext, QuerySpec};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

/// One generated relation: variable indices plus `(values, measure)` rows.
type RelSpec = (Vec<usize>, Vec<(Vec<u32>, f64)>);

/// Everything `build` materializes for one instance.
type Materialized = (Catalog, RelationStore, Vec<BaseRel>, QuerySpec, Vec<VarId>);

/// A generated random MPF instance.
#[derive(Debug, Clone)]
struct Instance {
    domains: Vec<u64>,
    rels: Vec<RelSpec>,
    group_vars: Vec<usize>,
    predicate: Option<(usize, u32)>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    // 3-5 variables with domains 2-3; 2-4 relations of 1-3 vars each.
    (3usize..=5, 2usize..=4).prop_flat_map(|(nvars, nrels)| {
        let domains = proptest::collection::vec(2u64..=3, nvars);
        domains.prop_flat_map(move |domains| {
            let rel = {
                let domains = domains.clone();
                proptest::collection::vec(0usize..nvars, 1..=3).prop_flat_map(move |mut vars| {
                    vars.sort_unstable();
                    vars.dedup();
                    // Enumerate the full cross product; keep each row with
                    // probability ~0.8 and give it a positive measure.
                    let total: u64 = vars.iter().map(|&v| domains[v]).product();
                    let rows = proptest::collection::vec(
                        (proptest::bool::weighted(0.8), 1u32..=8),
                        total as usize,
                    );
                    let domains = domains.clone();
                    rows.prop_map(move |flags| {
                        let mut out = Vec::new();
                        let mut point = vec![0u32; vars.len()];
                        for (keep, meas) in flags {
                            if keep {
                                out.push((point.clone(), meas as f64 / 2.0));
                            }
                            for i in (0..vars.len()).rev() {
                                point[i] += 1;
                                if (point[i] as u64) < domains[vars[i]] {
                                    break;
                                }
                                point[i] = 0;
                            }
                        }
                        (vars.clone(), out)
                    })
                })
            };
            let rels = proptest::collection::vec(rel, nrels);
            let group_vars = proptest::collection::vec(0usize..nvars, 0..=2);
            let predicate = proptest::option::of((0usize..nvars, 0u32..2));
            (rels, group_vars, predicate).prop_map({
                let domains = domains.clone();
                move |(rels, mut group_vars, predicate)| {
                    group_vars.sort_unstable();
                    group_vars.dedup();
                    Instance {
                        domains: domains.clone(),
                        rels,
                        group_vars,
                        predicate,
                    }
                }
            })
        })
    })
}

/// Materialize the instance into a catalog + store, restricted to variables
/// that actually appear in some relation.
fn build(inst: &Instance) -> Option<Materialized> {
    let mut cat = Catalog::new();
    let var_ids: Vec<VarId> = inst
        .domains
        .iter()
        .enumerate()
        .map(|(i, &d)| cat.add_var(&format!("x{i}"), d).unwrap())
        .collect();
    let appearing: Vec<usize> = (0..inst.domains.len())
        .filter(|&v| inst.rels.iter().any(|(vars, _)| vars.contains(&v)))
        .collect();

    let mut store = RelationStore::new();
    let mut base = Vec::new();
    for (i, (vars, rows)) in inst.rels.iter().enumerate() {
        let schema = Schema::new(vars.iter().map(|&v| var_ids[v]).collect()).ok()?;
        let rel = FunctionalRelation::from_rows(format!("r{i}"), schema, rows.clone()).ok()?;
        base.push(BaseRel::of(&rel));
        store.insert(rel);
    }
    // Group vars and predicates must reference appearing variables.
    let group_vars: Vec<VarId> = inst
        .group_vars
        .iter()
        .filter(|v| appearing.contains(v))
        .map(|&v| var_ids[v])
        .collect();
    let mut query = QuerySpec::group_by(group_vars);
    if let Some((v, c)) = inst.predicate {
        if appearing.contains(&v) && (c as u64) < inst.domains[v] {
            query = query.filter(var_ids[v], c);
        }
    }
    Some((cat, store, base, query, var_ids))
}

fn reference(
    store: &RelationStore,
    base: &[BaseRel],
    query: &QuerySpec,
    sr: SemiringKind,
) -> FunctionalRelation {
    let rels: Vec<&FunctionalRelation> = base
        .iter()
        .map(|b| store.relation_of(&b.name).unwrap())
        .collect();
    ops::naive_mpf(
        &mut mpf_algebra::ExecContext::new(sr),
        &rels,
        &query.predicates,
        &query.group_vars,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_match_naive(inst in instance_strategy(), seed in 0u64..1000) {
        let Some((cat, store, base, query, _)) = build(&inst) else { return Ok(()) };
        for sr in [SemiringKind::SumProduct, SemiringKind::MinProduct, SemiringKind::MaxSum] {
            let want = reference(&store, &base, &query, sr);
            let exec = Executor::new(&store, sr);
            let algorithms = [
                Algorithm::Cs,
                Algorithm::CsPlusLinear,
                Algorithm::CsPlusNonlinear,
                Algorithm::Ve(Heuristic::Degree),
                Algorithm::Ve(Heuristic::Width),
                Algorithm::Ve(Heuristic::ElimCost),
                Algorithm::Ve(Heuristic::DegreeWidth),
                Algorithm::Ve(Heuristic::DegreeElimCost),
                Algorithm::Ve(Heuristic::Random(seed)),
                Algorithm::VePlus(Heuristic::Degree),
                Algorithm::VePlus(Heuristic::Width),
                Algorithm::VePlus(Heuristic::Random(seed)),
            ];
            for algo in algorithms {
                for cm in [CostModel::Io, CostModel::Simple] {
                    let ctx = OptContext::new(&cat, base.clone(), query.clone(), cm);
                    let plan = optimize(&ctx, algo);
                    let (got, _) = exec.execute(&plan.plan).unwrap();
                    prop_assert!(
                        want.function_eq(&got),
                        "{} ({cm:?}, {sr:?}) diverged from naive\nplan:\n{}\nwant: {want}\ngot: {got}",
                        algo.label(),
                        plan.plan.render(&|v| format!("{v}")),
                    );
                }
            }
        }
    }
}
