//! The service loop: admission-gated request handling over any
//! line-oriented transport (TCP socket or stdin/stdout).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpf_engine::parser::{parse, Statement};
use mpf_engine::{Answer, Database, MetricsRegistry, QueryRequest, Scenario, ScenarioReport};

use crate::admission::{AdmissionController, Shed};
use crate::config::ServeConfig;
use crate::protocol::{encode_engine_err, encode_err, parse_scenario_line, Request};

/// A multi-tenant query server over one shared [`Database`].
///
/// All state is behind `Arc`s, so one `Server` can be driven from many
/// transport threads at once; the database's snapshot storage keeps
/// concurrent queries and `run_sql` updates consistent, and the
/// [`AdmissionController`] keeps their resource usage inside the
/// configured pool.
pub struct Server {
    db: Arc<Database>,
    config: ServeConfig,
    admission: Arc<AdmissionController>,
    metrics: Arc<MetricsRegistry>,
    draining: AtomicBool,
}

impl Server {
    /// Wrap a configured database. The server attaches its own
    /// [`MetricsRegistry`], so per-query engine metrics and the service
    /// counters land in one exportable registry.
    pub fn new(db: Database, config: ServeConfig) -> Arc<Server> {
        let metrics = Arc::new(MetricsRegistry::new());
        let db = db.with_metrics(Arc::clone(&metrics));
        let admission = AdmissionController::new(&config);
        Arc::new(Server {
            db: Arc::new(db),
            config,
            admission,
            metrics,
            draining: AtomicBool::new(false),
        })
    }

    /// The shared database (tests seed data through this).
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The combined service + engine metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The admission gate (for observability in tests).
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// Whether a `SHUTDOWN` has been received.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Handle one request line. Returns the response lines and whether
    /// this request asked the service to shut down.
    ///
    /// A `SCENARIOS` request needs its continuation lines and therefore a
    /// block-aware caller ([`Server::handle_block`]); arriving here alone
    /// it is answered with the count-mismatch protocol error.
    pub fn handle_line(&self, line: &str) -> (Vec<String>, bool) {
        self.handle_block(&[line.to_string()])
    }

    /// Handle one request block: a request line plus any continuation
    /// lines (`SCENARIO` lines of a `SCENARIOS <n>` request). Returns the
    /// response lines and whether the block asked the service to shut
    /// down.
    pub fn handle_block(&self, lines: &[String]) -> (Vec<String>, bool) {
        let Some(first) = lines.first() else {
            return (Vec::new(), false);
        };
        let req = match Request::parse(first) {
            Ok(req) => req,
            Err(err_line) => return (vec![err_line], false),
        };
        if lines.len() > 1 && !matches!(req, Request::ScenarioQuery { .. }) {
            let err = encode_err(
                "protocol",
                false,
                0,
                "this request form takes no continuation lines",
            );
            return (vec![err], false);
        }
        match req {
            Request::Ping => (vec!["PONG".to_string()], false),
            Request::Metrics => (
                vec![
                    "OK metrics".to_string(),
                    self.metrics.to_json(),
                    "END".to_string(),
                ],
                false,
            ),
            Request::Shutdown => {
                self.draining.store(true, Ordering::SeqCst);
                (vec!["BYE".to_string()], true)
            }
            Request::Query { tenant, sql } => (self.run_query(&tenant, &sql), false),
            Request::ScenarioQuery { tenant, sql, count } => {
                let given = lines.len() - 1;
                if given != count {
                    let err = encode_err(
                        "protocol",
                        false,
                        0,
                        &format!("SCENARIOS {count} expects {count} SCENARIO lines, got {given}"),
                    );
                    return (vec![err], false);
                }
                let mut scenarios = Vec::with_capacity(count);
                for line in &lines[1..] {
                    match parse_scenario_line(line) {
                        Ok(sc) => scenarios.push(sc),
                        Err(err_line) => return (vec![err_line], false),
                    }
                }
                (self.run_scenario_query(&tenant, &sql, scenarios), false)
            }
        }
    }

    fn run_query(&self, tenant: &str, sql: &str) -> Vec<String> {
        self.metrics.inc("serve.query");
        if self.draining() {
            self.metrics.inc("serve.err");
            return vec![encode_err(
                "shutting-down",
                false,
                0,
                "service is draining; no new queries",
            )];
        }
        let limits = self.config.limits_for(tenant).clone();
        let start = Instant::now();
        let grant = match self.admission.admit(
            tenant,
            limits.max_inflight,
            limits.cells_per_query,
            limits.threads_per_query,
        ) {
            Ok(grant) => grant,
            Err(shed) => {
                self.metrics.inc("serve.shed");
                return vec![shed_line(&shed)];
            }
        };
        let mut exec = grant.limits();
        if let Some(t) = limits.query_timeout {
            exec = exec.with_timeout(t);
        }
        let out = match parse(sql) {
            Ok(Statement::Select(q)) => self
                .db
                .run(QueryRequest::from(q).limits(exec))
                .map(|ans| self.encode_answer(&ans)),
            // DDL re-parses inside run_sql; the statement text is tiny
            // next to the catalog clone the mutation does anyway.
            Ok(Statement::CreateView { .. }) => self.db.run_sql(sql).map(|outcome| match outcome {
                mpf_engine::SqlOutcome::ViewCreated(name) => {
                    vec![format!("OK view={name}"), "END".to_string()]
                }
                mpf_engine::SqlOutcome::Answer(ans) => self.encode_answer(&ans),
            }),
            Err(e) => Err(e),
        };
        // The grant (pool lease + tenant share) is held across parse and
        // execution; release before encoding the response.
        drop(grant);
        self.metrics.observe("serve.latency", start.elapsed());
        match out {
            Ok(lines) => {
                self.metrics.inc("serve.ok");
                lines
            }
            Err(e) => {
                self.metrics.inc("serve.err");
                vec![encode_engine_err(&e)]
            }
        }
    }

    /// Run one query under a batch of scenarios. One admission grant
    /// covers the whole batch: the engine's scenario fan-out shares the
    /// grant's cell/thread budget across the shared trunk and every
    /// frontier, so a 100-scenario batch cannot out-consume 100 admitted
    /// singles.
    fn run_scenario_query(&self, tenant: &str, sql: &str, scenarios: Vec<Scenario>) -> Vec<String> {
        self.metrics.inc("serve.query");
        self.metrics.inc("serve.scenario_batch");
        if self.draining() {
            self.metrics.inc("serve.err");
            return vec![encode_err(
                "shutting-down",
                false,
                0,
                "service is draining; no new queries",
            )];
        }
        let limits = self.config.limits_for(tenant).clone();
        let start = Instant::now();
        let grant = match self.admission.admit(
            tenant,
            limits.max_inflight,
            limits.cells_per_query,
            limits.threads_per_query,
        ) {
            Ok(grant) => grant,
            Err(shed) => {
                self.metrics.inc("serve.shed");
                return vec![shed_line(&shed)];
            }
        };
        let mut exec = grant.limits();
        if let Some(t) = limits.query_timeout {
            exec = exec.with_timeout(t);
        }
        let out = match parse(sql) {
            Ok(Statement::Select(q)) => {
                let mut req = QueryRequest::from(q).limits(exec);
                for sc in scenarios {
                    req = req.scenario(sc);
                }
                self.db
                    .run_scenarios(req)
                    .map(|report| self.encode_scenario_report(&report))
            }
            Ok(Statement::CreateView { .. }) => {
                drop(grant);
                self.metrics.inc("serve.err");
                return vec![encode_err(
                    "protocol",
                    false,
                    0,
                    "SCENARIOS applies to select queries, not DDL",
                )];
            }
            Err(e) => Err(e),
        };
        drop(grant);
        self.metrics.observe("serve.latency", start.elapsed());
        match out {
            Ok(lines) => {
                self.metrics.inc("serve.ok");
                lines
            }
            Err(e) => {
                self.metrics.inc("serve.err");
                vec![encode_engine_err(&e)]
            }
        }
    }

    /// Frame a [`ScenarioReport`]: a batch header, per-scenario tagged
    /// rows, then one `DIVERGENT`/`INVARIANT` summary line per scenario —
    /// divergent ones first, ranked by their largest group shift.
    fn encode_scenario_report(&self, report: &ScenarioReport) -> Vec<String> {
        let catalog = self.db.catalog();
        let names: Vec<&str> = report
            .baseline
            .relation
            .schema()
            .iter()
            .map(|v| catalog.name(v))
            .collect();
        let total_rows: usize = report
            .outcomes
            .iter()
            .map(|o| o.answer.relation.len())
            .sum();
        let mut lines = Vec::with_capacity(total_rows + report.outcomes.len() + 2);
        lines.push(format!(
            "OK scenarios={} rows={total_rows} strategy={:?}",
            report.outcomes.len(),
            report.baseline.served_by
        ));
        for outcome in &report.outcomes {
            for (row, measure) in outcome.answer.relation.rows() {
                let mut line = format!("ROW scenario={}", outcome.name);
                for (name, value) in names.iter().zip(row) {
                    line.push_str(&format!(" {name}={value}"));
                }
                line.push_str(&format!(" m={measure}"));
                lines.push(line);
            }
        }
        for outcome in report.divergent() {
            lines.push(format!(
                "DIVERGENT scenario={} groups={} max_shift={}",
                outcome.name,
                outcome.divergence.moved(),
                outcome.divergence.max_shift()
            ));
        }
        for outcome in report.invariant() {
            lines.push(format!("INVARIANT scenario={}", outcome.name));
        }
        lines.push("END".to_string());
        lines
    }

    fn encode_answer(&self, ans: &Answer) -> Vec<String> {
        let catalog = self.db.catalog();
        let rel = &ans.relation;
        let names: Vec<&str> = rel.schema().iter().map(|v| catalog.name(v)).collect();
        let mut lines = Vec::with_capacity(rel.len() + 2);
        lines.push(format!(
            "OK rows={} strategy={:?}",
            rel.len(),
            ans.served_by
        ));
        for (row, measure) in rel.rows() {
            let mut line = String::from("ROW");
            for (name, value) in names.iter().zip(row) {
                line.push_str(&format!(" {name}={value}"));
            }
            line.push_str(&format!(" m={measure}"));
            lines.push(line);
        }
        lines.push("END".to_string());
        lines
    }

    /// Serve one line-oriented connection until EOF or `SHUTDOWN`.
    /// Returns whether the peer requested shutdown.
    pub fn serve_lines(&self, reader: impl BufRead, mut writer: impl Write) -> bool {
        let mut lines_iter = reader.lines();
        while let Some(line) = lines_iter.next() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            let mut block = vec![line];
            // A `SCENARIOS <n>` request owns its next `n` lines. On EOF
            // mid-block, handle_block reports the count mismatch as a
            // typed protocol error.
            if let Ok(Request::ScenarioQuery { count, .. }) = Request::parse(&block[0]) {
                for _ in 0..count {
                    match lines_iter.next() {
                        Some(Ok(l)) => block.push(l),
                        _ => break,
                    }
                }
            }
            let (out, shutdown) = self.handle_block(&block);
            for l in &out {
                if writeln!(writer, "{l}").is_err() {
                    return shutdown;
                }
            }
            if writer.flush().is_err() || shutdown {
                return shutdown;
            }
        }
        false
    }

    /// Accept TCP connections until `SHUTDOWN`, then drain: stop
    /// accepting, let in-flight connections finish, and return.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let open = Arc::new(AtomicUsize::new(0));
        loop {
            match listener.accept() {
                Ok((stream, _)) if !self.draining() => {
                    stream.set_nonblocking(false)?;
                    let server = Arc::clone(self);
                    let open = Arc::clone(&open);
                    open.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        server.serve_conn(stream);
                        open.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Ok((stream, _)) => {
                    // Draining: refuse new connections with a typed line.
                    let mut stream = stream;
                    let _ = writeln!(
                        stream,
                        "{}",
                        encode_err("shutting-down", false, 0, "service is draining")
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.draining() && open.load(Ordering::SeqCst) == 0 {
                        return Ok(());
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn serve_conn(&self, stream: TcpStream) {
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => return,
        };
        self.serve_lines(reader, stream);
    }
}

fn shed_line(shed: &Shed) -> String {
    encode_err(
        shed.reason.kind(),
        shed.retriable,
        shed.backoff_ms,
        &shed.to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TenantLimits;
    use mpf_semiring::Combine;
    use mpf_storage::{FunctionalRelation, Schema};

    fn seeded_server(config: ServeConfig) -> Arc<Server> {
        let db = Database::new();
        let a = db.add_var("a", 2).unwrap();
        let b = db.add_var("b", 2).unwrap();
        db.insert_relation(
            FunctionalRelation::complete("r1", Schema::new(vec![a, b]).unwrap(), &db.catalog(), |r| {
                (r[0] + 2 * r[1] + 1) as f64
            }),
        )
        .unwrap();
        db.create_view("v", &["r1"], Combine::Product).unwrap();
        Server::new(db, config)
    }

    #[test]
    fn query_streams_rows_and_end() {
        let server = seeded_server(ServeConfig::default());
        let (out, shutdown) = server.handle_line("QUERY t1 select a, sum(f) from v group by a");
        assert!(!shutdown);
        assert!(out[0].starts_with("OK rows=2 strategy="), "{out:?}");
        assert!(out.iter().any(|l| l.starts_with("ROW a=0 m=")), "{out:?}");
        assert_eq!(out.last().unwrap(), "END");
        assert_eq!(server.metrics().counter("serve.ok"), 1);
    }

    #[test]
    fn ddl_and_reads_share_the_service() {
        let server = seeded_server(ServeConfig::default());
        let (out, _) = server.handle_line(
            "QUERY t1 create mpfview v2 as (select a, b, measure = (* r1.f) from r1)",
        );
        assert_eq!(out, vec!["OK view=v2".to_string(), "END".to_string()]);
        let (out, _) = server.handle_line("QUERY t2 select b, sum(f) from v2 group by b");
        assert!(out[0].starts_with("OK rows=2"), "{out:?}");
    }

    #[test]
    fn tenant_cell_budget_trips_as_typed_wire_error() {
        let config = ServeConfig::default().with_tenant(
            "tiny",
            TenantLimits {
                cells_per_query: 1,
                ..TenantLimits::default()
            },
        );
        let server = seeded_server(config);
        let (out, _) = server.handle_line("QUERY tiny select a, sum(f) from v group by a");
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("ERR kind=budget-cells"), "{out:?}");
        assert!(out[0].contains("limit 1 cells"), "{out:?}");
        assert_eq!(server.metrics().counter("serve.err"), 1);
    }

    #[test]
    fn ping_metrics_and_shutdown_frames() {
        let server = seeded_server(ServeConfig::default());
        assert_eq!(server.handle_line("PING").0, vec!["PONG"]);
        let (m, _) = server.handle_line("METRICS");
        assert_eq!(m[0], "OK metrics");
        assert!(m[1].starts_with('{'), "{m:?}");
        let (bye, shutdown) = server.handle_line("SHUTDOWN");
        assert_eq!(bye, vec!["BYE"]);
        assert!(shutdown && server.draining());
        let (out, _) = server.handle_line("QUERY t1 select a, sum(f) from v group by a");
        assert!(out[0].starts_with("ERR kind=shutting-down"), "{out:?}");
    }

    #[test]
    fn scenario_batch_streams_tagged_rows_and_summaries() {
        let server = seeded_server(ServeConfig::default());
        let block = vec![
            "QUERY t1 select a, sum(f) from v group by a SCENARIOS 2".to_string(),
            "SCENARIO shock MEASURE r1 0,0 9".to_string(),
            "SCENARIO noop MEASURE r1 0,0 1".to_string(),
        ];
        let (out, shutdown) = server.handle_block(&block);
        assert!(!shutdown);
        assert!(out[0].starts_with("OK scenarios=2 rows=4 strategy="), "{out:?}");
        assert!(
            out.iter().any(|l| l.starts_with("ROW scenario=shock a=0 m=")),
            "{out:?}"
        );
        assert!(
            out.iter().any(|l| l.starts_with("ROW scenario=noop a=1 m=")),
            "{out:?}"
        );
        // r1(0,0) has measure 1, so `shock` moves group a=0 and `noop`
        // is bit-identical to the baseline.
        assert!(
            out.iter()
                .any(|l| l.starts_with("DIVERGENT scenario=shock groups=1 max_shift=")),
            "{out:?}"
        );
        assert!(out.contains(&"INVARIANT scenario=noop".to_string()), "{out:?}");
        assert_eq!(out.last().unwrap(), "END");
        assert_eq!(server.metrics().counter("serve.scenario_batch"), 1);
        assert_eq!(server.metrics().counter("serve.ok"), 1);
    }

    #[test]
    fn scenario_batch_defects_are_typed_protocol_errors() {
        let server = seeded_server(ServeConfig::default());
        // Count mismatch: the request line alone.
        let (out, _) =
            server.handle_line("QUERY t1 select a, sum(f) from v group by a SCENARIOS 2");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("expects 2 SCENARIO lines, got 0"), "{out:?}");
        // A malformed scenario line fails the whole batch.
        let block = vec![
            "QUERY t1 select a, sum(f) from v group by a SCENARIOS 1".to_string(),
            "SCENARIO s MEASURE r1 0,zero 9".to_string(),
        ];
        let (out, _) = server.handle_block(&block);
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("ERR kind=protocol"), "{out:?}");
        // Continuation lines on a non-scenario request are rejected.
        let block = vec!["PING".to_string(), "SCENARIO s".to_string()];
        let (out, _) = server.handle_block(&block);
        assert!(out[0].contains("takes no continuation lines"), "{out:?}");
        // DDL cannot carry scenarios.
        let block = vec![
            "QUERY t1 create mpfview v3 as (select a, b, measure = (* r1.f) from r1) SCENARIOS 1"
                .to_string(),
            "SCENARIO s".to_string(),
        ];
        let (out, _) = server.handle_block(&block);
        assert!(out[0].contains("SCENARIOS applies to select queries"), "{out:?}");
    }

    #[test]
    fn serve_lines_slurps_scenario_blocks() {
        let server = seeded_server(ServeConfig::default());
        let input = b"QUERY t1 select a, sum(f) from v group by a SCENARIOS 1\n\
                      SCENARIO shock MEASURE r1 0,0 9\n\
                      PING\nSHUTDOWN\n" as &[u8];
        let mut out = Vec::new();
        let shutdown = server.serve_lines(input, &mut out);
        assert!(shutdown);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("OK scenarios=1"), "{text}");
        assert!(text.contains("ROW scenario=shock"), "{text}");
        // The SCENARIO line was consumed by the block, not re-parsed as a
        // request; PING still answers.
        assert!(text.contains("\nPONG\n"), "{text}");
        assert!(text.trim_end().ends_with("BYE"), "{text}");
    }

    #[test]
    fn serve_lines_round_trips_a_session() {
        let server = seeded_server(ServeConfig::default());
        let input = b"PING\nQUERY t1 select a, sum(f) from v group by a\nSHUTDOWN\n" as &[u8];
        let mut out = Vec::new();
        let shutdown = server.serve_lines(input, &mut out);
        assert!(shutdown);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("PONG\nOK rows=2"), "{text}");
        assert!(text.trim_end().ends_with("BYE"), "{text}");
    }
}
