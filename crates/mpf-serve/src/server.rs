//! The service loop: admission-gated request handling over any
//! line-oriented transport (TCP socket or stdin/stdout).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpf_engine::parser::{parse, Statement};
use mpf_engine::{Answer, Database, MetricsRegistry, QueryRequest};

use crate::admission::{AdmissionController, Shed};
use crate::config::ServeConfig;
use crate::protocol::{encode_engine_err, encode_err, Request};

/// A multi-tenant query server over one shared [`Database`].
///
/// All state is behind `Arc`s, so one `Server` can be driven from many
/// transport threads at once; the database's snapshot storage keeps
/// concurrent queries and `run_sql` updates consistent, and the
/// [`AdmissionController`] keeps their resource usage inside the
/// configured pool.
pub struct Server {
    db: Arc<Database>,
    config: ServeConfig,
    admission: Arc<AdmissionController>,
    metrics: Arc<MetricsRegistry>,
    draining: AtomicBool,
}

impl Server {
    /// Wrap a configured database. The server attaches its own
    /// [`MetricsRegistry`], so per-query engine metrics and the service
    /// counters land in one exportable registry.
    pub fn new(db: Database, config: ServeConfig) -> Arc<Server> {
        let metrics = Arc::new(MetricsRegistry::new());
        let db = db.with_metrics(Arc::clone(&metrics));
        let admission = AdmissionController::new(&config);
        Arc::new(Server {
            db: Arc::new(db),
            config,
            admission,
            metrics,
            draining: AtomicBool::new(false),
        })
    }

    /// The shared database (tests seed data through this).
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The combined service + engine metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The admission gate (for observability in tests).
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// Whether a `SHUTDOWN` has been received.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Handle one request line. Returns the response lines and whether
    /// this request asked the service to shut down.
    pub fn handle_line(&self, line: &str) -> (Vec<String>, bool) {
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err(err_line) => return (vec![err_line], false),
        };
        match req {
            Request::Ping => (vec!["PONG".to_string()], false),
            Request::Metrics => (
                vec![
                    "OK metrics".to_string(),
                    self.metrics.to_json(),
                    "END".to_string(),
                ],
                false,
            ),
            Request::Shutdown => {
                self.draining.store(true, Ordering::SeqCst);
                (vec!["BYE".to_string()], true)
            }
            Request::Query { tenant, sql } => (self.run_query(&tenant, &sql), false),
        }
    }

    fn run_query(&self, tenant: &str, sql: &str) -> Vec<String> {
        self.metrics.inc("serve.query");
        if self.draining() {
            self.metrics.inc("serve.err");
            return vec![encode_err(
                "shutting-down",
                false,
                0,
                "service is draining; no new queries",
            )];
        }
        let limits = self.config.limits_for(tenant).clone();
        let start = Instant::now();
        let grant = match self.admission.admit(
            tenant,
            limits.max_inflight,
            limits.cells_per_query,
            limits.threads_per_query,
        ) {
            Ok(grant) => grant,
            Err(shed) => {
                self.metrics.inc("serve.shed");
                return vec![shed_line(&shed)];
            }
        };
        let mut exec = grant.limits();
        if let Some(t) = limits.query_timeout {
            exec = exec.with_timeout(t);
        }
        let out = match parse(sql) {
            Ok(Statement::Select(q)) => self
                .db
                .run(QueryRequest::from(q).limits(exec))
                .map(|ans| self.encode_answer(&ans)),
            // DDL re-parses inside run_sql; the statement text is tiny
            // next to the catalog clone the mutation does anyway.
            Ok(Statement::CreateView { .. }) => self.db.run_sql(sql).map(|outcome| match outcome {
                mpf_engine::SqlOutcome::ViewCreated(name) => {
                    vec![format!("OK view={name}"), "END".to_string()]
                }
                mpf_engine::SqlOutcome::Answer(ans) => self.encode_answer(&ans),
            }),
            Err(e) => Err(e),
        };
        // The grant (pool lease + tenant share) is held across parse and
        // execution; release before encoding the response.
        drop(grant);
        self.metrics.observe("serve.latency", start.elapsed());
        match out {
            Ok(lines) => {
                self.metrics.inc("serve.ok");
                lines
            }
            Err(e) => {
                self.metrics.inc("serve.err");
                vec![encode_engine_err(&e)]
            }
        }
    }

    fn encode_answer(&self, ans: &Answer) -> Vec<String> {
        let catalog = self.db.catalog();
        let rel = &ans.relation;
        let names: Vec<&str> = rel.schema().iter().map(|v| catalog.name(v)).collect();
        let mut lines = Vec::with_capacity(rel.len() + 2);
        lines.push(format!(
            "OK rows={} strategy={:?}",
            rel.len(),
            ans.served_by
        ));
        for (row, measure) in rel.rows() {
            let mut line = String::from("ROW");
            for (name, value) in names.iter().zip(row) {
                line.push_str(&format!(" {name}={value}"));
            }
            line.push_str(&format!(" m={measure}"));
            lines.push(line);
        }
        lines.push("END".to_string());
        lines
    }

    /// Serve one line-oriented connection until EOF or `SHUTDOWN`.
    /// Returns whether the peer requested shutdown.
    pub fn serve_lines(&self, reader: impl BufRead, mut writer: impl Write) -> bool {
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            let (out, shutdown) = self.handle_line(&line);
            for l in &out {
                if writeln!(writer, "{l}").is_err() {
                    return shutdown;
                }
            }
            if writer.flush().is_err() || shutdown {
                return shutdown;
            }
        }
        false
    }

    /// Accept TCP connections until `SHUTDOWN`, then drain: stop
    /// accepting, let in-flight connections finish, and return.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let open = Arc::new(AtomicUsize::new(0));
        loop {
            match listener.accept() {
                Ok((stream, _)) if !self.draining() => {
                    stream.set_nonblocking(false)?;
                    let server = Arc::clone(self);
                    let open = Arc::clone(&open);
                    open.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        server.serve_conn(stream);
                        open.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Ok((stream, _)) => {
                    // Draining: refuse new connections with a typed line.
                    let mut stream = stream;
                    let _ = writeln!(
                        stream,
                        "{}",
                        encode_err("shutting-down", false, 0, "service is draining")
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.draining() && open.load(Ordering::SeqCst) == 0 {
                        return Ok(());
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn serve_conn(&self, stream: TcpStream) {
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => return,
        };
        self.serve_lines(reader, stream);
    }
}

fn shed_line(shed: &Shed) -> String {
    encode_err(
        shed.reason.kind(),
        shed.retriable,
        shed.backoff_ms,
        &shed.to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TenantLimits;
    use mpf_semiring::Combine;
    use mpf_storage::{FunctionalRelation, Schema};

    fn seeded_server(config: ServeConfig) -> Arc<Server> {
        let db = Database::new();
        let a = db.add_var("a", 2).unwrap();
        let b = db.add_var("b", 2).unwrap();
        db.insert_relation(
            FunctionalRelation::complete("r1", Schema::new(vec![a, b]).unwrap(), &db.catalog(), |r| {
                (r[0] + 2 * r[1] + 1) as f64
            }),
        )
        .unwrap();
        db.create_view("v", &["r1"], Combine::Product).unwrap();
        Server::new(db, config)
    }

    #[test]
    fn query_streams_rows_and_end() {
        let server = seeded_server(ServeConfig::default());
        let (out, shutdown) = server.handle_line("QUERY t1 select a, sum(f) from v group by a");
        assert!(!shutdown);
        assert!(out[0].starts_with("OK rows=2 strategy="), "{out:?}");
        assert!(out.iter().any(|l| l.starts_with("ROW a=0 m=")), "{out:?}");
        assert_eq!(out.last().unwrap(), "END");
        assert_eq!(server.metrics().counter("serve.ok"), 1);
    }

    #[test]
    fn ddl_and_reads_share_the_service() {
        let server = seeded_server(ServeConfig::default());
        let (out, _) = server.handle_line(
            "QUERY t1 create mpfview v2 as (select a, b, measure = (* r1.f) from r1)",
        );
        assert_eq!(out, vec!["OK view=v2".to_string(), "END".to_string()]);
        let (out, _) = server.handle_line("QUERY t2 select b, sum(f) from v2 group by b");
        assert!(out[0].starts_with("OK rows=2"), "{out:?}");
    }

    #[test]
    fn tenant_cell_budget_trips_as_typed_wire_error() {
        let config = ServeConfig::default().with_tenant(
            "tiny",
            TenantLimits {
                cells_per_query: 1,
                ..TenantLimits::default()
            },
        );
        let server = seeded_server(config);
        let (out, _) = server.handle_line("QUERY tiny select a, sum(f) from v group by a");
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("ERR kind=budget-cells"), "{out:?}");
        assert!(out[0].contains("limit 1 cells"), "{out:?}");
        assert_eq!(server.metrics().counter("serve.err"), 1);
    }

    #[test]
    fn ping_metrics_and_shutdown_frames() {
        let server = seeded_server(ServeConfig::default());
        assert_eq!(server.handle_line("PING").0, vec!["PONG"]);
        let (m, _) = server.handle_line("METRICS");
        assert_eq!(m[0], "OK metrics");
        assert!(m[1].starts_with('{'), "{m:?}");
        let (bye, shutdown) = server.handle_line("SHUTDOWN");
        assert_eq!(bye, vec!["BYE"]);
        assert!(shutdown && server.draining());
        let (out, _) = server.handle_line("QUERY t1 select a, sum(f) from v group by a");
        assert!(out[0].starts_with("ERR kind=shutting-down"), "{out:?}");
    }

    #[test]
    fn serve_lines_round_trips_a_session() {
        let server = seeded_server(ServeConfig::default());
        let input = b"PING\nQUERY t1 select a, sum(f) from v group by a\nSHUTDOWN\n" as &[u8];
        let mut out = Vec::new();
        let shutdown = server.serve_lines(input, &mut out);
        assert!(shutdown);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("PONG\nOK rows=2"), "{text}");
        assert!(text.trim_end().ends_with("BYE"), "{text}");
    }
}
