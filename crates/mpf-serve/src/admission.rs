//! Admission control: a bounded wait queue in front of the global
//! [`BudgetPool`], with per-tenant in-flight shares and typed sheds.
//!
//! Every query asks the [`AdmissionController`] for an
//! [`AdmissionGrant`] before touching the database. Admission succeeds
//! when (a) the tenant is under its `max_inflight` share and (b) the
//! pool can lease the tenant's per-query cell and thread grant. When
//! either check fails the request *queues*: it waits on a condvar,
//! re-trying as earlier grants drop, until the configured
//! `queue_deadline` expires. The queue itself is bounded — when
//! `queue_depth` requests are already waiting, new arrivals are shed
//! immediately with a retriable rejection and a backoff hint, so
//! overload degrades into fast typed errors instead of unbounded
//! latency.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpf_algebra::{BudgetLease, BudgetPool, ExecLimits};

use crate::config::ServeConfig;

/// Why a request was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The wait queue already held `queue_depth` requests.
    QueueFull,
    /// The request waited `queue_deadline` without a grant freeing up.
    DeadlineExpired,
}

impl ShedReason {
    /// Stable protocol token for this reason.
    pub fn kind(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::DeadlineExpired => "admission-deadline",
        }
    }
}

/// A typed admission rejection: always retriable, with a backoff hint
/// proportional to the observed contention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shed {
    /// Which admission check failed.
    pub reason: ShedReason,
    /// Whether retrying can succeed (always true — sheds are a load
    /// signal, not a request defect).
    pub retriable: bool,
    /// Suggested client backoff before retrying.
    pub backoff_ms: u64,
}

impl std::fmt::Display for Shed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            ShedReason::QueueFull => write!(
                f,
                "admission queue full; retry after {} ms",
                self.backoff_ms
            ),
            ShedReason::DeadlineExpired => write!(
                f,
                "no capacity within the admission deadline; retry after {} ms",
                self.backoff_ms
            ),
        }
    }
}

#[derive(Debug, Default)]
struct AdmissionState {
    /// Requests currently waiting for a grant.
    queued: usize,
    /// Admitted-but-unfinished queries per tenant.
    inflight: HashMap<String, usize>,
}

/// The service's admission gate. Cheap to share (`Arc`); one per server.
#[derive(Debug)]
pub struct AdmissionController {
    pool: Arc<BudgetPool>,
    queue_depth: usize,
    queue_deadline: Duration,
    state: Mutex<AdmissionState>,
    freed: Condvar,
}

impl AdmissionController {
    /// Build the gate from the service configuration.
    pub fn new(config: &ServeConfig) -> Arc<AdmissionController> {
        Arc::new(AdmissionController {
            pool: BudgetPool::new(config.pool_cells, config.pool_threads),
            queue_depth: config.queue_depth,
            queue_deadline: config.queue_deadline,
            state: Mutex::new(AdmissionState::default()),
            freed: Condvar::new(),
        })
    }

    /// The shared pool (for observability / tests).
    pub fn pool(&self) -> &Arc<BudgetPool> {
        &self.pool
    }

    /// Requests currently waiting for admission.
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).queued
    }

    /// Admitted-but-unfinished queries across all tenants.
    pub fn inflight(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .inflight
            .values()
            .sum()
    }

    /// Admit a query for `tenant`, blocking in the bounded queue for at
    /// most the configured deadline.
    ///
    /// `max_inflight` is the tenant's concurrent-query share;
    /// `cells`/`threads` the per-query grant leased from the pool.
    pub fn admit(
        self: &Arc<Self>,
        tenant: &str,
        max_inflight: usize,
        cells: u64,
        threads: usize,
    ) -> Result<AdmissionGrant, Shed> {
        let deadline = Instant::now() + self.queue_deadline;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut waiting = false;
        loop {
            let under_share = state.inflight.get(tenant).copied().unwrap_or(0) < max_inflight;
            if under_share {
                // Tenant share is free — try the global pool while still
                // holding the state lock so a concurrent admit cannot
                // double-spend the share.
                if let Ok(lease) = self.pool.try_lease(cells, threads) {
                    *state.inflight.entry(tenant.to_string()).or_insert(0) += 1;
                    if waiting {
                        state.queued -= 1;
                    }
                    return Ok(AdmissionGrant {
                        controller: Arc::clone(self),
                        tenant: tenant.to_string(),
                        lease: Some(lease),
                    });
                }
            }
            if !waiting {
                if state.queued >= self.queue_depth {
                    return Err(self.shed(ShedReason::QueueFull, state.queued));
                }
                state.queued += 1;
                waiting = true;
            }
            let now = Instant::now();
            if now >= deadline {
                let queued = state.queued;
                state.queued -= 1;
                return Err(self.shed(ShedReason::DeadlineExpired, queued));
            }
            let (next, _timeout) = self
                .freed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }

    fn shed(&self, reason: ShedReason, queued: usize) -> Shed {
        // Backoff scales with how deep the queue was when we gave up:
        // heavier contention, longer suggested wait.
        let backoff_ms = 25 * (queued as u64 + 1);
        Shed {
            reason,
            retriable: true,
            backoff_ms,
        }
    }

    /// Called by [`AdmissionGrant::drop`]: return the share and wake
    /// queued waiters.
    fn release(&self, tenant: &str) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(n) = state.inflight.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                state.inflight.remove(tenant);
            }
        }
        drop(state);
        self.freed.notify_all();
    }
}

/// RAII admission token: holds the tenant's in-flight slot and the pool
/// lease for one query; dropping it returns both and wakes the queue.
#[derive(Debug)]
pub struct AdmissionGrant {
    controller: Arc<AdmissionController>,
    tenant: String,
    lease: Option<BudgetLease>,
}

impl AdmissionGrant {
    /// Execution limits mirroring the pool grant (cells + threads).
    pub fn limits(&self) -> ExecLimits {
        self.lease
            .as_ref()
            .expect("lease held until drop")
            .limits()
    }

    /// The tenant this grant admits.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

impl Drop for AdmissionGrant {
    fn drop(&mut self) {
        // Return the pool lease first so a woken waiter's try_lease sees
        // the freed capacity.
        drop(self.lease.take());
        self.controller.release(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ServeConfig, TenantLimits};
    use std::thread;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            pool_cells: 1000,
            pool_threads: 2,
            queue_depth: 1,
            queue_deadline: Duration::from_millis(50),
            default_tenant: TenantLimits::default(),
            tenants: HashMap::new(),
        }
    }

    #[test]
    fn grant_returns_share_and_lease_on_drop() {
        let ctl = AdmissionController::new(&tiny_config());
        let g = ctl.admit("t1", 1, 100, 1).expect("admit");
        assert_eq!(ctl.inflight(), 1);
        assert_eq!(g.tenant(), "t1");
        drop(g);
        assert_eq!(ctl.inflight(), 0);
        // The lease went back too: the whole pool is leasable again.
        let full = ctl.pool().try_lease(1000, 2).expect("pool drained back");
        drop(full);
    }

    #[test]
    fn tenant_share_blocks_before_pool_does() {
        let ctl = AdmissionController::new(&tiny_config());
        let _g = ctl.admit("t1", 1, 100, 1).expect("first");
        // Pool has capacity left (cells 900, threads 1) but the tenant's
        // share of 1 is spent: the second admit sheds on deadline.
        let shed = ctl.admit("t1", 1, 100, 1).expect_err("over share");
        assert_eq!(shed.reason, ShedReason::DeadlineExpired);
        assert!(shed.retriable);
        // A different tenant still gets in.
        let _g2 = ctl.admit("t2", 1, 100, 1).expect("other tenant");
    }

    #[test]
    fn full_queue_sheds_immediately_with_backoff() {
        let cfg = ServeConfig {
            queue_depth: 0,
            ..tiny_config()
        };
        let ctl = AdmissionController::new(&cfg);
        let _g1 = ctl.admit("t1", 8, 100, 1).expect("1");
        let _g2 = ctl.admit("t1", 8, 100, 1).expect("2");
        // Pool threads exhausted and the queue admits no waiters: the
        // shed is immediate (QueueFull), not a deadline wait.
        let t0 = Instant::now();
        let shed = ctl.admit("t1", 8, 100, 1).expect_err("queue full");
        assert_eq!(shed.reason, ShedReason::QueueFull);
        assert!(shed.retriable && shed.backoff_ms > 0);
        assert!(t0.elapsed() < Duration::from_millis(40));
    }

    #[test]
    fn queued_request_admits_when_a_grant_frees() {
        let cfg = ServeConfig {
            queue_deadline: Duration::from_secs(5),
            ..tiny_config()
        };
        let ctl = AdmissionController::new(&cfg);
        let g = ctl.admit("t1", 8, 100, 2).expect("hold both threads");
        let ctl2 = Arc::clone(&ctl);
        let waiter = thread::spawn(move || ctl2.admit("t2", 8, 100, 1).map(drop));
        // Give the waiter time to enqueue, then free capacity.
        thread::sleep(Duration::from_millis(30));
        drop(g);
        waiter
            .join()
            .expect("no panic")
            .expect("admitted after free");
        assert_eq!(ctl.inflight(), 0);
    }
}
