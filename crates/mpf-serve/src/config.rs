//! Service configuration: the global resource pool and per-tenant shares.
//!
//! Budgets are expressed in the engine's own units (cells, worker
//! threads) so a tenant's grant maps one-to-one onto the
//! [`ExecLimits`](mpf_algebra::ExecLimits) its queries run under.

use std::collections::HashMap;
use std::time::Duration;

/// Per-tenant admission shares and per-query grants.
///
/// A tenant's queries are admitted while it holds fewer than
/// `max_inflight` grants; each admitted query leases `cells_per_query`
/// cells and `threads_per_query` worker threads from the global
/// [`BudgetPool`](mpf_algebra::BudgetPool) and runs under an
/// [`ExecLimits`](mpf_algebra::ExecLimits) mirroring that grant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantLimits {
    /// Concurrent admitted queries for this tenant.
    pub max_inflight: usize,
    /// Cell budget leased from the pool per admitted query.
    pub cells_per_query: u64,
    /// Worker threads leased from the pool per admitted query.
    pub threads_per_query: usize,
    /// Per-query wall-clock deadline (applied as an execution timeout).
    pub query_timeout: Option<Duration>,
}

impl Default for TenantLimits {
    fn default() -> TenantLimits {
        TenantLimits {
            max_inflight: 2,
            cells_per_query: 1 << 20,
            threads_per_query: 1,
            query_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// Whole-service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total cell budget shared by every tenant.
    pub pool_cells: u64,
    /// Total worker threads shared by every tenant.
    pub pool_threads: usize,
    /// Requests allowed to wait for a grant before new arrivals are shed.
    pub queue_depth: usize,
    /// How long a queued request may wait for admission before it is shed
    /// with a deadline rejection.
    pub queue_deadline: Duration,
    /// Limits applied to tenants without an explicit entry.
    pub default_tenant: TenantLimits,
    /// Explicit per-tenant overrides, keyed by tenant name.
    pub tenants: HashMap<String, TenantLimits>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            pool_cells: 8 << 20,
            pool_threads: 8,
            queue_depth: 32,
            queue_deadline: Duration::from_millis(500),
            default_tenant: TenantLimits::default(),
            tenants: HashMap::new(),
        }
    }
}

impl ServeConfig {
    /// The limits governing `tenant` (explicit entry or the default).
    pub fn limits_for(&self, tenant: &str) -> &TenantLimits {
        self.tenants.get(tenant).unwrap_or(&self.default_tenant)
    }

    /// Register explicit limits for one tenant (builder style).
    pub fn with_tenant(mut self, name: impl Into<String>, limits: TenantLimits) -> ServeConfig {
        self.tenants.insert(name.into(), limits);
        self
    }
}
