#![warn(missing_docs)]
//! Multi-tenant serving layer for the MPF engine.
//!
//! The `mpf_serve` binary (and the embeddable [`Server`]) exposes one
//! shared [`mpf_engine::Database`] to many concurrent tenants over a
//! line-oriented textual protocol ([`protocol`]), with:
//!
//! * **snapshot-consistent concurrency** — the engine's MVCC-lite
//!   catalog lets queries and `run_sql` mutations interleave freely;
//!   every query sees one immutable snapshot for its whole lifetime;
//! * **admission control** ([`AdmissionController`]) — a global
//!   [`mpf_algebra::BudgetPool`] of cells and worker threads, divided
//!   into per-tenant shares ([`TenantLimits`]); requests beyond capacity
//!   wait in a bounded queue with a deadline, and overload sheds as
//!   typed, retriable errors with backoff hints instead of unbounded
//!   latency;
//! * **graceful degradation** — in-flight budget trips surface as
//!   enriched `ERR budget-*` lines (after falling down the database's
//!   [`mpf_engine::FallbackPolicy`] chain), and `SHUTDOWN` drains
//!   in-flight work before exit.

mod admission;
mod config;
pub mod protocol;
mod server;

pub use admission::{AdmissionController, AdmissionGrant, Shed, ShedReason};
pub use config::{ServeConfig, TenantLimits};
pub use server::Server;
