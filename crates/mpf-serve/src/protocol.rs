//! The textual line protocol `mpf_serve` speaks.
//!
//! One request per line, one framed response per request. Requests:
//!
//! ```text
//! QUERY <tenant> <sql statement>
//! QUERY <tenant> <sql statement> SCENARIOS <n>
//! METRICS
//! PING
//! SHUTDOWN
//! ```
//!
//! The `SCENARIOS <n>` form is a multi-line request: exactly `n`
//! continuation lines follow, one scenario each —
//!
//! ```text
//! SCENARIO <name> [MEASURE <rel> <v1,v2,..> <measure>]
//!                 [MOVE <rel> <var> <from> <to>]
//!                 [EVIDENCE <var> <value>] ...
//! ```
//!
//! clauses repeat freely and compose in order (the engine's
//! [`mpf_engine::Scenario`] builder semantics). Malformed scenario lines
//! are typed `ERR kind=protocol` frames, never partial batches.
//!
//! Responses:
//!
//! * a query answer streams as `OK rows=<n> strategy=<name>`, then one
//!   `ROW <var>=<value> ... m=<measure>` line per answer row, then `END`;
//! * a scenario batch streams as `OK scenarios=<n> rows=<total>
//!   strategy=<name>`, then per-scenario `ROW scenario=<name>
//!   <var>=<value> ... m=<measure>` lines, then one summary line per
//!   scenario — `INVARIANT scenario=<name>` when the answer is
//!   bit-identical to the baseline, else `DIVERGENT scenario=<name>
//!   groups=<moved> max_shift=<shift>` — then `END`;
//! * a DDL statement answers `OK view=<name>` then `END`;
//! * `METRICS` answers `OK metrics` + one JSON line + `END`;
//! * `PING` answers `PONG`; `SHUTDOWN` answers `BYE` and starts a drain;
//! * every failure is a single typed line
//!   `ERR kind=<kind> retriable=<bool> backoff_ms=<n> msg="<text>"` —
//!   `retriable=true` with a non-zero backoff marks load sheds a client
//!   should retry after the hinted delay; `retriable=false` marks
//!   request defects retries cannot cure.

use mpf_algebra::{AlgebraError, ResourceKind};
use mpf_engine::{EngineError, Scenario};
use mpf_storage::Value;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one SQL statement for a tenant.
    Query {
        /// Tenant the statement is billed to.
        tenant: String,
        /// The SQL extension statement, verbatim.
        sql: String,
    },
    /// Run one SQL query under a batch of what-if scenarios; exactly
    /// `count` `SCENARIO` continuation lines follow this request line.
    ScenarioQuery {
        /// Tenant the batch is billed to (one admission grant covers
        /// the whole batch).
        tenant: String,
        /// The SQL extension statement, verbatim.
        sql: String,
        /// Number of `SCENARIO` continuation lines.
        count: usize,
    },
    /// Export the service metrics registry as JSON.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Stop accepting work, drain in-flight queries, exit.
    Shutdown,
}

/// Most scenarios a single `SCENARIOS <n>` request may carry — a
/// protocol-level sanity bound, far above any sensible batch but low
/// enough that a typo'd count cannot stall a connection slurping
/// continuation lines.
pub const MAX_WIRE_SCENARIOS: usize = 10_000;

impl Request {
    /// Parse one protocol line. Returns a typed protocol error string
    /// (already `ERR`-encoded) for malformed lines.
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("QUERY ") {
            let mut parts = rest.trim().splitn(2, char::is_whitespace);
            let tenant = parts.next().unwrap_or("").to_string();
            let mut sql = parts.next().unwrap_or("").trim().to_string();
            if tenant.is_empty() || sql.is_empty() {
                return Err(encode_err(
                    "protocol",
                    false,
                    0,
                    "QUERY needs a tenant and a statement: QUERY <tenant> <sql>",
                ));
            }
            // A trailing ` SCENARIOS <n>` suffix turns the line into the
            // multi-line batch form. `rsplit_once` keeps any `scenarios`
            // occurring inside the SQL text out of the suffix parse.
            if let Some((head, tail)) = sql.rsplit_once(" SCENARIOS ") {
                if let Ok(count) = tail.trim().parse::<usize>() {
                    if count > MAX_WIRE_SCENARIOS {
                        return Err(encode_err(
                            "protocol",
                            false,
                            0,
                            &format!(
                                "SCENARIOS count {count} exceeds the wire limit {MAX_WIRE_SCENARIOS}"
                            ),
                        ));
                    }
                    sql = head.trim().to_string();
                    if sql.is_empty() {
                        return Err(encode_err(
                            "protocol",
                            false,
                            0,
                            "QUERY needs a statement before the SCENARIOS suffix",
                        ));
                    }
                    return Ok(Request::ScenarioQuery { tenant, sql, count });
                }
            }
            return Ok(Request::Query { tenant, sql });
        }
        match line {
            "METRICS" => Ok(Request::Metrics),
            "PING" => Ok(Request::Ping),
            "SHUTDOWN" => Ok(Request::Shutdown),
            _ => Err(encode_err(
                "protocol",
                false,
                0,
                &format!("unrecognized request `{}`", first_word(line)),
            )),
        }
    }
}

fn first_word(line: &str) -> &str {
    line.split_whitespace().next().unwrap_or("")
}

/// Parse one `SCENARIO` continuation line into an engine [`Scenario`].
///
/// Grammar (tokens are whitespace-separated, clauses repeat freely):
///
/// ```text
/// SCENARIO <name> [MEASURE <rel> <v1,v2,..> <measure>]
///                 [MOVE <rel> <var> <from> <to>]
///                 [EVIDENCE <var> <value>] ...
/// ```
///
/// Any defect — a missing clause argument, a non-numeric value, an
/// unknown clause keyword — is a typed `ERR kind=protocol` string, so
/// malformed batches fail whole rather than executing partially.
pub fn parse_scenario_line(line: &str) -> Result<Scenario, String> {
    let bad = |msg: &str| encode_err("protocol", false, 0, msg);
    let mut toks = line.split_whitespace();
    if toks.next() != Some("SCENARIO") {
        return Err(bad(&format!(
            "expected a SCENARIO line, got `{}`",
            first_word(line)
        )));
    }
    let name = toks
        .next()
        .ok_or_else(|| bad("SCENARIO needs a name: SCENARIO <name> [clauses..]"))?;
    let mut sc = Scenario::named(name);
    while let Some(clause) = toks.next() {
        match clause {
            "MEASURE" => {
                let rel = toks
                    .next()
                    .ok_or_else(|| bad("MEASURE needs: MEASURE <rel> <v1,v2,..> <measure>"))?;
                let row_txt = toks
                    .next()
                    .ok_or_else(|| bad("MEASURE needs a row: MEASURE <rel> <v1,v2,..> <measure>"))?;
                let row: Vec<Value> = row_txt
                    .split(',')
                    .map(|v| v.trim().parse::<Value>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| {
                        bad(&format!("MEASURE row `{row_txt}` is not a comma list of values"))
                    })?;
                let m_txt = toks
                    .next()
                    .ok_or_else(|| bad("MEASURE needs a measure value"))?;
                let measure: f64 = m_txt
                    .parse()
                    .map_err(|_| bad(&format!("MEASURE value `{m_txt}` is not a number")))?;
                sc = sc.measure(rel, row, measure);
            }
            "MOVE" => {
                let rel = toks
                    .next()
                    .ok_or_else(|| bad("MOVE needs: MOVE <rel> <var> <from> <to>"))?
                    .to_string();
                let var = toks
                    .next()
                    .ok_or_else(|| bad("MOVE needs a variable: MOVE <rel> <var> <from> <to>"))?
                    .to_string();
                let from = parse_value(toks.next(), "MOVE <from>")?;
                let to = parse_value(toks.next(), "MOVE <to>")?;
                sc = sc.move_domain(rel, var, from, to);
            }
            "EVIDENCE" => {
                let var = toks
                    .next()
                    .ok_or_else(|| bad("EVIDENCE needs: EVIDENCE <var> <value>"))?
                    .to_string();
                let value = parse_value(toks.next(), "EVIDENCE <value>")?;
                sc = sc.evidence(var, value);
            }
            other => {
                return Err(bad(&format!(
                    "unknown scenario clause `{other}` (expected MEASURE, MOVE, or EVIDENCE)"
                )))
            }
        }
    }
    Ok(sc)
}

fn parse_value(tok: Option<&str>, what: &str) -> Result<Value, String> {
    let txt = tok.ok_or_else(|| encode_err("protocol", false, 0, &format!("{what} is missing")))?;
    txt.parse().map_err(|_| {
        encode_err(
            "protocol",
            false,
            0,
            &format!("{what} `{txt}` is not a domain value"),
        )
    })
}

/// Encode a typed error line. `msg` is quoted; inner quotes and
/// newlines are replaced so the frame stays one line.
pub fn encode_err(kind: &str, retriable: bool, backoff_ms: u64, msg: &str) -> String {
    let clean: String = msg
        .chars()
        .map(|c| match c {
            '"' => '\'',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect();
    format!("ERR kind={kind} retriable={retriable} backoff_ms={backoff_ms} msg=\"{clean}\"")
}

/// Map an engine failure to its wire `kind` and retriability.
///
/// Budget trips name the budget that tripped (the enriched
/// [`AlgebraError::ResourceExhausted`] payload carries limit and
/// consumption in the message); only the wall-clock deadline is marked
/// retriable — under lighter load the same query can finish, whereas a
/// row or cell trip recurs deterministically under the same grant.
pub fn classify(err: &EngineError) -> (&'static str, bool) {
    // The view-cache serving path surfaces algebra failures wrapped in
    // the inference layer; unwrap so a budget trip or injected fault
    // classifies identically however the query was answered.
    let algebra = match err {
        EngineError::Algebra(e) => Some(e),
        EngineError::Infer(mpf_engine::InferError::Algebra(e)) => Some(e),
        _ => None,
    };
    match algebra {
        Some(AlgebraError::ResourceExhausted { resource, .. }) => match resource {
            ResourceKind::OutputRows => ("budget-rows", false),
            ResourceKind::TotalCells => ("budget-cells", false),
            ResourceKind::WallClock => ("budget-deadline", true),
            ResourceKind::Threads => ("budget-threads", true),
        },
        Some(AlgebraError::Cancelled) => ("cancelled", false),
        Some(AlgebraError::FaultInjected(_)) => ("fault", false),
        Some(_) => ("execution", false),
        None => match err {
            EngineError::Parse { .. } => ("parse", false),
            EngineError::UnknownView(_) | EngineError::UnknownVariable(_) => {
                ("unknown-name", false)
            }
            EngineError::Config(_) => ("config", false),
            _ => ("engine", false),
        },
    }
}

/// Encode an engine failure as one `ERR` line.
pub fn encode_engine_err(err: &EngineError) -> String {
    let (kind, retriable) = classify(err);
    let backoff = if retriable { 50 } else { 0 };
    encode_err(kind, retriable, backoff, &err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_forms() {
        assert_eq!(
            Request::parse("QUERY acme select cid from invest"),
            Ok(Request::Query {
                tenant: "acme".into(),
                sql: "select cid from invest".into()
            })
        );
        assert_eq!(Request::parse(" METRICS "), Ok(Request::Metrics));
        assert_eq!(Request::parse("PING"), Ok(Request::Ping));
        assert_eq!(Request::parse("SHUTDOWN"), Ok(Request::Shutdown));
    }

    #[test]
    fn parses_the_scenario_query_form() {
        assert_eq!(
            Request::parse("QUERY acme select cid from invest SCENARIOS 3"),
            Ok(Request::ScenarioQuery {
                tenant: "acme".into(),
                sql: "select cid from invest".into(),
                count: 3
            })
        );
        // A non-numeric tail is not the suffix form: the text stays SQL.
        assert_eq!(
            Request::parse("QUERY acme select x from SCENARIOS abc"),
            Ok(Request::Query {
                tenant: "acme".into(),
                sql: "select x from SCENARIOS abc".into()
            })
        );
        let e = Request::parse("QUERY acme select cid from invest SCENARIOS 99999999").unwrap_err();
        assert!(e.contains("exceeds the wire limit"), "{e}");
    }

    #[test]
    fn parses_scenario_lines() {
        let sc = parse_scenario_line(
            "SCENARIO shock MEASURE contracts 0,1 9.5 MOVE ctdeals tid 1 2 EVIDENCE wid 3",
        )
        .unwrap();
        assert_eq!(sc.name(), "shock");
        assert_eq!(sc.overrides().len(), 2);
        assert_eq!(sc.evidence_set(), &[("wid".to_string(), 3)]);

        for bad in [
            "ROW x=1",
            "SCENARIO",
            "SCENARIO s MEASURE contracts",
            "SCENARIO s MEASURE contracts 0,x 1.0",
            "SCENARIO s MEASURE contracts 0,1 pi",
            "SCENARIO s MOVE ctdeals tid 1",
            "SCENARIO s EVIDENCE wid many",
            "SCENARIO s FROBNICATE",
        ] {
            let e = parse_scenario_line(bad).unwrap_err();
            assert!(e.starts_with("ERR kind=protocol retriable=false"), "{bad}: {e}");
        }
    }

    #[test]
    fn malformed_lines_get_typed_protocol_errors() {
        let e = Request::parse("QUERY acme").unwrap_err();
        assert!(e.starts_with("ERR kind=protocol retriable=false"), "{e}");
        let e = Request::parse("FETCH x").unwrap_err();
        assert!(e.contains("unrecognized request `FETCH`"), "{e}");
    }

    #[test]
    fn err_encoding_stays_one_line_and_quotes() {
        let e = encode_err("queue-full", true, 75, "say \"hi\"\nnow");
        assert_eq!(
            e,
            "ERR kind=queue-full retriable=true backoff_ms=75 msg=\"say 'hi' now\""
        );
    }

    #[test]
    fn budget_trips_classify_by_resource() {
        let cells = EngineError::Algebra(AlgebraError::ResourceExhausted {
            resource: ResourceKind::TotalCells,
            limit: 10,
            observed: 12,
        });
        assert_eq!(classify(&cells), ("budget-cells", false));
        let wall = EngineError::Algebra(AlgebraError::ResourceExhausted {
            resource: ResourceKind::WallClock,
            limit: 5,
            observed: 6,
        });
        assert_eq!(classify(&wall), ("budget-deadline", true));
        let line = encode_engine_err(&cells);
        assert!(
            line.contains("limit 10 cells, consumed 12 cells"),
            "enriched payload reaches the wire: {line}"
        );
    }
}
