//! The textual line protocol `mpf_serve` speaks.
//!
//! One request per line, one framed response per request. Requests:
//!
//! ```text
//! QUERY <tenant> <sql statement>
//! METRICS
//! PING
//! SHUTDOWN
//! ```
//!
//! Responses:
//!
//! * a query answer streams as `OK rows=<n> strategy=<name>`, then one
//!   `ROW <var>=<value> ... m=<measure>` line per answer row, then `END`;
//! * a DDL statement answers `OK view=<name>` then `END`;
//! * `METRICS` answers `OK metrics` + one JSON line + `END`;
//! * `PING` answers `PONG`; `SHUTDOWN` answers `BYE` and starts a drain;
//! * every failure is a single typed line
//!   `ERR kind=<kind> retriable=<bool> backoff_ms=<n> msg="<text>"` —
//!   `retriable=true` with a non-zero backoff marks load sheds a client
//!   should retry after the hinted delay; `retriable=false` marks
//!   request defects retries cannot cure.

use mpf_algebra::{AlgebraError, ResourceKind};
use mpf_engine::EngineError;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one SQL statement for a tenant.
    Query {
        /// Tenant the statement is billed to.
        tenant: String,
        /// The SQL extension statement, verbatim.
        sql: String,
    },
    /// Export the service metrics registry as JSON.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Stop accepting work, drain in-flight queries, exit.
    Shutdown,
}

impl Request {
    /// Parse one protocol line. Returns a typed protocol error string
    /// (already `ERR`-encoded) for malformed lines.
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("QUERY ") {
            let mut parts = rest.trim().splitn(2, char::is_whitespace);
            let tenant = parts.next().unwrap_or("").to_string();
            let sql = parts.next().unwrap_or("").trim().to_string();
            if tenant.is_empty() || sql.is_empty() {
                return Err(encode_err(
                    "protocol",
                    false,
                    0,
                    "QUERY needs a tenant and a statement: QUERY <tenant> <sql>",
                ));
            }
            return Ok(Request::Query { tenant, sql });
        }
        match line {
            "METRICS" => Ok(Request::Metrics),
            "PING" => Ok(Request::Ping),
            "SHUTDOWN" => Ok(Request::Shutdown),
            _ => Err(encode_err(
                "protocol",
                false,
                0,
                &format!("unrecognized request `{}`", first_word(line)),
            )),
        }
    }
}

fn first_word(line: &str) -> &str {
    line.split_whitespace().next().unwrap_or("")
}

/// Encode a typed error line. `msg` is quoted; inner quotes and
/// newlines are replaced so the frame stays one line.
pub fn encode_err(kind: &str, retriable: bool, backoff_ms: u64, msg: &str) -> String {
    let clean: String = msg
        .chars()
        .map(|c| match c {
            '"' => '\'',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect();
    format!("ERR kind={kind} retriable={retriable} backoff_ms={backoff_ms} msg=\"{clean}\"")
}

/// Map an engine failure to its wire `kind` and retriability.
///
/// Budget trips name the budget that tripped (the enriched
/// [`AlgebraError::ResourceExhausted`] payload carries limit and
/// consumption in the message); only the wall-clock deadline is marked
/// retriable — under lighter load the same query can finish, whereas a
/// row or cell trip recurs deterministically under the same grant.
pub fn classify(err: &EngineError) -> (&'static str, bool) {
    // The view-cache serving path surfaces algebra failures wrapped in
    // the inference layer; unwrap so a budget trip or injected fault
    // classifies identically however the query was answered.
    let algebra = match err {
        EngineError::Algebra(e) => Some(e),
        EngineError::Infer(mpf_engine::InferError::Algebra(e)) => Some(e),
        _ => None,
    };
    match algebra {
        Some(AlgebraError::ResourceExhausted { resource, .. }) => match resource {
            ResourceKind::OutputRows => ("budget-rows", false),
            ResourceKind::TotalCells => ("budget-cells", false),
            ResourceKind::WallClock => ("budget-deadline", true),
            ResourceKind::Threads => ("budget-threads", true),
        },
        Some(AlgebraError::Cancelled) => ("cancelled", false),
        Some(AlgebraError::FaultInjected(_)) => ("fault", false),
        Some(_) => ("execution", false),
        None => match err {
            EngineError::Parse { .. } => ("parse", false),
            EngineError::UnknownView(_) | EngineError::UnknownVariable(_) => {
                ("unknown-name", false)
            }
            EngineError::Config(_) => ("config", false),
            _ => ("engine", false),
        },
    }
}

/// Encode an engine failure as one `ERR` line.
pub fn encode_engine_err(err: &EngineError) -> String {
    let (kind, retriable) = classify(err);
    let backoff = if retriable { 50 } else { 0 };
    encode_err(kind, retriable, backoff, &err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_forms() {
        assert_eq!(
            Request::parse("QUERY acme select cid from invest"),
            Ok(Request::Query {
                tenant: "acme".into(),
                sql: "select cid from invest".into()
            })
        );
        assert_eq!(Request::parse(" METRICS "), Ok(Request::Metrics));
        assert_eq!(Request::parse("PING"), Ok(Request::Ping));
        assert_eq!(Request::parse("SHUTDOWN"), Ok(Request::Shutdown));
    }

    #[test]
    fn malformed_lines_get_typed_protocol_errors() {
        let e = Request::parse("QUERY acme").unwrap_err();
        assert!(e.starts_with("ERR kind=protocol retriable=false"), "{e}");
        let e = Request::parse("FETCH x").unwrap_err();
        assert!(e.contains("unrecognized request `FETCH`"), "{e}");
    }

    #[test]
    fn err_encoding_stays_one_line_and_quotes() {
        let e = encode_err("queue-full", true, 75, "say \"hi\"\nnow");
        assert_eq!(
            e,
            "ERR kind=queue-full retriable=true backoff_ms=75 msg=\"say 'hi' now\""
        );
    }

    #[test]
    fn budget_trips_classify_by_resource() {
        let cells = EngineError::Algebra(AlgebraError::ResourceExhausted {
            resource: ResourceKind::TotalCells,
            limit: 10,
            observed: 12,
        });
        assert_eq!(classify(&cells), ("budget-cells", false));
        let wall = EngineError::Algebra(AlgebraError::ResourceExhausted {
            resource: ResourceKind::WallClock,
            limit: 5,
            observed: 6,
        });
        assert_eq!(classify(&wall), ("budget-deadline", true));
        let line = encode_engine_err(&cells);
        assert!(
            line.contains("limit 10 cells, consumed 12 cells"),
            "enriched payload reaches the wire: {line}"
        );
    }
}
