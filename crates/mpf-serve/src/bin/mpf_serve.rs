//! `mpf_serve` — the multi-tenant MPF query service.
//!
//! ```text
//! mpf_serve [--listen ADDR] [--demo] [--init FILE]
//!           [--pool-cells N] [--pool-threads N]
//!           [--queue-depth N] [--queue-deadline-ms N]
//! ```
//!
//! Without `--listen` the service speaks the line protocol on
//! stdin/stdout (one request per line, framed responses), which is what
//! the CI smoke job scripts. With `--listen HOST:PORT` it accepts
//! concurrent TCP connections, one session per connection.
//!
//! Startup is strict about configuration: malformed `MPF_THREADS` /
//! `MPF_DENSE` / `MPF_REPR` / `MPF_KERNEL` values (or malformed flags)
//! print a typed configuration error and exit with status 2 instead of
//! silently running with defaults.

use std::io::{stdin, stdout, BufReader};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use mpf_engine::Database;
use mpf_semiring::Combine;
use mpf_serve::{ServeConfig, Server};
use mpf_storage::{FunctionalRelation, Schema};

struct Options {
    listen: Option<String>,
    demo: bool,
    init: Option<String>,
    config: ServeConfig,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        listen: None,
        demo: false,
        init: None,
        config: ServeConfig::default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match arg.as_str() {
            "--listen" => opts.listen = Some(value_of("--listen")?),
            "--demo" => opts.demo = true,
            "--init" => opts.init = Some(value_of("--init")?),
            "--pool-cells" => {
                opts.config.pool_cells = parse_num(&value_of("--pool-cells")?, "--pool-cells")?
            }
            "--pool-threads" => {
                opts.config.pool_threads =
                    parse_num(&value_of("--pool-threads")?, "--pool-threads")? as usize
            }
            "--queue-depth" => {
                opts.config.queue_depth =
                    parse_num(&value_of("--queue-depth")?, "--queue-depth")? as usize
            }
            "--queue-deadline-ms" => {
                opts.config.queue_deadline = Duration::from_millis(parse_num(
                    &value_of("--queue-deadline-ms")?,
                    "--queue-deadline-ms",
                )?)
            }
            other => return Err(format!("unrecognized flag `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_num(value: &str, flag: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("invalid {flag}=`{value}`: expected a non-negative integer"))
}

/// Seed a small complete-relation workload so the service answers
/// queries out of the box (`--demo`): `v = r1(a,b) * r2(b,c)`.
fn seed_demo(db: &Database) -> mpf_engine::Result<()> {
    let a = db.add_var("a", 3)?;
    let b = db.add_var("b", 3)?;
    let c = db.add_var("c", 3)?;
    db.insert_relation(FunctionalRelation::complete(
        "r1",
        Schema::new(vec![a, b])?,
        &db.catalog(),
        |row| 1.0 + (row[0] * 3 + row[1]) as f64 / 4.0,
    ))?;
    db.insert_relation(FunctionalRelation::complete(
        "r2",
        Schema::new(vec![b, c])?,
        &db.catalog(),
        |row| 0.5 + (row[0] + 2 * row[1]) as f64 / 3.0,
    ))?;
    db.create_view("v", &["r1", "r2"], Combine::Product)?;
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    // Strict knob validation: refuse to start on malformed MPF_THREADS /
    // MPF_DENSE rather than serving with silently different settings.
    let db = Database::from_env().map_err(|e| e.to_string())?;
    if opts.demo {
        seed_demo(&db).map_err(|e| format!("demo seed failed: {e}"))?;
    }
    if let Some(path) = &opts.init {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            db.run_sql(line)
                .map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        }
    }

    let server = Server::new(db, opts.config);
    match &opts.listen {
        Some(addr) => {
            let listener =
                TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            eprintln!("mpf_serve listening on {addr}");
            server
                .serve_tcp(listener)
                .map_err(|e| format!("accept loop failed: {e}"))?;
        }
        None => {
            server.serve_lines(BufReader::new(stdin().lock()), stdout().lock());
        }
    }
    eprintln!("mpf_serve drained; bye");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mpf_serve: {msg}");
            ExitCode::from(2)
        }
    }
}
