//! Chaos soak (requires `--features fault-injection`): N concurrent
//! tenants issue mixed queries and catalog updates against one server
//! while a chaos thread arms deterministic faults at operator and
//! catalog-install sites. The soak asserts the overload/fault contract:
//!
//! * zero panics and zero deadlocks (every worker finishes in time);
//! * every armed fault surfaces as a typed error to exactly one
//!   request (`ERR kind=fault` on the wire, `FaultInjected` for direct
//!   writers) — with the fallback chain disabled, nothing masks them;
//! * snapshot isolation holds: the writer installs *pairs* of relations
//!   whose measures are one prime `p` per version, so every answer row
//!   must equal `2·p²` for a successfully installed prime — a torn
//!   read across versions would show `2·p·q` (not a prime square), and
//!   a version whose install faulted must never be observable.
#![cfg(feature = "fault-injection")]

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mpf_algebra::fault;
use mpf_engine::{Database, DenseMode, EngineError, FallbackPolicy};
use mpf_semiring::Combine;
use mpf_serve::{ServeConfig, Server};
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};

const PRIMES: &[u32] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73,
];

/// Both soak relations with every measure set to `p`.
fn version_relations(catalog: &Catalog, a: VarId, b: VarId, p: u32) -> [FunctionalRelation; 2] {
    let m = p as f64;
    [
        FunctionalRelation::complete("r1", Schema::new(vec![a, b]).unwrap(), catalog, |_| m),
        FunctionalRelation::complete("r2", Schema::new(vec![b]).unwrap(), catalog, |_| m),
    ]
}

/// `m == 2·p²` for which prime `p`, if any.
fn prime_of_measure(m: f64) -> Option<u32> {
    PRIMES
        .iter()
        .copied()
        .find(|&p| m == 2.0 * (p as f64) * (p as f64))
}

#[test]
fn chaos_soak_holds_the_overload_and_isolation_contract() {
    fault::clear_all();
    // Sparse kernels + single-thread grants keep the operator fault
    // sites (`product_join`, `group_by`, ...) on every query's path;
    // concurrency comes from the tenants, not intra-query parallelism.
    // The view cache runs hot during the soak: repeated `v` queries
    // admit trees, every writer install (raw `mutate` → `Unknown`
    // event) evicts them, and faults consumed by cache builds or
    // cache-served answers must honor the same 1:1 accounting.
    let db = Database::new()
        .with_fallback(FallbackPolicy::none())
        .with_dense(DenseMode::Off)
        .with_cache_bytes(16 << 20);
    let a = db.add_var("a", 2).unwrap();
    let b = db.add_var("b", 2).unwrap();
    {
        let catalog = db.catalog();
        let [r1, r2] = version_relations(&catalog, a, b, PRIMES[0]);
        db.insert_relation(r1).unwrap();
        db.insert_relation(r2).unwrap();
    }
    db.create_view("v", &["r1", "r2"], Combine::Product).unwrap();
    let server = Server::new(db, ServeConfig::default());

    let installed = Arc::new(Mutex::new(HashSet::from([PRIMES[0]])));
    let failed = Arc::new(Mutex::new(HashSet::new()));
    // Typed fault errors observed, across wire responses and the direct
    // writer; the chaos thread compares this against what it armed.
    let observed_faults = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Writer: installs version after version, each an atomic two-relation
    // swap. A `catalog::install` fault makes the whole install vanish.
    let writer = {
        let server = Arc::clone(&server);
        let installed = Arc::clone(&installed);
        let failed = Arc::clone(&failed);
        let observed = Arc::clone(&observed_faults);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut i = 1;
            while !stop.load(Ordering::SeqCst) {
                let p = PRIMES[i % PRIMES.len()];
                let db = server.db();
                let catalog = db.catalog();
                let [r1, r2] = version_relations(&catalog, a, b, p);
                drop(catalog);
                match db.mutate(|snap| {
                    snap.store_mut().insert(r1.clone());
                    snap.store_mut().insert(r2.clone());
                    Ok(())
                }) {
                    Ok(()) => {
                        installed.lock().unwrap().insert(p);
                    }
                    Err(EngineError::Algebra(mpf_algebra::AlgebraError::FaultInjected(_))) => {
                        observed.fetch_add(1, Ordering::SeqCst);
                        failed.lock().unwrap().insert(p);
                    }
                    Err(e) => panic!("unexpected writer error: {e}"),
                }
                i += 1;
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // Tenants: mixed reads and DDL through the service protocol.
    let tenants = 4;
    let queries_per_tenant = 250;
    let (done_tx, done_rx) = mpsc::channel();
    for t in 0..tenants {
        let server = Arc::clone(&server);
        let installed = Arc::clone(&installed);
        let failed = Arc::clone(&failed);
        let observed = Arc::clone(&observed_faults);
        let done = done_tx.clone();
        thread::spawn(move || {
            for i in 0..queries_per_tenant {
                let req = if i % 10 == 7 {
                    // Concurrent catalog installs through the service.
                    format!(
                        "QUERY t{t} create mpfview soak_{t}_{i} as \
                         (select a, b, measure = (* r1.f, r2.f) from r1, r2)"
                    )
                } else {
                    format!("QUERY t{t} select a, sum(f) from v group by a")
                };
                let (lines, _) = server.handle_line(&req);
                let head = &lines[0];
                if head.starts_with("OK rows=") {
                    // Snapshot isolation: every row of one answer comes
                    // from one installed version.
                    let primes: Vec<u32> = lines
                        .iter()
                        .filter(|l| l.starts_with("ROW "))
                        .map(|l| {
                            let m: f64 =
                                l.rsplit("m=").next().unwrap().trim().parse().unwrap();
                            prime_of_measure(m).unwrap_or_else(|| {
                                panic!("torn measure {m}: not 2·p² for any version prime")
                            })
                        })
                        .collect();
                    if let Some(&first) = primes.first() {
                        assert!(
                            primes.iter().all(|&p| p == first),
                            "one answer mixed versions: {primes:?}"
                        );
                        assert!(
                            installed.lock().unwrap().contains(&first),
                            "answer shows prime {first} that was never installed"
                        );
                        assert!(
                            !failed.lock().unwrap().contains(&first)
                                || installed.lock().unwrap().contains(&first),
                            "answer shows prime {first} whose install faulted"
                        );
                    }
                } else if head.starts_with("OK view=") {
                    // DDL succeeded.
                } else if head.starts_with("ERR kind=fault") {
                    observed.fetch_add(1, Ordering::SeqCst);
                } else {
                    // Under chaos the only other acceptable outcomes are
                    // typed load sheds and deadline trips.
                    assert!(
                        head.starts_with("ERR kind=queue-full")
                            || head.starts_with("ERR kind=admission-deadline")
                            || head.starts_with("ERR kind=budget-deadline"),
                        "unexpected response: {head}"
                    );
                }
                thread::sleep(Duration::from_millis(1));
            }
            done.send(t).unwrap();
        });
    }
    drop(done_tx);

    // Chaos: arm one fault at a time and wait until exactly one request
    // reports it; sites cover operators and the catalog install point.
    let chaos = {
        let observed = Arc::clone(&observed_faults);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            // Alternate the always-hit install site with a rotation of
            // operator sites; a site the current plan shape never
            // reaches is cleared after the wait timeout and not counted.
            let query_sites = ["product_join", "group_by", "sort_group_by"];
            let mut armed_fired = 0usize;
            let mut s = 0;
            while !stop.load(Ordering::SeqCst) {
                let site = if s % 2 == 0 {
                    "catalog::install"
                } else {
                    query_sites[(s / 2) % query_sites.len()]
                };
                s += 1;
                let before = observed.load(Ordering::SeqCst);
                fault::inject(site, 1);
                let t0 = Instant::now();
                loop {
                    if observed.load(Ordering::SeqCst) > before {
                        armed_fired += 1;
                        break;
                    }
                    if t0.elapsed() > Duration::from_millis(400) || stop.load(Ordering::SeqCst) {
                        fault::clear(site);
                        // The arm may have fired in the clear race;
                        // give the losing request a moment to report.
                        thread::sleep(Duration::from_millis(100));
                        if observed.load(Ordering::SeqCst) > before {
                            armed_fired += 1;
                        }
                        break;
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                thread::sleep(Duration::from_millis(3));
            }
            armed_fired
        })
    };

    // Zero deadlocks: every tenant finishes within the soak budget.
    for _ in 0..tenants {
        done_rx
            .recv_timeout(Duration::from_secs(120))
            .expect("tenant finished without panic or deadlock");
    }
    stop.store(true, Ordering::SeqCst);
    let armed_fired = chaos.join().expect("chaos thread clean");
    writer.join().expect("writer clean");

    // Every fault that fired surfaced as a typed error to exactly one
    // request: the registry disarms on fire (at-most-once) and the
    // chaos thread saw each arm consumed (at-least-once).
    assert_eq!(
        observed_faults.load(Ordering::SeqCst),
        armed_fired,
        "armed faults and observed typed fault errors must match 1:1"
    );
    assert!(armed_fired > 0, "the soak exercised at least one fault");
    assert_eq!(server.admission().inflight(), 0, "all grants returned");
    let (m, _) = server.handle_line("METRICS");
    assert!(m[1].contains("serve.query"), "metrics survived the soak");
    assert!(
        m[1].contains("engine.cache."),
        "cache counters missing from METRICS after a cached soak"
    );
    let vc = server.db().view_cache().expect("soak ran with a cache");
    assert!(vc.counter("misses") > 0, "the soak never exercised the cache");
    fault::clear_all();
}
