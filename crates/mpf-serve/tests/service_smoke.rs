//! Service smoke: a real TCP listener, concurrent scripted clients, and
//! a clean drain + shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mpf_engine::Database;
use mpf_semiring::Combine;
use mpf_serve::{ServeConfig, Server, TenantLimits};
use mpf_storage::{FunctionalRelation, Schema};

fn seeded_server(config: ServeConfig) -> Arc<Server> {
    let db = Database::new();
    let a = db.add_var("a", 3).unwrap();
    let b = db.add_var("b", 3).unwrap();
    let c = db.add_var("c", 3).unwrap();
    db.insert_relation(FunctionalRelation::complete(
        "r1",
        Schema::new(vec![a, b]).unwrap(),
        &db.catalog(),
        |row| 1.0 + (row[0] * 3 + row[1]) as f64 / 4.0,
    ))
    .unwrap();
    db.insert_relation(FunctionalRelation::complete(
        "r2",
        Schema::new(vec![b, c]).unwrap(),
        &db.catalog(),
        |row| 0.5 + (row[0] + 2 * row[1]) as f64 / 3.0,
    ))
    .unwrap();
    db.create_view("v", &["r1", "r2"], Combine::Product).unwrap();
    Server::new(db, config)
}

/// Send one request line, read one framed response (single line or
/// `...`-to-`END` block).
fn roundtrip(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    request: &str,
) -> Vec<String> {
    writeln!(writer, "{request}").unwrap();
    writer.flush().unwrap();
    let mut out = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let line = line.trim_end().to_string();
        let done = line == "END"
            || line == "PONG"
            || line == "BYE"
            || line.starts_with("ERR ");
        out.push(line);
        if done {
            break;
        }
    }
    out
}

#[test]
fn concurrent_tcp_clients_then_clean_drain() {
    let server = seeded_server(ServeConfig::default().with_tenant(
        "bulk",
        TenantLimits {
            max_inflight: 4,
            ..TenantLimits::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accept = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_tcp(listener))
    };

    // Concurrent scripted clients, each on its own connection.
    let clients = 6;
    let per_client = 10;
    let (done_tx, done_rx) = mpsc::channel();
    for id in 0..clients {
        let done = done_tx.clone();
        thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let tenant = if id % 2 == 0 { "bulk" } else { "spot" };
            let mut ok = 0usize;
            for i in 0..per_client {
                let req = if i % 4 == 3 {
                    format!("QUERY {tenant} select c, sum(f) from v group by c")
                } else {
                    format!("QUERY {tenant} select a, sum(f) from v group by a")
                };
                let resp = roundtrip(&mut reader, &mut writer, &req);
                let head = &resp[0];
                if head.starts_with("OK rows=3") {
                    assert_eq!(resp.last().unwrap(), "END", "{resp:?}");
                    assert_eq!(resp.len(), 5, "3 rows framed: {resp:?}");
                    ok += 1;
                } else {
                    // Under contention the only acceptable failure is a
                    // typed retriable shed.
                    assert!(
                        head.starts_with("ERR kind=queue-full")
                            || head.starts_with("ERR kind=admission-deadline"),
                        "unexpected response: {resp:?}"
                    );
                    assert!(head.contains("retriable=true"), "{head}");
                }
            }
            assert_eq!(roundtrip(&mut reader, &mut writer, "PING"), ["PONG"]);
            done.send(ok).unwrap();
        });
    }
    drop(done_tx);
    let mut total_ok = 0;
    for _ in 0..clients {
        total_ok += done_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("client finished without panic or deadlock");
    }
    assert!(total_ok > 0, "at least some queries answered");

    // Drain: SHUTDOWN from a fresh connection, accept loop exits clean.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let metrics = roundtrip(&mut reader, &mut writer, "METRICS");
    assert_eq!(metrics[0], "OK metrics");
    assert!(metrics[1].contains("serve.query"), "{}", metrics[1]);
    assert_eq!(roundtrip(&mut reader, &mut writer, "SHUTDOWN"), ["BYE"]);
    accept
        .join()
        .expect("accept thread exits")
        .expect("clean drain");
    assert!(server.draining());
    assert_eq!(server.admission().inflight(), 0, "drained in-flight work");
    assert_eq!(
        server.metrics().counter("serve.ok") as usize,
        total_ok,
        "every OK frame was counted exactly once"
    );
}

#[test]
fn draining_refuses_new_connections_with_typed_line() {
    let server = seeded_server(ServeConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accept = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_tcp(listener))
    };
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    assert_eq!(roundtrip(&mut reader, &mut writer, "SHUTDOWN"), ["BYE"]);
    // A connection racing the drain gets a typed refusal (or, if the
    // listener already closed, a connection error) — never a hang.
    if let Ok(late) = TcpStream::connect(addr) {
        late.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut line = String::new();
        let n = BufReader::new(late).read_line(&mut line).unwrap_or(0);
        assert!(
            n == 0 || line.starts_with("ERR kind=shutting-down"),
            "unexpected late-connection response: {line:?}"
        );
    }
    accept.join().unwrap().unwrap();
}
