//! Criterion mirrors of every table and figure in the paper's evaluation
//! (Section 7), at scales that finish in seconds. The full paper-style
//! row/series output comes from the `src/bin/*` harnesses; these benches
//! make `cargo bench` exercise each experiment's code path and give stable
//! relative timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpf_bench::run_query;
use mpf_datagen::{SupplyChain, SupplyChainConfig, SyntheticKind, SyntheticView};
use mpf_algebra::ExecContext;
use mpf_infer::{BayesNet, VeCache};
use mpf_optimizer::{optimize, Algorithm, CostModel, Heuristic, QuerySpec};
use mpf_semiring::SemiringKind;
use mpf_storage::FunctionalRelation;

/// Figure 7: Q1 (`group by cid`) under linear vs nonlinear CS+ at full
/// ctdeals density.
fn fig7_plan_linearity(c: &mut Criterion) {
    let sc = SupplyChain::generate(SupplyChainConfig::proportional(0.02));
    let mut g = c.benchmark_group("fig7_linearity_q1");
    for (label, algo) in [
        ("linear", Algorithm::CsPlusLinear),
        ("nonlinear", Algorithm::CsPlusNonlinear),
    ] {
        let ctx = sc.ctx(QuerySpec::group_by([sc.var("cid")]), CostModel::Io);
        g.bench_function(label, |b| {
            b.iter(|| run_query(&ctx, &sc.store, SemiringKind::SumProduct, algo))
        });
    }
    g.finish();
}

/// Figure 8: Q3 (`group by wid`) under CS+ nonlinear / VE(deg) / VE(deg) ext.
fn fig8_extended_space(c: &mut Criterion) {
    let sc = SupplyChain::generate(SupplyChainConfig::proportional(0.02));
    let mut g = c.benchmark_group("fig8_extended_space_q3");
    for algo in [
        Algorithm::CsPlusNonlinear,
        Algorithm::Ve(Heuristic::Degree),
        Algorithm::VePlus(Heuristic::Degree),
    ] {
        let ctx = sc.ctx(QuerySpec::group_by([sc.var("wid")]), CostModel::Io);
        g.bench_function(algo.label(), |b| {
            b.iter(|| run_query(&ctx, &sc.store, SemiringKind::SumProduct, algo))
        });
    }
    g.finish();
}

/// Figure 9: Q1 (`group by cid`) under the three base ordering heuristics.
fn fig9_heuristics(c: &mut Criterion) {
    let sc = SupplyChain::generate(SupplyChainConfig::proportional(0.02));
    let mut g = c.benchmark_group("fig9_heuristics_q1");
    for h in [Heuristic::Degree, Heuristic::Width, Heuristic::ElimCost] {
        let ctx = sc.ctx(QuerySpec::group_by([sc.var("cid")]), CostModel::Io);
        g.bench_function(h.label(), |b| {
            b.iter(|| run_query(&ctx, &sc.store, SemiringKind::SumProduct, Algorithm::Ve(h)))
        });
    }
    g.finish();
}

/// Table 2: plan selection (optimization only) on the three synthetic
/// views — the quantity Table 2 tabulates is the chosen plan's cost, so the
/// benchmark measures the planner.
fn table2_plan_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_plan_selection");
    for kind in SyntheticKind::ALL {
        let view = SyntheticView::generate(kind, 5, 10, 7);
        for algo in [
            Algorithm::CsPlusNonlinear,
            Algorithm::Ve(Heuristic::Degree),
            Algorithm::VePlus(Heuristic::Degree),
        ] {
            let ctx = view.ctx(view.first_chain_query(), CostModel::Io);
            g.bench_function(
                BenchmarkId::new(kind.label(), algo.label()),
                |b| b.iter(|| optimize(&ctx, algo)),
            );
        }
    }
    g.finish();
}

/// Table 3: a full 10-seed random-order sweep (plain + extended) on the
/// star view.
fn table3_random_orders(c: &mut Criterion) {
    let view = SyntheticView::generate(SyntheticKind::Star, 5, 10, 7);
    let mut g = c.benchmark_group("table3_random_orders");
    for (label, ext) in [("plain", false), ("ext", true)] {
        let ctx = view.ctx(view.first_chain_query(), CostModel::Io);
        g.bench_function(label, |b| {
            b.iter(|| {
                (0..10u64)
                    .map(|seed| {
                        let algo = if ext {
                            Algorithm::VePlus(Heuristic::Random(seed))
                        } else {
                            Algorithm::Ve(Heuristic::Random(seed))
                        };
                        optimize(&ctx, algo).est_cost
                    })
                    .sum::<f64>()
            })
        });
    }
    g.finish();
}

/// Figure 10: optimization time per algorithm on the N = 7 star view
/// (the x-axis of the paper's scatter).
fn fig10_optimization_time(c: &mut Criterion) {
    let view = SyntheticView::generate(SyntheticKind::Star, 7, 10, 11);
    let mut g = c.benchmark_group("fig10_optimization_time");
    for algo in [
        Algorithm::Cs,
        Algorithm::CsPlusLinear,
        Algorithm::CsPlusNonlinear,
        Algorithm::Ve(Heuristic::Degree),
        Algorithm::VePlus(Heuristic::Degree),
    ] {
        let ctx = view.ctx(view.first_chain_query(), CostModel::Io);
        g.bench_function(algo.label(), |b| b.iter(|| optimize(&ctx, algo)));
    }
    g.finish();
}

/// Section 6: VE-cache build and cached answering on the supply chain.
fn workload_vecache(c: &mut Criterion) {
    let sc = SupplyChain::generate(SupplyChainConfig::at_scale(0.01));
    let rels: Vec<&FunctionalRelation> = mpf_datagen::supply_chain::RELATION_NAMES
        .iter()
        .map(|n| {
            use mpf_algebra::RelationProvider;
            sc.store.relation_of(n).unwrap()
        })
        .collect();
    let mut g = c.benchmark_group("section6_vecache");
    g.bench_function("build", |b| {
        b.iter(|| VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &rels, None).unwrap())
    });
    let cache = VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &rels, None).unwrap();
    g.bench_function("answer_all_vars", |b| {
        b.iter(|| {
            for name in ["pid", "sid", "wid", "cid", "tid"] {
                cache.answer(sc.var(name)).unwrap();
            }
        })
    });
    g.finish();
}

/// Section 4: Bayesian posterior via MPF queries on a random network.
fn inference_posterior(c: &mut Criterion) {
    let bn = BayesNet::random(10, 2, 2, 3);
    let target = *bn.nodes().last().unwrap();
    let evidence = bn.nodes()[0];
    let mut g = c.benchmark_group("section4_posterior");
    for algo in [
        Algorithm::CsPlusNonlinear,
        Algorithm::Ve(Heuristic::Degree),
        Algorithm::VePlus(Heuristic::Degree),
    ] {
        g.bench_function(algo.label(), |b| {
            b.iter(|| bn.posterior(target, &[(evidence, 1)], algo).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    fig7_plan_linearity,
    fig8_extended_space,
    fig9_heuristics,
    table2_plan_selection,
    table3_random_orders,
    fig10_optimization_time,
    workload_vecache,
    inference_posterior,
);
criterion_main!(benches);
