//! Microbenchmarks for the extended-relational-algebra operators: product
//! join, marginalization (group-by), and the two semijoins that implement
//! Belief Propagation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpf_algebra::{ops, ExecContext};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};

fn fixtures(dom: u64) -> (Catalog, FunctionalRelation, FunctionalRelation, VarId) {
    let mut cat = Catalog::new();
    let a = cat.add_var("a", dom).unwrap();
    let b = cat.add_var("b", dom).unwrap();
    let c = cat.add_var("c", dom).unwrap();
    let l = FunctionalRelation::complete(
        "l",
        Schema::new(vec![a, b]).unwrap(),
        &cat,
        |row| (row[0] + 2 * row[1] + 1) as f64,
    );
    let r = FunctionalRelation::complete(
        "r",
        Schema::new(vec![b, c]).unwrap(),
        &cat,
        |row| (3 * row[0] + row[1] + 1) as f64,
    );
    (cat, l, r, a)
}

fn bench_product_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("product_join");
    for dom in [16u64, 64, 128] {
        let (_, l, r, _) = fixtures(dom);
        g.bench_with_input(BenchmarkId::from_parameter(dom * dom), &dom, |bch, _| {
            bch.iter(|| {
                ops::product_join(&mut ExecContext::new(SemiringKind::SumProduct), &l, &r).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_group_by(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_by");
    for dom in [16u64, 64, 128] {
        let (_, l, _, a) = fixtures(dom);
        g.bench_with_input(BenchmarkId::from_parameter(dom * dom), &dom, |bch, _| {
            bch.iter(|| {
                ops::group_by(&mut ExecContext::new(SemiringKind::SumProduct), &l, &[a]).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_semijoins(c: &mut Criterion) {
    let mut g = c.benchmark_group("semijoins");
    let (_, l, r, _) = fixtures(64);
    g.bench_function("product_semijoin", |bch| {
        bch.iter(|| {
            ops::product_semijoin(&mut ExecContext::new(SemiringKind::SumProduct), &l, &r).unwrap()
        })
    });
    g.bench_function("update_semijoin", |bch| {
        bch.iter(|| {
            ops::update_semijoin(&mut ExecContext::new(SemiringKind::SumProduct), &l, &r).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_product_join, bench_group_by, bench_semijoins);
criterion_main!(benches);
