#![warn(missing_docs)]
//! Shared infrastructure for the experiment harnesses that regenerate
//! every table and figure of the paper's evaluation (Section 7).
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | binary                | paper artifact |
//! |-----------------------|----------------|
//! | `table1_schema`       | Table 1 (schema cardinalities & domain sizes) |
//! | `fig7_linearity`      | Figure 7 (plan linearity vs ctdeals density) |
//! | `fig8_extended_space` | Figure 8 (VE extended space vs DB scale) |
//! | `fig9_heuristics`     | Figure 9 (ordering heuristics vs DB scale) |
//! | `table2_heuristics`   | Table 2 (heuristic plan costs on star/multistar/linear) |
//! | `table3_random`       | Table 3 (random orders, mean ± 95% CI) |
//! | `fig10_opt_cost`      | Figure 10 (plan quality vs optimization time) |
//!
//! Binaries accept `--scale <f>` / `--n <tables>` style flags (see each
//! binary's `--help`); defaults are sized to finish in seconds on a laptop
//! while preserving the paper's comparison *shapes*.

use std::time::{Duration, Instant};

use mpf_algebra::{ExecStats, Executor, RelationStore};
use mpf_optimizer::{optimize, Algorithm, OptContext};
use mpf_semiring::SemiringKind;

/// One measured run of a query under an algorithm.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm label (paper row name).
    pub label: String,
    /// Optimizer-estimated plan cost.
    pub est_cost: f64,
    /// Time spent planning.
    pub optimize_time: Duration,
    /// Time spent executing.
    pub execute_time: Duration,
    /// Executor work counters.
    pub stats: ExecStats,
    /// Result cardinality.
    pub result_rows: usize,
}

/// Optimize and execute a query, measuring both phases.
pub fn run_query(
    ctx: &OptContext<'_>,
    store: &RelationStore,
    sr: SemiringKind,
    algorithm: Algorithm,
) -> RunResult {
    let t0 = Instant::now();
    let plan = optimize(ctx, algorithm);
    let optimize_time = t0.elapsed();

    let exec = Executor::new(store, sr);
    let t1 = Instant::now();
    let (rel, stats) = exec.execute(&plan.plan).expect("plan executes");
    let execute_time = t1.elapsed();

    RunResult {
        label: algorithm.label(),
        est_cost: plan.est_cost,
        optimize_time,
        execute_time,
        stats,
        result_rows: rel.len(),
    }
}

/// Optimize only (for plan-cost tables and optimization-time plots).
pub fn plan_only(ctx: &OptContext<'_>, algorithm: Algorithm) -> (f64, Duration) {
    let t0 = Instant::now();
    let plan = optimize(ctx, algorithm);
    (plan.est_cost, t0.elapsed())
}

/// Mean and 95% confidence half-width of a sample (normal approximation,
/// matching the paper's Table 3 reporting).
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    assert!(n > 0.0);
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let half = 1.96 * (var / n).sqrt();
    (mean, half)
}

/// Render a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Tiny flag parser: `--name value` pairs from `std::env::args`.
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Capture the process arguments.
    pub fn capture() -> Args {
        Args {
            argv: std::env::args().collect(),
        }
    }

    /// Value of `--name`, parsed, or the default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.argv
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.argv.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.argv.iter().any(|a| a == &flag)
    }
}

/// Format a duration in milliseconds with 3 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Minimal CSV writer for harness series output (`--csv <dir>` flags):
/// one file per figure/series, comma-separated, header first.
pub struct Csv {
    out: std::io::BufWriter<std::fs::File>,
}

impl Csv {
    /// Create `<dir>/<name>.csv` (directories are created as needed) and
    /// write the header row.
    pub fn create(dir: &str, name: &str, header: &[&str]) -> std::io::Result<Csv> {
        std::fs::create_dir_all(dir)?;
        let file = std::fs::File::create(format!("{dir}/{name}.csv"))?;
        let mut csv = Csv {
            out: std::io::BufWriter::new(file),
        };
        csv.row(header)?;
        Ok(csv)
    }

    /// Write one row; fields are escaped only by forbidding commas (harness
    /// output is numeric and label-only).
    pub fn row<S: AsRef<str>>(&mut self, fields: &[S]) -> std::io::Result<()> {
        use std::io::Write;
        let line: Vec<&str> = fields.iter().map(AsRef::as_ref).collect();
        debug_assert!(line.iter().all(|f| !f.contains(',')));
        writeln!(self.out, "{}", line.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_of_constant_sample_is_zero() {
        let (m, h) = mean_ci95(&[5.0, 5.0, 5.0]);
        assert_eq!(m, 5.0);
        assert_eq!(h, 0.0);
    }

    #[test]
    fn ci_grows_with_variance() {
        let (_, h1) = mean_ci95(&[1.0, 2.0, 3.0]);
        let (_, h2) = mean_ci95(&[0.0, 2.0, 4.0]);
        assert!(h2 > h1);
        let (m, _) = mean_ci95(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn row_alignment() {
        let s = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(s, "  a    bb");
    }
}
