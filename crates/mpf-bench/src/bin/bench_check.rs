//! Bench-regression gate: compare a fresh benchmark run (`pr3_parallel`
//! or `pr5_dense`) against its checked-in baseline and fail CI when the
//! sequential reference of any section regresses by more than the
//! tolerance.
//!
//! The comparison is per-row (time / input rows), so a smoke run at
//! `--rows 50000` can be compared against the full-scale baseline — but
//! per-row cost is not scale-invariant (hash tables spill, caches
//! saturate), so cross-scale comparisons are reported as warnings only
//! and never fail the build. `function_eq_sequential: false` (a parallel
//! run diverging from sequential), `function_eq_sparse: false` (a dense
//! run diverging from the sparse operators), `function_eq_cache: false`
//! (a cache-served run diverging from a cold recompute), or
//! `function_eq_scenarios: false` (a scenario batch diverging from a
//! sequential loop of single-scenario runs), `function_eq_scalar: false`
//! (a chunked-kernel run diverging from scalar), or
//! `function_eq_unfused: false` (a fused join→marginalize run diverging
//! from the unfused pipeline) anywhere in the new results fails
//! unconditionally: a wrong answer is a regression at any scale. So does
//! `peak_below_unfused: false` — a fused run that materializes as much
//! as the unfused pipeline has lost its reason to exist.
//!
//! The parser is a purpose-built scanner for the flat JSON the bench bins
//! emit (no serde in this workspace); it is not a general JSON reader.
//!
//! Usage: `bench_check [--baseline BENCH_PR3.json] [--new BENCH_NEW.json]
//!         [--tolerance 0.25]`

use std::process::ExitCode;

use mpf_bench::Args;

/// One benchmark section: its name, the row scale it ran at, and the
/// sequential reference time.
#[derive(Debug)]
struct Section {
    name: String,
    rows: f64,
    sequential_ms: f64,
}

/// Scan for `"key": <number>` after byte offset `from`; returns the value
/// and the offset just past it.
fn number_after(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let pat = format!("\"{key}\":");
    let at = text[from..].find(&pat)? + from + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    let val: f64 = rest[..end].parse().ok()?;
    Some((val, at + (text[at..].len() - rest.len()) + end))
}

/// Scan for `"key": "<string>"` after byte offset `from`.
fn string_after(text: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let pat = format!("\"{key}\": \"");
    let at = text[from..].find(&pat)? + from + pat.len();
    let end = text[at..].find('"')? + at;
    Some((text[at..end].to_string(), end))
}

fn parse_sections(text: &str) -> Vec<Section> {
    let mut out = Vec::new();
    let mut pos = match text.find("\"benchmarks\":") {
        Some(p) => p,
        None => return out,
    };
    while let Some((name, after_name)) = string_after(text, "name", pos) {
        // Each section declares its scale under a section-specific key
        // (rows_per_side / input_rows / rows_per_relation) before the
        // sequential time; take the first number key that appears.
        let rows = ["rows_per_side", "input_rows", "rows_per_relation"]
            .iter()
            .filter_map(|k| number_after(text, k, after_name).map(|(v, _)| v))
            .fold(f64::NAN, |acc, v| if acc.is_nan() { v } else { acc });
        let Some((sequential_ms, after_seq)) = number_after(text, "sequential_ms", after_name)
        else {
            break;
        };
        out.push(Section {
            name,
            rows,
            sequential_ms,
        });
        pos = after_seq;
    }
    out
}

fn main() -> ExitCode {
    let args = Args::capture();
    let baseline_path: String = args.get("baseline", "BENCH_PR3.json".to_string());
    let new_path: String = args.get("new", "BENCH_NEW.json".to_string());
    let tolerance: f64 = args.get("tolerance", 0.25);

    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
    let fresh =
        std::fs::read_to_string(&new_path).unwrap_or_else(|e| panic!("read {new_path}: {e}"));

    let mut failed = false;

    // Correctness is non-negotiable at any scale.
    if fresh.contains("\"function_eq_sequential\": false") {
        eprintln!("FAIL: a parallel run diverged from its sequential reference in {new_path}");
        failed = true;
    }
    if fresh.contains("\"function_eq_sparse\": false") {
        eprintln!("FAIL: a dense run diverged from its sparse reference in {new_path}");
        failed = true;
    }
    if fresh.contains("\"function_eq_cache\": false") {
        eprintln!("FAIL: a cache-served run diverged from a cold recompute in {new_path}");
        failed = true;
    }
    if fresh.contains("\"function_eq_scenarios\": false") {
        eprintln!(
            "FAIL: a scenario batch diverged from its sequential single-scenario loop in {new_path}"
        );
        failed = true;
    }
    if fresh.contains("\"function_eq_scalar\": false") {
        eprintln!("FAIL: a chunked-kernel run diverged from its scalar reference in {new_path}");
        failed = true;
    }
    if fresh.contains("\"function_eq_unfused\": false") {
        eprintln!("FAIL: a fused run diverged from the unfused pipeline in {new_path}");
        failed = true;
    }
    if fresh.contains("\"peak_below_unfused\": false") {
        eprintln!(
            "FAIL: a fused run reported peak intermediate rows at or above the unfused \
             pipeline in {new_path}"
        );
        failed = true;
    }

    let base_sections = parse_sections(&baseline);
    let new_sections = parse_sections(&fresh);
    if base_sections.is_empty() || new_sections.is_empty() {
        eprintln!(
            "FAIL: could not parse benchmark sections (baseline: {}, new: {})",
            base_sections.len(),
            new_sections.len()
        );
        return ExitCode::FAILURE;
    }

    for new in &new_sections {
        let Some(base) = base_sections.iter().find(|b| b.name == new.name) else {
            eprintln!("warn: section {} missing from baseline, skipping", new.name);
            continue;
        };
        let same_scale = (base.rows - new.rows).abs() < 0.5;
        let base_per_row = base.sequential_ms / base.rows.max(1.0);
        let new_per_row = new.sequential_ms / new.rows.max(1.0);
        let ratio = new_per_row / base_per_row.max(f64::MIN_POSITIVE);
        let verdict = if ratio <= 1.0 + tolerance {
            "ok"
        } else if same_scale {
            failed = true;
            "FAIL"
        } else {
            "warn (scale mismatch, not enforced)"
        };
        eprintln!(
            "{}: {:.2}x per-row vs baseline ({:.6} -> {:.6} ms/row at {} vs {} rows) [{}]",
            new.name, ratio, base_per_row, new_per_row, base.rows, new.rows, verdict
        );
    }

    if failed {
        eprintln!("bench_check: regression beyond {:.0}% tolerance", tolerance * 100.0);
        ExitCode::FAILURE
    } else {
        eprintln!("bench_check: within {:.0}% tolerance", tolerance * 100.0);
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
"benchmark": "pr3_parallel",
"rows": 100,
"benchmarks": [
{
  "name": "large_join", "rows_per_side": 100,
  "output_rows": 5,
  "sequential_ms": 10.000,
  "runs": [
    {"threads": 2, "partitions": 4, "ms": 6.0, "speedup": 1.667, "function_eq_sequential": true}
  ]
},
{
  "name": "group_by", "input_rows": 200,
  "groups": 7,
  "sequential_ms": 4.000,
  "runs": []
}
]
}"#;

    #[test]
    fn parses_sections() {
        let s = parse_sections(SAMPLE);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "large_join");
        assert_eq!(s[0].rows, 100.0);
        assert_eq!(s[0].sequential_ms, 10.0);
        assert_eq!(s[1].name, "group_by");
        assert_eq!(s[1].rows, 200.0);
        assert_eq!(s[1].sequential_ms, 4.0);
    }

    #[test]
    fn number_scanner_handles_whitespace() {
        let (v, _) = number_after("{\"x\":  -1.5e2}", "x", 0).unwrap();
        assert_eq!(v, -150.0);
    }
}
