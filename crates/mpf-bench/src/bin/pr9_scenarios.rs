//! Benchmark baseline for the batch what-if engine
//! (`Database::run_scenarios`).
//!
//! On the paper's supply-chain schema (`invest`, five base relations),
//! sweeps scenario-set sizes {1, 10, 100} over two shock workloads —
//! `transporter_shocks` (the touched relation is the 5-row chain tail,
//! so nearly all work is shareable trunk) and `contract_shocks` (the
//! adversarial case: the touched relation directly joins the 10 K-row
//! `location`, so most work sits in each frontier) — and times each
//! size two ways on the same generated data:
//!
//! * **sequential** — a plain loop of single-scenario requests, one
//!   plan + full evaluation per scenario; the median loop time is the
//!   section's `sequential_ms` regression reference;
//! * **batch** — one `run_scenarios` call: scenarios are diffed against
//!   the lowered plan, untouched subtrees are evaluated once as shared
//!   trunks, and the per-scenario frontiers fan out across workers under
//!   one shared budget. Target: ≥3× over sequential at 100 scenarios.
//!
//! Every batch outcome is checked **bit-identical** (`f64::to_bits` on
//! every measure, rows in order) against the sequential answer for the
//! same scenario and reported as `function_eq_scenarios` (a `false`
//! anywhere fails `bench_check` unconditionally). Timings are the median
//! of `--reps` passes.
//!
//! Usage: `pr9_scenarios [--scale <f>] [--reps <n>] [--threads <n>] [--out <path>]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpf_algebra::{ExecLimits, MetricsRegistry, RelationProvider};
use mpf_bench::Args;
use mpf_datagen::supply_chain::RELATION_NAMES;
use mpf_datagen::{SupplyChain, SupplyChainConfig};
use mpf_engine::{Answer, Database, Query, QueryRequest, Scenario, ScenarioReport, ScenarioSet};
use mpf_semiring::Combine;

const BATCH_SIZES: [usize; 3] = [1, 10, 100];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// A database over the generated supply chain with the `invest` view.
fn make_db(sc: &SupplyChain, threads: usize) -> Database {
    let db = Database::from_parts(sc.catalog.clone(), sc.store.clone())
        .with_limits(ExecLimits::none().with_threads(threads));
    let names: Vec<&str> = RELATION_NAMES.to_vec();
    db.create_view("invest", &names, Combine::Product)
        .expect("invest view");
    db
}

/// `n` named scenarios shocking one relation's measures by staggered
/// factors (rows cycle when `n` exceeds the relation).
///
/// Shocking `transporters` is the paper's Section 3 what-if ("what if
/// transporter t went off-line / got more expensive?"): only the 5-row
/// tail of the join chain is touched, so the whole
/// contracts ⋈ location ⋈ warehouses ⋈ ctdeals prefix is a shareable
/// trunk — the workload the batch engine exists for. Shocking
/// `contracts` is the adversarial case: the touched relation joins the
/// 10 K-row `location` directly, so most of the work sits in each
/// scenario's frontier and sharing can save much less.
fn scenarios(db: &Database, relation: &str, n: usize) -> Vec<Scenario> {
    let snap = db.snapshot();
    let rel = snap.relation_of(relation).expect("shock relation");
    (0..n)
        .map(|i| {
            let row = rel.row(i % rel.len()).to_vec();
            let measure = rel.measure(i % rel.len());
            let factor = 1.0 + (1 + i % 97) as f64 / 100.0;
            Scenario::named(format!("s{i}")).measure(relation, row, measure * factor)
        })
        .collect()
}

/// Bit-exact equality: same rows in order, same measure bits.
fn bits_eq(a: &mpf_storage::FunctionalRelation, b: &mpf_storage::FunctionalRelation) -> bool {
    a.len() == b.len()
        && a.rows()
            .zip(b.rows())
            .all(|((ra, ma), (rb, mb))| ra == rb && ma.to_bits() == mb.to_bits())
}

/// Median milliseconds of `reps` timed passes.
fn time_passes<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = None;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        out = Some(f());
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median(samples), out.expect("reps >= 1"))
}

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 0.01);
    let reps: usize = args.get("reps", 3);
    let threads: usize = args.get("threads", 4);
    let out_path: String = args.get("out", "BENCH_PR9.json".to_string());
    let metrics = Arc::new(MetricsRegistry::new());

    let sc = SupplyChain::generate(SupplyChainConfig::at_scale(scale));
    let input_rows: usize = RELATION_NAMES
        .iter()
        .map(|n| sc.store.relation_of(n).map_or(0, |r| r.len()))
        .sum();
    eprintln!("supply chain at scale {scale}: {input_rows} base rows");

    let db = make_db(&sc, threads).with_metrics(Arc::clone(&metrics));
    let q = Query::on("invest").group_by(["cid"]);

    let mut sections = Vec::new();
    let cases = [
        ("transporter_shocks", "transporters"),
        ("contract_shocks", "contracts"),
    ]
    .into_iter()
    .flat_map(|(w, r)| BATCH_SIZES.map(move |n| (w, r, n)));
    for (workload, relation, n) in cases {
        let scs = scenarios(&db, relation, n);

        let (seq_ms, seq_answers) = time_passes(reps, || -> Vec<Answer> {
            scs.iter()
                .map(|s| {
                    db.run(QueryRequest::from(&q).scenario(s.clone()))
                        .expect("sequential scenario")
                })
                .collect()
        });

        let (batch_ms, report) = time_passes(reps, || -> ScenarioReport {
            let set: ScenarioSet = scs.clone().into_iter().collect();
            db.run_scenarios(QueryRequest::from(&q).scenario_set(set))
                .expect("scenario batch")
        });

        let eq = report.outcomes.len() == seq_answers.len()
            && report
                .outcomes
                .iter()
                .zip(&seq_answers)
                .all(|(o, s)| bits_eq(&o.answer.relation, &s.relation));
        let speedup = seq_ms / batch_ms;
        eprintln!(
            "{workload}_{n}: sequential {seq_ms:.1} ms, batch {batch_ms:.1} ms \
             ({speedup:.2}x, eq {eq}, trunks {} built / {} hits)",
            report.trunk_builds, report.trunk_hits
        );
        if workload == "transporter_shocks" && n == 100 && speedup < 3.0 {
            eprintln!("warn: 100-scenario speedup {speedup:.2}x below the 3x target");
        }
        metrics.observe(
            &format!("bench.scenario.{workload}.batch{n}"),
            Duration::from_secs_f64(batch_ms / 1e3),
        );
        sections.push(format!(
            "{{\n  \"name\": \"{workload}_{n}\", \"input_rows\": {input_rows},\n  \
             \"sequential_ms\": {seq_ms:.3},\n  \"runs\": [\n    \
             {{\"scenarios\": {n}, \"threads\": {threads}, \"ms\": {batch_ms:.3}, \
             \"speedup\": {speedup:.3}, \"trunk_builds\": {}, \"trunk_hits\": {}, \
             \"function_eq_scenarios\": {eq}}}\n  ]\n}}",
            report.trunk_builds, report.trunk_hits
        ));
    }

    let json = format!(
        "{{\n\"benchmark\": \"pr9_scenarios\",\n\"scale\": {scale},\n\"reps\": {reps},\n\
         \"host_threads\": {},\n\
         \"benchmarks\": [\n{}\n],\n\"metrics\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        sections.join(",\n"),
        metrics.to_json()
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
