//! Benchmark baseline for the parallel execution layer.
//!
//! Measures sequential vs. parallel execution of the three shapes the
//! layer accelerates, at 1/2/4/8 worker threads:
//!
//! * **large_join** — sparse product join of two `--rows`-row relations
//!   (plain hash join vs. [`mpf_algebra::partitioned::parallel_join`]);
//! * **group_by** — marginalization of a `--rows`-row relation onto a
//!   ~128k-value variable (hash aggregate vs. `parallel_group_by`);
//! * **ve_plus_end_to_end** — a three-relation chain query planned with
//!   extended-space VE and executed through the physical interpreter,
//!   sequential plan vs. the plan `choose_physical` annotates for N
//!   threads.
//!
//! Every parallel run is checked `function_eq` against the sequential
//! result. Timings are the median of `--reps` runs after one untimed
//! warmup (first-touch page faults otherwise dominate the first run).
//! Results are written as JSON to `--out` (default `BENCH_PR3.json`);
//! per-run counters/latency histograms from the metrics registry are
//! embedded under a `"metrics"` key, and one span-traced VE+ execution
//! is written to `--trace-out` (default `TRACE_PR3.json`) so CI can
//! archive an operator-level trace next to the timings.
//!
//! Usage: `pr3_parallel [--rows <n>] [--reps <n>] [--scale <f>]
//!         [--out <path>] [--trace-out <path>]`

use std::time::{Duration, Instant};

use mpf_algebra::{
    ops, partitioned, ExecContext, Executor, MetricsRegistry, RelationStore, TraceLevel,
};
use mpf_bench::Args;
use mpf_optimizer::{
    choose_physical, optimize, Algorithm, BaseRel, CostModel, Heuristic, OptContext,
    PhysicalConfig, QuerySpec,
};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, Value};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SR: SemiringKind = SemiringKind::SumProduct;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    // Splitmix-style finalizer: raw xorshift outputs are GF(2)-linear, so
    // the low bits of *consecutive* outputs are correlated — bad when
    // consecutive draws fill the columns of one row and uniqueness is
    // enforced by rejection (the reachable tuple set collapses).
    let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sparse random relation: `rows` draws over the given domains.
fn sparse(
    name: &str,
    schema: Schema,
    domains: &[u64],
    rows: usize,
    seed: u64,
) -> FunctionalRelation {
    let mut rel = FunctionalRelation::new(name, schema);
    let mut state = seed | 1;
    let mut row = vec![0 as Value; domains.len()];
    // Argument tuples must be unique — a functional relation maps each
    // assignment to ONE measure, and duplicate keys would make the
    // function-equality check order-dependent.
    let mut seen = std::collections::HashSet::with_capacity(rows);
    for _ in 0..rows {
        loop {
            for (v, &d) in row.iter_mut().zip(domains) {
                *v = (xorshift(&mut state) % d) as Value;
            }
            if seen.insert(row.clone()) {
                break;
            }
        }
        let m = 1.0 + (xorshift(&mut state) % 100) as f64 / 100.0;
        rel.push_row(&row, m).expect("row matches schema");
    }
    rel
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Median wall-clock milliseconds of `reps` runs after one warmup.
fn time_ms(reps: usize, mut f: impl FnMut() -> FunctionalRelation) -> (f64, FunctionalRelation) {
    let mut out = f(); // warmup (also the returned result)
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median(samples), out)
}

struct Run {
    threads: usize,
    partitions: usize,
    ms: f64,
    speedup: f64,
    eq: bool,
}

/// Feed one timed run into the registry: a per-section run counter plus a
/// latency histogram keyed by section and worker count (`sequential` for
/// the single-threaded reference run).
fn feed(metrics: &MetricsRegistry, section: &str, threads: Option<usize>, ms: f64) {
    metrics.inc(&format!("bench.{section}.runs"));
    let key = match threads {
        Some(t) => format!("bench.{section}.t{t}"),
        None => format!("bench.{section}.sequential"),
    };
    metrics.observe(&key, Duration::from_secs_f64(ms / 1e3));
}

fn runs_json(sequential_ms: f64, runs: &[Run]) -> String {
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"partitions\": {}, \"ms\": {:.3}, \
                 \"speedup\": {:.3}, \"function_eq_sequential\": {}}}",
                r.threads, r.partitions, r.ms, r.speedup, r.eq
            )
        })
        .collect();
    format!(
        "\"sequential_ms\": {:.3},\n  \"runs\": [\n{}\n  ]",
        sequential_ms,
        rows.join(",\n")
    )
}

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 1.0);
    let rows: usize = ((args.get("rows", 2_000_000usize) as f64) * scale) as usize;
    let reps: usize = args.get("reps", 3);
    let out_path: String = args.get("out", "BENCH_PR3.json".to_string());
    let trace_path: String = args.get("trace-out", "TRACE_PR3.json".to_string());
    let metrics = MetricsRegistry::new();

    let mut sections = Vec::new();

    // -- large_join ------------------------------------------------------
    let mut cat = Catalog::new();
    let x = cat.add_var("x", 1 << 10).expect("var");
    let y = cat.add_var("y", 1 << 20).expect("var");
    let z = cat.add_var("z", 1 << 10).expect("var");
    let l = sparse(
        "l",
        Schema::new(vec![x, y]).expect("schema"),
        &[1 << 10, 1 << 20],
        rows,
        0x9E37_79B9_7F4A_7C15,
    );
    let r = sparse(
        "r",
        Schema::new(vec![y, z]).expect("schema"),
        &[1 << 20, 1 << 10],
        rows,
        0xD1B5_4A32_D192_ED03,
    );
    let (seq_ms, seq_out) = time_ms(reps, || {
        ops::product_join(&mut ExecContext::new(SR), &l, &r).expect("join fits")
    });
    eprintln!("large_join: sequential {seq_ms:.1} ms, {} rows", seq_out.len());
    feed(&metrics, "large_join", None, seq_ms);
    let mut runs = Vec::new();
    for &t in &THREAD_COUNTS {
        let (ms, out) = time_ms(reps, || {
            partitioned::parallel_join(&mut ExecContext::new(SR), &l, &r, t).expect("join fits")
        });
        let run = Run {
            threads: t,
            partitions: partitioned::parallel_partitions(
                l.len().min(r.len()),
                l.row_bytes().max(r.row_bytes()),
                t,
            ),
            ms,
            speedup: seq_ms / ms,
            eq: out.function_eq_in(&seq_out, SR),
        };
        eprintln!(
            "large_join: threads {t} -> {ms:.1} ms ({:.2}x, eq {})",
            run.speedup, run.eq
        );
        feed(&metrics, "large_join", Some(t), ms);
        runs.push(run);
    }
    sections.push(format!(
        "{{\n  \"name\": \"large_join\", \"rows_per_side\": {rows},\n  \"output_rows\": {},\n  {}\n}}",
        seq_out.len(),
        runs_json(seq_ms, &runs)
    ));

    // -- group_by --------------------------------------------------------
    let mut gcat = Catalog::new();
    let g = gcat.add_var("g", 1 << 17).expect("var");
    let w = gcat.add_var("w", 1 << 8).expect("var");
    let gb_rows = rows.max(1) * 2;
    let input = sparse(
        "input",
        Schema::new(vec![g, w]).expect("schema"),
        &[1 << 17, 1 << 8],
        gb_rows,
        0xA076_1D64_78BD_642F,
    );
    let (gseq_ms, gseq_out) = time_ms(reps, || {
        ops::group_by(&mut ExecContext::new(SR), &input, &[g]).expect("agg fits")
    });
    eprintln!("group_by: sequential {gseq_ms:.1} ms, {} groups", gseq_out.len());
    feed(&metrics, "group_by", None, gseq_ms);
    let mut gruns = Vec::new();
    for &t in &THREAD_COUNTS {
        let (ms, out) = time_ms(reps, || {
            partitioned::parallel_group_by(&mut ExecContext::new(SR), &input, &[g], t)
                .expect("agg fits")
        });
        let run = Run {
            threads: t,
            partitions: partitioned::parallel_partitions(input.len(), input.row_bytes(), t),
            ms,
            speedup: gseq_ms / ms,
            eq: out.function_eq_in(&gseq_out, SR),
        };
        eprintln!(
            "group_by: threads {t} -> {ms:.1} ms ({:.2}x, eq {})",
            run.speedup, run.eq
        );
        feed(&metrics, "group_by", Some(t), ms);
        gruns.push(run);
    }
    sections.push(format!(
        "{{\n  \"name\": \"group_by\", \"input_rows\": {gb_rows},\n  \"groups\": {},\n  {}\n}}",
        gseq_out.len(),
        runs_json(gseq_ms, &gruns)
    ));

    // -- ve_plus_end_to_end ----------------------------------------------
    let mut vcat = Catalog::new();
    let a = vcat.add_var("a", 1 << 8).expect("var");
    let b = vcat.add_var("b", 1 << 20).expect("var");
    let c = vcat.add_var("c", 1 << 20).expect("var");
    let d = vcat.add_var("d", 1 << 8).expect("var");
    let r1 = sparse(
        "r1",
        Schema::new(vec![a, b]).expect("schema"),
        &[1 << 8, 1 << 20],
        rows,
        0x2545_F491_4F6C_DD1D,
    );
    let r2 = sparse(
        "r2",
        Schema::new(vec![b, c]).expect("schema"),
        &[1 << 20, 1 << 20],
        rows,
        0x9E6D_62D0_6F6A_9A9B,
    );
    let r3 = sparse(
        "r3",
        Schema::new(vec![c, d]).expect("schema"),
        &[1 << 20, 1 << 8],
        rows,
        0xC2B2_AE3D_27D4_EB4F,
    );
    let mut store = RelationStore::new();
    let base = |rel: &FunctionalRelation| BaseRel {
        name: rel.name().to_string(),
        schema: rel.schema().clone(),
        cardinality: rel.len() as u64,
        fd_lhs: None,
    };
    let rels = vec![base(&r1), base(&r2), base(&r3)];
    store.insert(r1);
    store.insert(r2);
    store.insert(r3);
    let ctx = OptContext::new(&vcat, rels, QuerySpec::group_by([a]), CostModel::Io);
    let plan = optimize(&ctx, Algorithm::VePlus(Heuristic::Degree)).plan;
    // A large memory budget keeps every operator memory-resident, so the
    // sequential/parallel comparison is hash operators vs. their parallel
    // partitioned counterparts (not a spill-strategy change). Alternate
    // representations are pinned off for the same reason: this baseline
    // times the row-major hash operators, whatever `MPF_REPR` says.
    let cfg = PhysicalConfig {
        memory_rows: 1e9,
        repr_mode: mpf_algebra::ReprMode::Off,
        ..PhysicalConfig::default()
    };
    let phys_for = |t: usize| choose_physical(&ctx, &plan, cfg.with_threads(t));
    let seq_phys = phys_for(1);
    let (vseq_ms, vseq_out) = time_ms(reps, || {
        let exec = Executor::new(&store, SR).with_threads(1);
        let (rel, _) = exec.execute_physical(&seq_phys).expect("plan executes");
        rel
    });
    eprintln!("ve_plus: sequential {vseq_ms:.1} ms, {} rows", vseq_out.len());
    feed(&metrics, "ve_plus", None, vseq_ms);
    let mut vruns = Vec::new();
    for &t in &THREAD_COUNTS {
        let phys = phys_for(t);
        let (ms, out) = time_ms(reps, || {
            let exec = Executor::new(&store, SR).with_threads(t);
            let (rel, _) = exec.execute_physical(&phys).expect("plan executes");
            rel
        });
        let run = Run {
            threads: t,
            partitions: phys.parallel_operator_count(),
            ms,
            speedup: vseq_ms / ms,
            eq: out.function_eq_in(&vseq_out, SR),
        };
        eprintln!(
            "ve_plus: threads {t} -> {ms:.1} ms ({:.2}x, eq {}, {} parallel ops)",
            run.speedup, run.eq, run.partitions
        );
        feed(&metrics, "ve_plus", Some(t), ms);
        vruns.push(run);
    }
    sections.push(format!(
        "{{\n  \"name\": \"ve_plus_end_to_end\", \"rows_per_relation\": {rows},\n  \"result_rows\": {},\n  {}\n}}",
        vseq_out.len(),
        runs_json(vseq_ms, &vruns)
    ));

    // -- traced VE+ run --------------------------------------------------
    // One span-traced execution of the widest parallel VE+ plan: the trace
    // JSON is the CI artifact that shows per-operator rows/cells/time and
    // partition/worker counts for this commit.
    let trace_threads = *THREAD_COUNTS.last().expect("non-empty");
    let traced_phys = phys_for(trace_threads);
    let mut tcx = ExecContext::new(SR)
        .with_threads(trace_threads)
        .with_trace(TraceLevel::Spans);
    let texec = Executor::new(&store, SR).with_threads(trace_threads);
    texec
        .execute_physical_in(&mut tcx, &traced_phys)
        .expect("plan executes");
    let trace = tcx.take_trace();
    eprintln!(
        "traced ve_plus at {trace_threads} threads: {} spans",
        trace.span_count()
    );
    std::fs::write(&trace_path, trace.to_json()).expect("write trace json");
    eprintln!("wrote {trace_path}");

    // The `partitions` field of ve_plus runs holds the parallel operator
    // count of the executed plan (the per-operator partition counts live
    // in the plan annotations).
    let json = format!(
        "{{\n\"benchmark\": \"pr3_parallel\",\n\"rows\": {rows},\n\"reps\": {reps},\n\
         \"host_threads\": {},\n\"benchmarks\": [\n{}\n],\n\"metrics\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        sections.join(",\n"),
        metrics.to_json()
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
