//! Validation sweep for the Section 5.1 plan-linearity test (Eq. 1).
//!
//! The paper derives Eq. 1 as a *conservative* test: when it fails, only a
//! nonlinear plan can pre-reduce the smallest relation containing the query
//! variable. This harness sweeps the query variable's domain size against a
//! fixed relation layout, and reports whether the Eq. 1 verdict predicts
//! when the nonlinear CS+ plan is strictly cheaper than the best linear
//! plan — an ablation of the test's predictive power that the paper
//! demonstrates on just two points (Q1, Q2 of Figure 7).
//!
//! Usage: `eq1_validation [--steps <n>]`

use mpf_bench::Args;
use mpf_optimizer::{
    linearity::linearity_test, optimize, Algorithm, BaseRel, CostModel, OptContext, QuerySpec,
};
use mpf_storage::{Catalog, Schema};

fn main() {
    let args = Args::capture();
    let steps: u32 = args.get("steps", 10);

    println!("Eq. 1 validation: x appears in s1 (200k rows) and s2 (50k rows)");
    println!();
    println!(
        "{:>10} {:>10} {:>6}  {:>14} {:>14}  {:>9} {:>9}",
        "sigma", "sigma_hat", "Eq.1", "linear cost", "nonlin cost", "gain", "agree"
    );

    let mut agreements = 0u32;
    for step in 0..steps {
        // Sweep |dom(x)| from tiny (nonlinear pays) to huge (linear fine).
        let sigma = 10u64.saturating_mul(6u64.saturating_pow(step));
        let mut cat = Catalog::new();
        let x = cat.add_var("x", sigma).unwrap();
        let u = cat.add_var("u", 2000).unwrap();
        let w = cat.add_var("w", 2000).unwrap();
        let rels = vec![
            BaseRel {
                name: "s1".into(),
                schema: Schema::new(vec![x, u]).unwrap(),
                cardinality: 200_000,
                fd_lhs: None,
            },
            BaseRel {
                name: "s2".into(),
                schema: Schema::new(vec![x, w]).unwrap(),
                cardinality: 50_000,
                fd_lhs: None,
            },
            BaseRel {
                name: "s3".into(),
                schema: Schema::new(vec![u]).unwrap(),
                cardinality: 2000,
                fd_lhs: None,
            },
        ];
        let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([x]), CostModel::Io);
        let t = linearity_test(&ctx, x);
        let lin = optimize(&ctx, Algorithm::CsPlusLinear).est_cost;
        let non = optimize(&ctx, Algorithm::CsPlusNonlinear).est_cost;
        let gain = lin / non;
        // Eq. 1 is conservative: "admissible" predicts no *substantial*
        // nonlinear gain; failure predicts a real gain.
        let agree = if t.linear_admissible {
            gain < 1.10
        } else {
            gain > 1.0 + 1e-9
        };
        agreements += agree as u32;
        println!(
            "{:>10} {:>10} {:>6}  {:>14.0} {:>14.0}  {:>8.2}x {:>9}",
            t.sigma, t.sigma_hat, t.linear_admissible, lin, non, gain, agree
        );
    }
    println!();
    println!("verdict agreement: {agreements}/{steps}");
}
