//! Benchmark baseline for the transparent view cache (`ViewCache`).
//!
//! Runs the paper's supply-chain workload (`invest`, five base
//! relations) three ways on the same generated data:
//!
//! * **cold** — every query plans and executes from scratch
//!   (`Database` with the cache detached); the median workload-pass
//!   time is the section's `sequential_ms` regression reference;
//! * **warm** — the same workload against a cache-enabled database
//!   after two untimed warming passes: the base elimination tree is
//!   resident, group-by queries marginalize cached clique tables, and
//!   evidence queries derive conditioned trees from the resident base.
//!   Target: ≥5× over cold;
//! * **invalidation storm** — a point measure update
//!   (`Database::update_measure`) before every workload pass. Each
//!   install invalidates the resident trees; the sum-product semiring
//!   admits division, so entries are patched forward with the paper's
//!   Section 6 update semijoin instead of rebuilt.
//!
//! Every cached answer is checked `function_eq` against the cold
//! database's answer for the same query and reported as
//! `function_eq_cache` (a `false` anywhere fails `bench_check`
//! unconditionally). Timings are the median of `--reps` passes.
//!
//! Usage: `pr8_cache [--scale <f>] [--reps <n>] [--out <path>]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpf_algebra::{ExecLimits, MetricsRegistry, RelationProvider};
use mpf_bench::Args;
use mpf_datagen::supply_chain::RELATION_NAMES;
use mpf_datagen::{SupplyChain, SupplyChainConfig};
use mpf_engine::{Database, Query};
use mpf_semiring::Combine;
use mpf_storage::Value;

const THREAD_COUNTS: [usize; 2] = [1, 4];
const CACHE_BUDGET: u64 = 256 << 20;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// The benchmark workload: the Section 3.1 query mix over `invest` —
/// marginals per variable, a pair marginal, and an evidence query.
fn workload() -> Vec<Query> {
    vec![
        Query::on("invest").group_by(["cid"]),
        Query::on("invest").group_by(["tid"]),
        Query::on("invest").group_by(["wid"]),
        Query::on("invest").group_by(["cid", "tid"]),
        Query::on("invest").group_by(["cid"]).filter("tid", 1),
    ]
}

/// A database over the generated supply chain with the `invest` view.
fn make_db(sc: &SupplyChain, cache_bytes: u64, threads: usize) -> Database {
    let db = Database::from_parts(sc.catalog.clone(), sc.store.clone())
        .with_limits(ExecLimits::none().with_threads(threads))
        .with_cache_bytes(cache_bytes);
    let names: Vec<&str> = RELATION_NAMES.to_vec();
    db.create_view("invest", &names, Combine::Product)
        .expect("invest view");
    db
}

/// One timed pass: run every workload query once; answers returned for
/// the correctness check.
fn pass(db: &Database) -> Vec<mpf_engine::Answer> {
    workload()
        .iter()
        .map(|q| db.run(q).expect("query"))
        .collect()
}

/// Median milliseconds of `reps` timed passes (no warmup here; callers
/// warm explicitly when the scenario calls for it).
fn time_passes(reps: usize, mut f: impl FnMut() -> Vec<mpf_engine::Answer>) -> (f64, Vec<mpf_engine::Answer>) {
    let mut out = Vec::new();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median(samples), out)
}

/// `function_eq` between two workload-pass answer sets.
fn passes_eq(a: &[mpf_engine::Answer], b: &[mpf_engine::Answer]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.relation.function_eq(&y.relation))
}

/// A row of `contracts` to update in the storm (with its measure).
fn storm_row(db: &Database) -> (Vec<Value>, f64) {
    let snap = db.snapshot();
    let rel = snap.relation_of("contracts").expect("contracts");
    (rel.row(0).to_vec(), rel.measure(0))
}

/// Halve-or-double the first `contracts` row (exact patch ratios), then
/// run one workload pass.
fn storm_pass(db: &Database) -> Vec<mpf_engine::Answer> {
    let (row, old) = storm_row(db);
    let new = if old.abs() >= 1.0 { old / 2.0 } else { old * 2.0 };
    db.update_measure("contracts", &row, new).expect("update");
    pass(db)
}

struct Run {
    threads: usize,
    ms: f64,
    speedup: f64,
    eq: bool,
    cache_hits: u64,
    cache_patched: u64,
}

fn runs_json(sequential_ms: f64, runs: &[Run]) -> String {
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"ms\": {:.3}, \"speedup\": {:.3}, \
                 \"cache_hits\": {}, \"cache_patched\": {}, \"function_eq_cache\": {}}}",
                r.threads, r.ms, r.speedup, r.cache_hits, r.cache_patched, r.eq
            )
        })
        .collect();
    format!(
        "\"sequential_ms\": {:.3},\n  \"runs\": [\n{}\n  ]",
        sequential_ms,
        rows.join(",\n")
    )
}

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 0.02);
    let reps: usize = args.get("reps", 5);
    let out_path: String = args.get("out", "BENCH_PR8.json".to_string());
    let metrics = Arc::new(MetricsRegistry::new());

    let sc = SupplyChain::generate(SupplyChainConfig::at_scale(scale));
    let input_rows: usize = RELATION_NAMES
        .iter()
        .map(|n| sc.store.relation_of(n).map_or(0, |r| r.len()))
        .sum();
    eprintln!("supply chain at scale {scale}: {input_rows} base rows");

    let mut sections = Vec::new();

    // Section 1: cold vs warm. The cold single-thread pass is the
    // sequential regression reference for both sections.
    let cold = make_db(&sc, 0, 1);
    let (cold_ms, cold_answers) = time_passes(reps, || pass(&cold));
    eprintln!("cache_workload: cold {cold_ms:.1} ms / pass");
    metrics.observe("bench.cache.cold", Duration::from_secs_f64(cold_ms / 1e3));

    let mut runs = Vec::new();
    for &t in &THREAD_COUNTS {
        let warm = make_db(&sc, CACHE_BUDGET, t).with_metrics(Arc::clone(&metrics));
        for _ in 0..2 {
            pass(&warm); // record demand, build, admit, derive
        }
        let (ms, answers) = time_passes(reps, || pass(&warm));
        let vc = warm.view_cache().expect("cache enabled");
        let run = Run {
            threads: t,
            ms,
            speedup: cold_ms / ms,
            eq: passes_eq(&answers, &cold_answers),
            cache_hits: vc.counter("hits"),
            cache_patched: vc.counter("patched"),
        };
        eprintln!(
            "cache_workload: warm, threads {t} -> {ms:.1} ms ({:.2}x, eq {}, {} hits)",
            run.speedup, run.eq, run.cache_hits
        );
        if run.speedup < 5.0 {
            eprintln!("warn: warm speedup {:.2}x below the 5x target", run.speedup);
        }
        metrics.observe(
            &format!("bench.cache.warm.t{t}"),
            Duration::from_secs_f64(ms / 1e3),
        );
        runs.push(run);
    }
    sections.push(format!(
        "{{\n  \"name\": \"cache_workload\", \"input_rows\": {input_rows},\n  {}\n}}",
        runs_json(cold_ms, &runs)
    ));

    // Section 2: invalidation storm — a point update before every pass.
    // Cold reference pays a full recompute either way; the cached
    // database must patch its resident trees forward and keep serving.
    let cold_storm = make_db(&sc, 0, 1);
    let (cold_storm_ms, _) = time_passes(reps, || storm_pass(&cold_storm));
    eprintln!("cache_invalidation_storm: cold {cold_storm_ms:.1} ms / update+pass");

    let mut storm_runs = Vec::new();
    for &t in &THREAD_COUNTS {
        let warm = make_db(&sc, CACHE_BUDGET, t).with_metrics(Arc::clone(&metrics));
        for _ in 0..2 {
            pass(&warm);
        }
        let (ms, answers) = time_passes(reps, || storm_pass(&warm));
        // Correctness against a cold database driven through the same
        // number of updates: every `make_db` clones the generated store,
        // and the halve/double storm is deterministic, so `reps` storm
        // passes land the reference on the warm database's final state.
        let reference = make_db(&sc, 0, 1);
        let mut ref_answers = Vec::new();
        for _ in 0..reps {
            ref_answers = storm_pass(&reference);
        }
        let vc = warm.view_cache().expect("cache enabled");
        let run = Run {
            threads: t,
            ms,
            speedup: cold_storm_ms / ms,
            eq: passes_eq(&answers, &ref_answers),
            cache_hits: vc.counter("hits"),
            cache_patched: vc.counter("patched"),
        };
        eprintln!(
            "cache_invalidation_storm: warm, threads {t} -> {ms:.1} ms \
             ({:.2}x, eq {}, {} patched)",
            run.speedup, run.eq, run.cache_patched
        );
        metrics.observe(
            &format!("bench.cache.storm.t{t}"),
            Duration::from_secs_f64(ms / 1e3),
        );
        storm_runs.push(run);
    }
    sections.push(format!(
        "{{\n  \"name\": \"cache_invalidation_storm\", \"input_rows\": {input_rows},\n  {}\n}}",
        runs_json(cold_storm_ms, &storm_runs)
    ));

    let json = format!(
        "{{\n\"benchmark\": \"pr8_cache\",\n\"scale\": {scale},\n\"reps\": {reps},\n\
         \"cache_budget_bytes\": {CACHE_BUDGET},\n\"host_threads\": {},\n\
         \"benchmarks\": [\n{}\n],\n\"metrics\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        sections.join(",\n"),
        metrics.to_json()
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
