//! Benchmark baseline for the dense odometer kernels.
//!
//! Measures the sparse hash operators vs. the dense fast path on the
//! complete-relation workloads the paper's inference experiments run:
//!
//! * **dense_join** — product join of two complete relations
//!   ([`mpf_algebra::ops::product_join`] vs. [`mpf_algebra::dense::join`]);
//! * **dense_group_by** — marginalization of the complete join output
//!   onto one variable (hash aggregate vs. [`mpf_algebra::dense::agg`]);
//! * **ve_plus_end_to_end** — a three-relation chain query planned with
//!   extended-space VE and executed through the physical interpreter,
//!   the all-hash plan (`MPF_DENSE=off` planning) vs. the plan
//!   `choose_physical` annotates with `Dense`/`DenseAgg` under
//!   [`DenseMode::Auto`].
//!
//! Every dense run is checked `function_eq` against the sparse result and
//! reported as `function_eq_sparse` (a `false` anywhere fails
//! `bench_check` unconditionally). The `sequential_ms` reference of each
//! section is the single-threaded *sparse* time, so the regression gate
//! tracks the fallback path too. Timings are the median of `--reps` runs
//! after one untimed warmup.
//!
//! Usage: `pr5_dense [--rows <n>] [--reps <n>] [--scale <f>] [--out <path>]`

use std::time::{Duration, Instant};

use mpf_algebra::{
    dense, ops, DenseMode, ExecContext, Executor, KernelMode, MetricsRegistry, RelationStore,
};
use mpf_bench::Args;
use mpf_optimizer::{
    choose_physical, optimize, Algorithm, BaseRel, CostModel, Heuristic, OptContext,
    PhysicalConfig, QuerySpec,
};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema};

const THREAD_COUNTS: [usize; 2] = [1, 4];
const SR: SemiringKind = SemiringKind::SumProduct;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Median wall-clock milliseconds of `reps` runs after one warmup.
fn time_ms(reps: usize, mut f: impl FnMut() -> FunctionalRelation) -> (f64, FunctionalRelation) {
    let mut out = f(); // warmup (also the returned result)
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median(samples), out)
}

struct Run {
    threads: usize,
    dense_ops: u64,
    ms: f64,
    speedup: f64,
    eq: bool,
}

/// Feed one timed run into the registry, keyed by section and path.
fn feed(metrics: &MetricsRegistry, section: &str, threads: Option<usize>, ms: f64) {
    metrics.inc(&format!("bench.{section}.runs"));
    let key = match threads {
        Some(t) => format!("bench.{section}.dense.t{t}"),
        None => format!("bench.{section}.sparse"),
    };
    metrics.observe(&key, Duration::from_secs_f64(ms / 1e3));
}

fn runs_json(sequential_ms: f64, runs: &[Run]) -> String {
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"dense_ops\": {}, \"ms\": {:.3}, \
                 \"speedup\": {:.3}, \"function_eq_sparse\": {}}}",
                r.threads, r.dense_ops, r.ms, r.speedup, r.eq
            )
        })
        .collect();
    format!(
        "\"sequential_ms\": {:.3},\n  \"runs\": [\n{}\n  ]",
        sequential_ms,
        rows.join(",\n")
    )
}

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 1.0);
    let rows: usize = ((args.get("rows", 16384usize) as f64) * scale) as usize;
    let reps: usize = args.get("reps", 3);
    let out_path: String = args.get("out", "BENCH_PR5.json".to_string());
    let metrics = MetricsRegistry::new();

    let mut sections = Vec::new();

    // -- dense_join ------------------------------------------------------
    // Two complete relations sharing a 64-value variable; the union grid
    // (side × 64 × side) is the dense join's output. `--rows` is the
    // per-side row count, so side = rows / 64.
    let side = (rows / 64).max(2) as u64;
    let mut cat = Catalog::new();
    let a = cat.add_var("a", side).expect("var");
    let b = cat.add_var("b", 64).expect("var");
    let c = cat.add_var("c", side).expect("var");
    let l = FunctionalRelation::complete("l", Schema::new(vec![a, b]).expect("schema"), &cat, |r| {
        1.0 + ((r[0] as u64 * 31 + r[1] as u64 * 7) % 97) as f64 / 97.0
    });
    let r = FunctionalRelation::complete("r", Schema::new(vec![b, c]).expect("schema"), &cat, |r| {
        1.0 + ((r[0] as u64 * 13 + r[1] as u64 * 5) % 89) as f64 / 89.0
    });
    let rows_per_side = l.len();
    let (seq_ms, seq_out) = time_ms(reps, || {
        ops::product_join(&mut ExecContext::new(SR), &l, &r).expect("join fits")
    });
    eprintln!("dense_join: sparse {seq_ms:.1} ms, {} rows", seq_out.len());
    feed(&metrics, "dense_join", None, seq_ms);
    let mut runs = Vec::new();
    for &t in &THREAD_COUNTS {
        let (ms, out) = time_ms(reps, || {
            dense::join(&mut ExecContext::new(SR).with_threads(t), &l, &r).expect("join fits")
        });
        let mut cx = ExecContext::new(SR).with_threads(t);
        dense::join(&mut cx, &l, &r).expect("join fits");
        let run = Run {
            threads: t,
            dense_ops: cx.stats().dense_joins,
            ms,
            speedup: seq_ms / ms,
            eq: out.function_eq(&seq_out),
        };
        eprintln!(
            "dense_join: threads {t} -> {ms:.1} ms ({:.2}x, eq {})",
            run.speedup, run.eq
        );
        feed(&metrics, "dense_join", Some(t), ms);
        runs.push(run);
    }
    sections.push(format!(
        "{{\n  \"name\": \"dense_join\", \"rows_per_side\": {rows_per_side},\n  \"output_rows\": {},\n  {}\n}}",
        seq_out.len(),
        runs_json(seq_ms, &runs)
    ));

    // -- dense_group_by --------------------------------------------------
    // Marginalize the complete join output onto its first variable. The
    // input comes from the *dense* join: in a dense pipeline an
    // aggregation's input is itself a dense operator's output, so it
    // arrives in grid (odometer) order — the form the zero-copy borrow
    // requires. (The hash join's output is the same function in hash
    // order, which the dense path would refuse.)
    let input = dense::join(&mut ExecContext::new(SR), &l, &r).expect("join fits");
    assert!(input.function_eq(&seq_out), "dense join matches sparse");
    let gb_rows = input.len();
    let (gseq_ms, gseq_out) = time_ms(reps, || {
        ops::group_by(&mut ExecContext::new(SR), &input, &[a]).expect("agg fits")
    });
    eprintln!("dense_group_by: sparse {gseq_ms:.1} ms, {} groups", gseq_out.len());
    feed(&metrics, "dense_group_by", None, gseq_ms);
    let mut gruns = Vec::new();
    for &t in &THREAD_COUNTS {
        let (ms, out) = time_ms(reps, || {
            dense::agg(&mut ExecContext::new(SR).with_threads(t), &input, &[a]).expect("agg fits")
        });
        let mut cx = ExecContext::new(SR).with_threads(t);
        dense::agg(&mut cx, &input, &[a]).expect("agg fits");
        let run = Run {
            threads: t,
            dense_ops: cx.stats().dense_group_bys,
            ms,
            speedup: gseq_ms / ms,
            eq: out.function_eq(&gseq_out),
        };
        eprintln!(
            "dense_group_by: threads {t} -> {ms:.1} ms ({:.2}x, eq {})",
            run.speedup, run.eq
        );
        feed(&metrics, "dense_group_by", Some(t), ms);
        gruns.push(run);
    }
    sections.push(format!(
        "{{\n  \"name\": \"dense_group_by\", \"input_rows\": {gb_rows},\n  \"groups\": {},\n  {}\n}}",
        gseq_out.len(),
        runs_json(gseq_ms, &gruns)
    ));

    // -- ve_plus_end_to_end ----------------------------------------------
    // The paper's inference shape: a chain of complete factors, planned
    // with extended-space VE, marginalized onto the head variable. The
    // reference plan is chosen with dense planning off; the dense plans
    // under DenseMode::Auto (complete base relations estimate density 1.0,
    // so every join and marginalization annotates dense).
    // The tail variables get domain rows/8 (2048 at the default scale),
    // so the base factor r3(c, d) is a complete ~4M-cell grid and the
    // dominant operator is its marginalization γ_c(r3) — eliminating d
    // from a large complete factor, the paper's core inference
    // bottleneck — still under MAX_DENSE_CELLS.
    let vside = (rows / 8).max(2) as u64;
    let mut vcat = Catalog::new();
    let va = vcat.add_var("a", 32).expect("var");
    let vb = vcat.add_var("b", 32).expect("var");
    let vc = vcat.add_var("c", vside).expect("var");
    let vd = vcat.add_var("d", vside).expect("var");
    let r1 = FunctionalRelation::complete("r1", Schema::new(vec![va, vb]).expect("schema"), &vcat, |r| {
        1.0 + ((r[0] as u64 * 19 + r[1] as u64 * 3) % 83) as f64 / 83.0
    });
    let r2 = FunctionalRelation::complete("r2", Schema::new(vec![vb, vc]).expect("schema"), &vcat, |r| {
        1.0 + ((r[0] as u64 * 11 + r[1] as u64 * 17) % 79) as f64 / 79.0
    });
    let r3 = FunctionalRelation::complete("r3", Schema::new(vec![vc, vd]).expect("schema"), &vcat, |r| {
        1.0 + ((r[0] as u64 * 23 + r[1] as u64 * 29) % 73) as f64 / 73.0
    });
    // Scale key: the dominant (largest) factor in the chain.
    let rows_per_relation = r3.len();
    let mut store = RelationStore::new();
    let base = |rel: &FunctionalRelation| BaseRel {
        name: rel.name().to_string(),
        schema: rel.schema().clone(),
        cardinality: rel.len() as u64,
        fd_lhs: None,
    };
    let rels = vec![base(&r1), base(&r2), base(&r3)];
    store.insert(r1);
    store.insert(r2);
    store.insert(r3);
    let ctx = OptContext::new(&vcat, rels, QuerySpec::group_by([va]), CostModel::Io);
    let plan = optimize(&ctx, Algorithm::VePlus(Heuristic::Degree)).plan;
    // A large memory budget keeps every operator memory-resident, so the
    // comparison is hash operators vs. dense kernels, not a spill change.
    // The sparse-tensor band is pinned off: this baseline times hash vs.
    // dense, whatever `MPF_REPR` says (pr7_repr covers the sparse band).
    let cfg = PhysicalConfig {
        memory_rows: 1e9,
        repr_mode: mpf_algebra::ReprMode::Off,
        ..PhysicalConfig::default()
    };
    let phys_for = |t: usize, mode: DenseMode| {
        choose_physical(&ctx, &plan, cfg.with_threads(t).with_dense(mode))
    };
    let seq_phys = phys_for(1, DenseMode::Off);
    let (vseq_ms, vseq_out) = time_ms(reps, || {
        let exec = Executor::new(&store, SR).with_threads(1);
        let (rel, _) = exec.execute_physical(&seq_phys).expect("plan executes");
        rel
    });
    eprintln!("ve_plus: sparse {vseq_ms:.1} ms, {} rows", vseq_out.len());
    feed(&metrics, "ve_plus", None, vseq_ms);
    let mut vruns = Vec::new();
    for &t in &THREAD_COUNTS {
        let phys = phys_for(t, DenseMode::Auto);
        let (ms, out) = time_ms(reps, || {
            let exec = Executor::new(&store, SR).with_threads(t);
            let (rel, _) = exec.execute_physical(&phys).expect("plan executes");
            rel
        });
        let run = Run {
            threads: t,
            dense_ops: phys.dense_operator_count() as u64,
            ms,
            speedup: vseq_ms / ms,
            eq: out.function_eq(&vseq_out),
        };
        eprintln!(
            "ve_plus: threads {t} -> {ms:.1} ms ({:.2}x, eq {}, {} dense ops)",
            run.speedup, run.eq, run.dense_ops
        );
        feed(&metrics, "ve_plus", Some(t), ms);
        vruns.push(run);
    }
    // The dense runs above use the chunked kernels (the `MPF_KERNEL`
    // default since PR 10). Re-run the single-threaded dense plan with
    // the kernels pinned to *scalar* — the inner loops this baseline
    // originally measured — so the artifact records how much of the
    // dense-over-hash win now comes from the chunked mode alone.
    let dense_phys = phys_for(1, DenseMode::Auto);
    let (kscalar_ms, kscalar_out) = time_ms(reps, || {
        let exec = Executor::new(&store, SR).with_threads(1);
        let mut cx = ExecContext::new(SR)
            .with_threads(1)
            .with_dense(DenseMode::Auto)
            .with_repr(mpf_algebra::ReprMode::Off)
            .with_kernel(KernelMode::Scalar);
        exec.execute_physical_in(&mut cx, &dense_phys).expect("plan executes")
    });
    let chunked_t1_ms = vruns
        .iter()
        .find(|r| r.threads == 1)
        .map_or(kscalar_ms, |r| r.ms);
    let kernel_gain = kscalar_ms / chunked_t1_ms;
    eprintln!(
        "ve_plus: scalar-kernel dense {kscalar_ms:.1} ms -> chunked kernels {kernel_gain:.2}x \
         (eq {})",
        kscalar_out.function_eq(&vseq_out)
    );
    metrics.observe(
        "bench.ve_plus.dense.scalar_kernel.t1",
        Duration::from_secs_f64(kscalar_ms / 1e3),
    );
    sections.push(format!(
        "{{\n  \"name\": \"ve_plus_end_to_end\", \"rows_per_relation\": {rows_per_relation},\n  \
         \"result_rows\": {},\n  {},\n  \"scalar_kernel_ms\": {kscalar_ms:.3},\n  \
         \"chunked_vs_scalar_kernel\": {kernel_gain:.3}\n}}",
        vseq_out.len(),
        runs_json(vseq_ms, &vruns)
    ));

    // The `dense_ops` field counts the dense operators that actually ran
    // (kernel sections) or were annotated on the executed plan (ve_plus).
    let json = format!(
        "{{\n\"benchmark\": \"pr5_dense\",\n\"rows\": {rows},\n\"reps\": {reps},\n\
         \"host_threads\": {},\n\"benchmarks\": [\n{}\n],\n\"metrics\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        sections.join(",\n"),
        metrics.to_json()
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
