//! Table 1: example cardinalities and domain sizes of the supply-chain
//! schema. Prints the generated database's statistics next to the paper's
//! numbers (at `--scale 1` they coincide by construction).
//!
//! Usage: `table1_schema [--scale <f>] [--density <f>]`

use mpf_algebra::RelationProvider;
use mpf_bench::Args;
use mpf_datagen::{supply_chain::RELATION_NAMES, SupplyChain, SupplyChainConfig};

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 0.02);
    let density: f64 = args.get("density", 1.0);

    let sc = SupplyChain::generate(SupplyChainConfig {
        scale,
        ctdeals_density: density,
        ..Default::default()
    });

    println!("Table 1 — supply-chain schema (scale = {scale}, ctdeals density = {density})");
    println!();
    println!("{:<14} {:>12} {:>14}", "Table", "# tuples", "paper @ 1.0");
    let paper_cards = [100_000u64, 5_000, 500, 1_000_000, 500_000];
    for (name, paper) in RELATION_NAMES.iter().zip(paper_cards) {
        let rel = sc.store.relation_of(name).unwrap();
        println!("{:<14} {:>12} {:>14}", name, rel.len(), paper);
    }
    println!();
    println!("{:<14} {:>12} {:>14}", "Variable", "# ids", "paper @ 1.0");
    let paper_doms = [
        ("pid", 100_000u64),
        ("sid", 10_000),
        ("wid", 5_000),
        ("cid", 1_000),
        ("tid", 500),
    ];
    for (name, paper) in paper_doms {
        println!(
            "{:<14} {:>12} {:>14}",
            name,
            sc.catalog.domain_size(sc.var(name)),
            paper
        );
    }
}
