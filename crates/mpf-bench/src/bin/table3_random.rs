//! Table 3 — Random Heuristic Experiment Result.
//!
//! Plan cost of VE with a *random* elimination order, with and without the
//! Section 5.4 space extension, over 10 seeded runs per schema: mean and
//! 95% confidence interval. Paper shape to check: the extension improves
//! random orders by orders of magnitude on star/multistar, but the optimal
//! cost still lies outside the confidence interval — elimination ordering
//! stays significant even in the extended space.
//!
//! Usage: `table3_random [--n <tables>] [--domain <d>] [--runs <k>]`

use mpf_bench::{mean_ci95, plan_only, Args};
use mpf_datagen::{SyntheticKind, SyntheticView};
use mpf_optimizer::{Algorithm, CostModel, Heuristic};

fn main() {
    let args = Args::capture();
    let n: usize = args.get("n", 5);
    let domain: u64 = args.get("domain", 10);
    let runs: u64 = args.get("runs", 10);

    println!(
        "Table 3 — random elimination orders, {runs} runs (N = {n}, domain = {domain})"
    );
    println!();
    println!(
        "{:<18} {:>24} {:>24} {:>24}",
        "Ordering", "star", "multistar", "linear"
    );

    let views: Vec<SyntheticView> = SyntheticKind::ALL
        .iter()
        .map(|&k| SyntheticView::generate(k, n, domain, 7))
        .collect();

    for (label, extended) in [("VE(random)", false), ("VE(random) ext.", true)] {
        let mut cells = Vec::new();
        for view in &views {
            let samples: Vec<f64> = (0..runs)
                .map(|seed| {
                    let algo = if extended {
                        Algorithm::VePlus(Heuristic::Random(seed))
                    } else {
                        Algorithm::Ve(Heuristic::Random(seed))
                    };
                    plan_only(&view.ctx(view.first_chain_query(), CostModel::Io), algo).0
                })
                .collect();
            let (mean, half) = mean_ci95(&samples);
            cells.push(format!("{mean:.2} ± {half:.2}"));
        }
        println!(
            "{:<18} {:>24} {:>24} {:>24}",
            label, cells[0], cells[1], cells[2]
        );
    }

    // Reference optimum of the searched space.
    let mut cells = Vec::new();
    for view in &views {
        let (cost, _) = plan_only(
            &view.ctx(view.first_chain_query(), CostModel::Io),
            Algorithm::CsPlusNonlinear,
        );
        cells.push(format!("{cost:.2}"));
    }
    println!(
        "{:<18} {:>24} {:>24} {:>24}",
        "Nonlinear CS+", cells[0], cells[1], cells[2]
    );
}
