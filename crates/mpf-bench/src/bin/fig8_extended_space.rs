//! Figure 8 — Extended Variable Elimination Space Experiment.
//!
//! Runs three queries as the total scale of the database increases:
//!
//! ```sql
//! Q1: select cid, SUM(inv) from invest group by cid;
//! Q2: select sid, SUM(inv) from invest group by sid;
//! Q3: select wid, SUM(inv) from invest group by wid;
//! ```
//!
//! comparing nonlinear CS+, VE(degree), and VE(degree) extended. The
//! paper's finding: the space extension recovers the CS+ plan where plain
//! VE(degree) picks a suboptimal one, and extended VE is never worse than
//! plain VE.
//!
//! Usage: `fig8_extended_space [--base <f>] [--steps <n>]`

use mpf_bench::{ms, run_query, Args, Csv};
use mpf_datagen::{SupplyChain, SupplyChainConfig};
use mpf_optimizer::{Algorithm, CostModel, Heuristic, QuerySpec};
use mpf_semiring::SemiringKind;

fn main() {
    let args = Args::capture();
    let base: f64 = args.get("base", 0.005);
    let steps: usize = args.get("steps", 4);
    let csv_dir: String = args.get("csv", String::new());

    println!("Figure 8 — extended VE space vs DB scale (base scale = {base})");
    let algos = [
        Algorithm::CsPlusNonlinear,
        Algorithm::Ve(Heuristic::Degree),
        Algorithm::VePlus(Heuristic::Degree),
    ];

    for (qname, var_name) in [
        ("Q1 (group by cid)", "cid"),
        ("Q2 (group by sid)", "sid"),
        ("Q3 (group by wid)", "wid"),
    ] {
        println!();
        let mut csv = (!csv_dir.is_empty()).then(|| {
            Csv::create(
                &csv_dir,
                &format!("fig8_{var_name}"),
                &["scale", "csplus_ms", "csplus_work", "ve_ms", "ve_work", "veext_ms", "veext_work"],
            )
            .expect("csv file")
        });
        println!("{qname}");
        print!("{:>8}", "scale");
        for a in &algos {
            print!("  {:>12} {:>9}", format!("{} ms", a.label()), "work");
        }
        println!();
        for step in 1..=steps {
            let scale = base * step as f64;
            let sc = SupplyChain::generate(SupplyChainConfig::proportional(scale));
            let ctx = sc.ctx(QuerySpec::group_by([sc.var(var_name)]), CostModel::Io);
            print!("{scale:>8.4}");
            let mut fields = vec![format!("{scale}")];
            for a in &algos {
                let r = run_query(&ctx, &sc.store, SemiringKind::SumProduct, *a);
                print!("  {:>12} {:>9}", ms(r.execute_time), r.stats.rows_processed);
                fields.push(ms(r.execute_time));
                fields.push(r.stats.rows_processed.to_string());
            }
            println!();
            if let Some(csv) = csv.as_mut() {
                csv.row(&fields).expect("csv row");
            }
        }
    }
}
