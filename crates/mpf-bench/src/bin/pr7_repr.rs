//! Benchmark baseline for the representation-polymorphic factor stack.
//!
//! Sweeps the density bands the planner's representation lattice divides
//! the workload space into and, at each band, runs the same
//! join-then-marginalize pipeline two ways:
//!
//! * **hash** — the row-major reference ([`mpf_algebra::ops::product_join`]
//!   followed by [`mpf_algebra::ops::group_by`]), single-threaded; its
//!   time is the section's `sequential_ms` regression reference;
//! * **sparse** — the CSR sparse-tensor pipeline carried end to end as a
//!   [`mpf_storage::Factor`]: `sparse::join_factor` sorted-merges the two
//!   coordinate lists, `sparse::agg_factor` collapses coordinates for the
//!   marginalization, and the intermediate never materializes to rows.
//!
//! Every sparse run is checked `function_eq` against the hash result and
//! reported as `function_eq_sparse` (a `false` anywhere fails
//! `bench_check` unconditionally). One section is emitted per density so
//! the regression gate tracks each band separately; the 5–30% band is
//! where the sparse representation is expected to win (≥2x at full
//! scale), while 0.5% (hash territory) and 90% (dense territory) document
//! the edges of the lattice. Timings are the median of `--reps` runs
//! after one untimed warmup.
//!
//! Usage: `pr7_repr [--rows <n>] [--reps <n>] [--scale <f>] [--out <path>]`

use std::time::{Duration, Instant};

use mpf_algebra::{ops, sparse, DenseMode, ExecContext, MetricsRegistry, ReprMode};
use mpf_bench::Args;
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, Factor, FunctionalRelation, Schema, VarId};

const THREAD_COUNTS: [usize; 2] = [1, 4];
const SR: SemiringKind = SemiringKind::SumProduct;

/// The sweep's density bands with stable section-name suffixes (the
/// regression gate matches sections by name, so the labels must not
/// depend on float formatting).
const BANDS: [(f64, &str); 5] = [
    (0.005, "d005"),
    (0.05, "d050"),
    (0.15, "d150"),
    (0.30, "d300"),
    (0.90, "d900"),
];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Median wall-clock milliseconds of `reps` runs after one warmup.
fn time_ms(reps: usize, mut f: impl FnMut() -> FunctionalRelation) -> (f64, FunctionalRelation) {
    let mut out = f(); // warmup (also the returned result)
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median(samples), out)
}

/// Deterministic per-cell inclusion decision (split-mix style hash), so a
/// (density, salt) pair always generates the same relation.
fn keep_cell(cell: u64, salt: u64, density: f64) -> bool {
    let mut x = cell.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    ((x >> 11) as f64 / (1u64 << 53) as f64) < density
}

/// A binary relation over `vars` whose support is a deterministic
/// `density` fraction of the `doms` grid.
fn sparse_rel(
    name: &str,
    vars: Vec<VarId>,
    doms: [u64; 2],
    density: f64,
    salt: u64,
) -> FunctionalRelation {
    let rows = (0..doms[0] * doms[1])
        .filter(|&c| keep_cell(c, salt, density))
        .map(|c| {
            let row = vec![(c / doms[1]) as u32, (c % doms[1]) as u32];
            (row, 1.0 + ((c.wrapping_mul(31).wrapping_add(salt)) % 97) as f64 / 97.0)
        });
    FunctionalRelation::from_rows(name, Schema::new(vars).expect("schema"), rows).expect("rel")
}

struct Run {
    threads: usize,
    sparse_ops: u64,
    ms: f64,
    speedup: f64,
    eq: bool,
}

fn runs_json(sequential_ms: f64, runs: &[Run]) -> String {
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"sparse_ops\": {}, \"ms\": {:.3}, \
                 \"speedup\": {:.3}, \"function_eq_sparse\": {}}}",
                r.threads, r.sparse_ops, r.ms, r.speedup, r.eq
            )
        })
        .collect();
    format!(
        "\"sequential_ms\": {:.3},\n  \"runs\": [\n{}\n  ]",
        sequential_ms,
        rows.join(",\n")
    )
}

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 1.0);
    let rows: usize = ((args.get("rows", 16384usize) as f64) * scale) as usize;
    let reps: usize = args.get("reps", 3);
    let out_path: String = args.get("out", "BENCH_PR7.json".to_string());
    let metrics = MetricsRegistry::new();

    // One shared-variable join shape per band: l(a, b) ⋈ r(b, c) over an
    // (side × 64 × side) union grid, marginalized onto a. `--rows` is the
    // *grid* cells per relation, so side = rows / 64 and the actual row
    // counts scale with the band's density.
    let side = (rows / 64).max(2) as u64;
    let mut cat = Catalog::new();
    let a = cat.add_var("a", side).expect("var");
    let b = cat.add_var("b", 64).expect("var");
    let c = cat.add_var("c", side).expect("var");

    let mut sections = Vec::new();
    for (density, label) in BANDS {
        let l = sparse_rel("l", vec![a, b], [side, 64], density, 1);
        let r = sparse_rel("r", vec![b, c], [64, side], density, 2);
        let input_rows = l.len() + r.len();

        // Hash reference: row-major join + hash aggregate, single thread.
        let (seq_ms, seq_out) = time_ms(reps, || {
            let mut cx = ExecContext::new(SR);
            let j = ops::product_join(&mut cx, &l, &r).expect("join fits");
            ops::group_by(&mut cx, &j, &[a]).expect("agg fits")
        });
        eprintln!(
            "repr_pipeline_{label}: hash {seq_ms:.1} ms ({input_rows} input rows, {} groups)",
            seq_out.len()
        );
        metrics.inc(&format!("bench.repr.{label}.runs"));
        metrics.observe(
            &format!("bench.repr.{label}.hash"),
            Duration::from_secs_f64(seq_ms / 1e3),
        );

        // Sparse pipeline: the intermediate stays a CSR tensor between the
        // join and the marginalization; rows materialize once at the end.
        let lf = Factor::from(l.clone());
        let rf = Factor::from(r.clone());
        let mut runs = Vec::new();
        for &t in &THREAD_COUNTS {
            let pipeline = |cx: &mut ExecContext<'_>| {
                let j = sparse::join_factor(cx, &lf, &rf).expect("join fits");
                let g = sparse::agg_factor(cx, &j, &[a]).expect("agg fits");
                sparse::materialize(cx, g).expect("materialize")
            };
            let (ms, out) = time_ms(reps, || {
                let mut cx = ExecContext::new(SR)
                    .with_repr(ReprMode::Sparse)
                    .with_dense(DenseMode::Off)
                    .with_threads(t);
                pipeline(&mut cx)
            });
            let mut cx = ExecContext::new(SR)
                .with_repr(ReprMode::Sparse)
                .with_dense(DenseMode::Off)
                .with_threads(t);
            pipeline(&mut cx);
            let stats = cx.stats();
            let run = Run {
                threads: t,
                sparse_ops: stats.sparse_joins + stats.sparse_group_bys,
                ms,
                speedup: seq_ms / ms,
                eq: out.function_eq(&seq_out),
            };
            eprintln!(
                "repr_pipeline_{label}: sparse, threads {t} -> {ms:.1} ms \
                 ({:.2}x, eq {}, {} sparse ops)",
                run.speedup, run.eq, run.sparse_ops
            );
            metrics.observe(
                &format!("bench.repr.{label}.sparse.t{t}"),
                Duration::from_secs_f64(ms / 1e3),
            );
            runs.push(run);
        }
        sections.push(format!(
            "{{\n  \"name\": \"repr_pipeline_{label}\", \"input_rows\": {input_rows},\n  \
             \"density\": {density},\n  \"groups\": {},\n  {}\n}}",
            seq_out.len(),
            runs_json(seq_ms, &runs)
        ));
    }

    // The `sparse_ops` field counts the sparse-tensor operators that
    // actually ran (join + marginalization per pipeline).
    let json = format!(
        "{{\n\"benchmark\": \"pr7_repr\",\n\"rows\": {rows},\n\"reps\": {reps},\n\
         \"host_threads\": {},\n\"benchmarks\": [\n{}\n],\n\"metrics\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        sections.join(",\n"),
        metrics.to_json()
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
