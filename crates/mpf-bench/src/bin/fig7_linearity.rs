//! Figure 7 — Plan Linearity Experiment.
//!
//! Runs the paper's two queries as the density of `ctdeals` increases:
//!
//! ```sql
//! Q1: select cid, SUM(inv) from invest group by cid;
//! Q2: select tid, SUM(inv) from invest group by tid;
//! ```
//!
//! comparing linear CS+ against nonlinear CS+. The paper's finding: for Q1
//! (where Eq. 1 *fails*: σ_cid ≪ σ̂_cid) nonlinear plans win and the gap
//! grows with density; for Q2 (Eq. 1 holds) both coincide. The Eq. 1
//! linearity-test verdict is printed per query.
//!
//! Usage: `fig7_linearity [--scale <f>] [--steps <n>]`

use mpf_bench::{ms, run_query, Args, Csv};
use mpf_datagen::{SupplyChain, SupplyChainConfig};
use mpf_optimizer::{linearity::linearity_test, Algorithm, CostModel, QuerySpec};
use mpf_semiring::SemiringKind;

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 0.02);
    let steps: usize = args.get("steps", 5);
    let csv_dir: String = args.get("csv", String::new());

    println!("Figure 7 — plan linearity vs ctdeals density (scale = {scale})");
    println!();

    for (qname, var_name) in [("Q1 (group by cid)", "cid"), ("Q2 (group by tid)", "tid")] {
        let mut csv = (!csv_dir.is_empty()).then(|| {
            Csv::create(
                &csv_dir,
                &format!("fig7_{var_name}"),
                &["density", "linear_ms", "nonlinear_ms", "linear_work", "nonlinear_work"],
            )
            .expect("csv file")
        });
        println!("{qname}");
        println!(
            "{:>8}  {:>14} {:>14}  {:>14} {:>14}",
            "density", "linear ms", "nonlinear ms", "linear work", "nonlin work"
        );
        for step in 1..=steps {
            let density = step as f64 / steps as f64;
            let sc = SupplyChain::generate(SupplyChainConfig {
                ctdeals_density: density,
                ..SupplyChainConfig::proportional(scale)
            });
            let qv = sc.var(var_name);
            let ctx = sc.ctx(QuerySpec::group_by([qv]), CostModel::Io);
            let lin = run_query(&ctx, &sc.store, SemiringKind::SumProduct, Algorithm::CsPlusLinear);
            let non = run_query(
                &ctx,
                &sc.store,
                SemiringKind::SumProduct,
                Algorithm::CsPlusNonlinear,
            );
            println!(
                "{:>8.2}  {:>14} {:>14}  {:>14} {:>14}",
                density,
                ms(lin.execute_time),
                ms(non.execute_time),
                lin.stats.rows_processed,
                non.stats.rows_processed,
            );
            if let Some(csv) = csv.as_mut() {
                csv.row(&[
                    format!("{density}"),
                    ms(lin.execute_time),
                    ms(non.execute_time),
                    lin.stats.rows_processed.to_string(),
                    non.stats.rows_processed.to_string(),
                ])
                .expect("csv row");
            }
            if step == steps {
                let t = linearity_test(&ctx, qv);
                println!(
                    "  Eq.1 test: sigma = {}, sigma_hat = {}, linear admissible = {}",
                    t.sigma, t.sigma_hat, t.linear_admissible
                );
            }
        }
        println!();
    }
}
