//! Figure 9 — Ordering Heuristics Experiment.
//!
//! Runs two queries as the scale of the database increases:
//!
//! ```sql
//! Q1: select cid, SUM(inv) from invest group by cid;
//! Q2: select pid, SUM(inv) from invest group by pid;
//! ```
//!
//! under plain VE with the degree, width, and elimination-cost ordering
//! heuristics. The paper's finding: for Q1 width yields a worse plan than
//! degree and elimination cost; for Q2 all heuristics derive the same plan.
//!
//! Usage: `fig9_heuristics [--base <f>] [--steps <n>]`

use mpf_bench::{ms, run_query, Args, Csv};
use mpf_datagen::{SupplyChain, SupplyChainConfig};
use mpf_optimizer::{Algorithm, CostModel, Heuristic, QuerySpec};
use mpf_semiring::SemiringKind;

fn main() {
    let args = Args::capture();
    let base: f64 = args.get("base", 0.005);
    let steps: usize = args.get("steps", 4);
    let csv_dir: String = args.get("csv", String::new());

    println!("Figure 9 — ordering heuristics vs DB scale (base scale = {base})");
    let heuristics = [Heuristic::Degree, Heuristic::Width, Heuristic::ElimCost];

    for (qname, var_name) in [("Q1 (group by cid)", "cid"), ("Q2 (group by pid)", "pid")] {
        println!();
        let mut csv = (!csv_dir.is_empty()).then(|| {
            Csv::create(
                &csv_dir,
                &format!("fig9_{var_name}"),
                &["scale", "deg_ms", "deg_work", "width_ms", "width_work", "elim_ms", "elim_work"],
            )
            .expect("csv file")
        });
        println!("{qname}");
        print!("{:>8}", "scale");
        for h in &heuristics {
            print!("  {:>10} {:>9}", format!("VE({})", h.label()), "work");
        }
        println!();
        for step in 1..=steps {
            let scale = base * step as f64;
            let sc = SupplyChain::generate(SupplyChainConfig::proportional(scale));
            let ctx = sc.ctx(QuerySpec::group_by([sc.var(var_name)]), CostModel::Io);
            print!("{scale:>8.4}");
            let mut fields = vec![format!("{scale}")];
            for h in &heuristics {
                let r = run_query(&ctx, &sc.store, SemiringKind::SumProduct, Algorithm::Ve(*h));
                print!("  {:>10} {:>9}", ms(r.execute_time), r.stats.rows_processed);
                fields.push(ms(r.execute_time));
                fields.push(r.stats.rows_processed.to_string());
            }
            println!();
            if let Some(csv) = csv.as_mut() {
                csv.row(&fields).expect("csv row");
            }
        }
    }
}
