//! Developer utility: print the plans each algorithm picks for a synthetic
//! view (not part of the experiment suite).

use mpf_bench::Args;
use mpf_datagen::{SyntheticKind, SyntheticView};
use mpf_optimizer::{optimize, Algorithm, CostModel, Heuristic};

fn main() {
    let args = Args::capture();
    let n: usize = args.get("n", 5);
    let kind = match args.get::<String>("kind", "linear".into()).as_str() {
        "star" => SyntheticKind::Star,
        "multistar" => SyntheticKind::Multistar,
        _ => SyntheticKind::Linear,
    };
    let view = SyntheticView::generate(kind, n, 10, 7);
    let name = |v| view.catalog.name(v).to_string();
    for algo in [
        Algorithm::CsPlusNonlinear,
        Algorithm::Ve(Heuristic::Degree),
        Algorithm::VePlus(Heuristic::Degree),
    ] {
        let ctx = view.ctx(view.first_chain_query(), CostModel::Io);
        let plan = optimize(&ctx, algo);
        println!("=== {} (cost {:.2}) ===", algo.label(), plan.est_cost);
        println!("{}", plan.plan.render(&|v| name(v)));
    }
}
