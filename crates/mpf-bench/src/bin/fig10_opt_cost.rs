//! Figure 10 — Optimization Time Tradeoff Experiment.
//!
//! For each synthetic view (N = 7), queries every variable in the linear
//! part and reports, per algorithm, the average estimated plan cost against
//! the average time to derive the plan — the scatter of the paper's
//! Figure 10 (points closer to the origin are best).
//!
//! Paper shapes to check: CS (no GDL optimization) is far from the origin;
//! nonlinear plans are about an order of magnitude better in cost than
//! linear ones; VE optimizes faster than nonlinear CS+ on low-connectivity
//! schemas.
//!
//! Usage: `fig10_opt_cost [--n <tables>] [--domain <d>]`

use std::time::Duration;

use mpf_bench::{plan_only, Args};
use mpf_datagen::{SyntheticKind, SyntheticView};
use mpf_optimizer::{Algorithm, CostModel, Heuristic, QuerySpec};

fn main() {
    let args = Args::capture();
    let n: usize = args.get("n", 7);
    let domain: u64 = args.get("domain", 10);

    println!("Figure 10 — plan quality vs optimization time (N = {n}, domain = {domain})");

    let algos: Vec<Algorithm> = {
        let mut v = vec![
            Algorithm::Cs,
            Algorithm::CsPlusLinear,
            Algorithm::CsPlusNonlinear,
        ];
        for h in [Heuristic::Degree, Heuristic::Width, Heuristic::ElimCost] {
            v.push(Algorithm::Ve(h));
            v.push(Algorithm::VePlus(h));
        }
        v
    };

    for kind in SyntheticKind::ALL {
        let view = SyntheticView::generate(kind, n, domain, 11);
        println!();
        println!("{} view:", kind.label());
        println!(
            "{:<24} {:>18} {:>18}",
            "algorithm", "avg est cost", "avg opt time ms"
        );
        for algo in &algos {
            let mut cost_sum = 0.0;
            let mut time_sum = Duration::ZERO;
            let queries = &view.chain_vars;
            for &qv in queries {
                let ctx = view.ctx(QuerySpec::group_by([qv]), CostModel::Io);
                let (cost, t) = plan_only(&ctx, *algo);
                cost_sum += cost;
                time_sum += t;
            }
            let k = queries.len() as f64;
            println!(
                "{:<24} {:>18.2} {:>18.4}",
                algo.label(),
                cost_sum / k,
                time_sum.as_secs_f64() * 1e3 / k
            );
        }
    }
}
