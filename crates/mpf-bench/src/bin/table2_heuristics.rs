//! Table 2 — Ordering Heuristics Experiment Result.
//!
//! Estimated plan cost (cost-model units) of the query on the first chain
//! variable, for each of the star / multistar / linear synthetic views
//! (N = 5 tables, domain 10, complete relations), under:
//!
//! * nonlinear CS+ (the optimum of the searched space),
//! * VE with each heuristic (degree, width, elim_cost, deg & width,
//!   deg & elim_cost), plain and extended.
//!
//! Paper shape to check: plain VE(degree) blows up on the star schema
//! (it eliminates the hub first, joining everything); width does well on
//! star; every extended variant matches nonlinear CS+.
//!
//! Usage: `table2_heuristics [--n <tables>] [--domain <d>]`

use mpf_bench::{plan_only, Args};
use mpf_datagen::{SyntheticKind, SyntheticView};
use mpf_optimizer::{Algorithm, CostModel, Heuristic};

fn main() {
    let args = Args::capture();
    let n: usize = args.get("n", 5);
    let domain: u64 = args.get("domain", 10);

    println!("Table 2 — heuristic plan costs (N = {n}, domain = {domain}, complete relations)");
    println!();

    let views: Vec<SyntheticView> = SyntheticKind::ALL
        .iter()
        .map(|&k| SyntheticView::generate(k, n, domain, 7))
        .collect();

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let costs_for = |algo: Algorithm| -> Vec<f64> {
        views
            .iter()
            .map(|v| plan_only(&v.ctx(v.first_chain_query(), CostModel::Io), algo).0)
            .collect()
    };

    rows.push(("Nonlinear CS+".into(), costs_for(Algorithm::CsPlusNonlinear)));
    for h in Heuristic::DETERMINISTIC {
        rows.push((format!("VE({})", h.label()), costs_for(Algorithm::Ve(h))));
        rows.push((
            format!("VE({}) ext.", h.label()),
            costs_for(Algorithm::VePlus(h)),
        ));
    }

    // The paper reports that on the star schema its degree implementation
    // "selects the common variable" first, which joins every base table and
    // performs no GDL optimization (the 240225.15 cell of its Table 2). Our
    // degree heuristic — post-elimination size from catalog domain products,
    // as Section 5.5 defines it — never ranks the hub first, so we reproduce
    // that pathological plan explicitly with a hub-first fixed order.
    {
        let costs: Vec<f64> = views
            .iter()
            .map(|v| {
                if v.hub_vars.is_empty() {
                    return f64::NAN;
                }
                let mut order = v.hub_vars.clone();
                order.extend(v.chain_vars.iter().skip(1).copied());
                let ctx = v.ctx(v.first_chain_query(), CostModel::Io);
                mpf_optimizer::ve::plan_ve_ordered(
                    &ctx,
                    &order,
                    Heuristic::Random(0),
                    false,
                )
                .cost
            })
            .collect();
        rows.push(("VE(hub-first)".into(), costs));
    }

    println!(
        "{:<24} {:>14} {:>14} {:>14}",
        "Ordering", "star", "multistar", "linear"
    );
    for (label, costs) in rows {
        println!(
            "{:<24} {:>14.2} {:>14.2} {:>14.2}",
            label, costs[0], costs[1], costs[2]
        );
    }
}
