//! An interactive shell for the MPF engine, preloaded with the paper's
//! supply-chain schema and `invest` view.
//!
//! ```text
//! cargo run -p mpf-bench --release --bin mpf_repl -- --scale 0.01
//! mpf> select wid, sum(inv) from invest where tid = 1 group by wid using ve(degree)
//! mpf> \explain select cid, sum(inv) from invest group by cid
//! mpf> \tables
//! mpf> \load /path/data.csv as mytable
//! mpf> \quit
//! ```

use std::io::{BufRead, Write};

use mpf_bench::Args;
use mpf_datagen::{supply_chain::RELATION_NAMES, SupplyChain, SupplyChainConfig};
use mpf_engine::{parser, Database, SqlOutcome, Statement};

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 0.01);
    let sc = SupplyChain::generate(SupplyChainConfig::at_scale(scale));
    let db = Database::from_parts(sc.catalog.clone(), sc.store.clone());
    db.run_sql(
        "create mpfview invest as (select pid, sid, wid, cid, tid, \
         measure = (* c.price, l.quantity, w.overhead, ct.discount, t.overhead) \
         from contracts c, location l, warehouses w, ctdeals ct, transporters t)",
    )
    .expect("view creation");

    println!("mpf shell — supply chain at scale {scale}; view `invest` ready.");
    println!("Enter SQL (see README), or \\explain <sql>, \\tables, \\linearity <var>, \\quit.");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("mpf> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        if line == "\\tables" {
            use mpf_algebra::RelationProvider;
            for name in RELATION_NAMES {
                let store = db.store();
                let rel = store.relation_of(name).unwrap();
                let vars: Vec<String> = rel
                    .schema()
                    .iter()
                    .map(|v| db.catalog().name(v).to_string())
                    .collect();
                println!("  {name}({}) — {} rows", vars.join(", "), rel.len());
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\load ") {
            let parts: Vec<&str> = rest.split(" as ").map(str::trim).collect();
            if parts.len() != 2 {
                println!("  usage: \\load <path.csv> as <name>");
                continue;
            }
            match std::fs::File::open(parts[0]) {
                Ok(file) => match db.load_csv(parts[1], std::io::BufReader::new(file)) {
                    Ok(n) => println!("  loaded `{}` ({n} rows)", parts[1]),
                    Err(e) => println!("  error: {e}"),
                },
                Err(e) => println!("  error opening {}: {e}", parts[0]),
            }
            continue;
        }
        if let Some(var) = line.strip_prefix("\\linearity ") {
            match db.linearity("invest", var.trim()) {
                Ok(t) => println!(
                    "  sigma = {}, sigma_hat = {}, linear admissible = {}",
                    t.sigma, t.sigma_hat, t.linear_admissible
                ),
                Err(e) => println!("  error: {e}"),
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix("\\explain ") {
            match parser::parse(sql) {
                Ok(Statement::Select(q)) => match db.describe(&q) {
                    Ok(text) => println!("{text}"),
                    Err(e) => println!("  error: {e}"),
                },
                Ok(_) => println!("  \\explain takes a select statement"),
                Err(e) => println!("  parse error: {e}"),
            }
            continue;
        }
        match db.run_sql(line) {
            Ok(SqlOutcome::Answer(ans)) => {
                println!("{}", ans.relation.to_table_string(&db.catalog()));
                println!(
                    "-- {} rows; optimized in {:?}, executed in {:?} ({} rows processed)",
                    ans.relation.len(),
                    ans.optimize_time,
                    ans.execute_time,
                    ans.stats.rows_processed
                );
            }
            Ok(SqlOutcome::ViewCreated(name)) => println!("-- view `{name}` created"),
            Err(e) => println!("error: {e}"),
        }
    }
}
