//! Appendix A as a runnable pipeline (Figures 11–15).
//!
//! 1. On the acyclic supply chain, Belief Propagation runs as a semijoin
//!    program (the Figure 11 listing) and calibrates every base relation.
//! 2. Adding `Stdeals(sid, tid)` closes the Figure 14 five-cycle: GYO no
//!    longer reduces, the variable graph stops being chordal, and BP
//!    refuses (the Figure 12 double-propagation pitfall).
//! 3. Triangulating with the paper's order (`tid`, `sid`) adds the two
//!    dotted fill edges of Figure 14; the maximal cliques are the three
//!    relations of the Figure 15 junction tree; populating and calibrating
//!    them yields tables whose marginals match direct evaluation.
//!
//! Usage: `appendix_a_pipeline [--scale <f>]`

use mpf_algebra::{ops, ExecContext, RelationProvider};
use mpf_bench::Args;
use mpf_datagen::{supply_chain::RELATION_NAMES, SupplyChain, SupplyChainConfig};
use mpf_infer::{acyclic, bp, triangulate, JunctionTree, VariableGraph};
use mpf_semiring::SemiringKind;
use mpf_storage::FunctionalRelation;

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 0.004);
    let sr = SemiringKind::SumProduct;

    let mut sc = SupplyChain::generate(SupplyChainConfig::at_scale(scale));
    let catalog = sc.catalog.clone();
    let name_of = |v| catalog.name(v).to_string();

    println!("== Step 1: Belief Propagation on the acyclic schema (Figure 11) ==");
    let rels: Vec<&FunctionalRelation> = RELATION_NAMES
        .iter()
        .map(|n| sc.store.relation_of(n).unwrap())
        .collect();
    let schemas: Vec<_> = rels.iter().map(|r| r.schema().clone()).collect();
    println!("  GYO-acyclic: {}", acyclic::is_acyclic(schemas.iter()));
    let (tables, program) = bp::bp_acyclic(sr, &rels).expect("acyclic schema");
    for (i, step) in program.iter().enumerate() {
        let (label, t, s) = match step {
            bp::BpStep::Forward { target, source } => ("⋉*", *target, *source),
            bp::BpStep::Backward { target, source } => ("⋉ ", *target, *source),
        };
        println!(
            "  {}. {} {label} {}",
            i + 1,
            rels[t].name(),
            rels[s].name()
        );
    }
    let ok = bp::satisfies_invariant(sr, &rels, &tables).unwrap();
    println!("  Definition 5 invariant after BP: {ok}");

    println!();
    println!("== Step 2: add Stdeals — the schema becomes cyclic (Figure 12) ==");
    sc.add_stdeals(0.8);
    let rels2: Vec<&FunctionalRelation> = RELATION_NAMES
        .iter()
        .chain(["stdeals"].iter())
        .map(|n| sc.store.relation_of(n).unwrap())
        .collect();
    let schemas2: Vec<_> = rels2.iter().map(|r| r.schema().clone()).collect();
    println!("  GYO-acyclic: {}", acyclic::is_acyclic(schemas2.iter()));
    let graph = VariableGraph::from_schemas(schemas2.iter());
    println!("  variable graph chordal: {}", graph.is_chordal());
    println!(
        "  plain BP: {}",
        match bp::bp_acyclic(sr, &rels2) {
            Err(e) => format!("refused ({e})"),
            Ok(_) => "ran (unexpected!)".into(),
        }
    );

    println!();
    println!("== Step 3: Junction Tree (Figures 14–15) ==");
    let order = [sc.tid, sc.sid];
    let tri = triangulate::triangulate(&graph, &order);
    let fills: Vec<String> = tri
        .fill_edges
        .iter()
        .map(|&(a, b)| format!("{}–{}", name_of(a), name_of(b)))
        .collect();
    println!("  triangulation order: tid, sid; fill edges: {}", fills.join(", "));
    let jt = JunctionTree::from_schemas(&schemas2, Some(&order)).expect("junction tree");
    for (i, clique) in jt.cliques.iter().enumerate() {
        let vars: Vec<String> = clique.iter().map(|&v| name_of(v)).collect();
        println!("  clique {i}: {{{}}}", vars.join(", "));
    }
    println!(
        "  running-intersection property: {}",
        jt.tree.verify_rip(&jt.cliques)
    );

    let mut tables = jt.populate_in(&mut ExecContext::new(sr), &rels2, &sc.catalog).expect("populate");
    bp::calibrate_in(&mut ExecContext::new(sr), &mut tables, &jt.tree).expect("calibrate");

    // Verify one marginal against direct evaluation.
    let cx = &mut ExecContext::new(sr);
    let mut view = rels2[0].clone();
    for r in &rels2[1..] {
        view = ops::product_join(cx, &view, r).expect("join");
    }
    let want = ops::group_by(cx, &view, &[sc.wid]).expect("group");
    let table = tables
        .iter()
        .find(|t| t.schema().contains(sc.wid))
        .expect("wid is in a clique");
    let got = ops::group_by(cx, table, &[sc.wid]).expect("group");
    println!(
        "  calibrated marginal on wid matches direct evaluation: {}",
        want.function_eq_in(&got, sr)
    );
}
