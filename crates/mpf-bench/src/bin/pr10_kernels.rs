//! Benchmark for the chunked monomorphized kernels and the fused
//! join→marginalize operator (PR 10).
//!
//! Sections:
//!
//! * **kernel_ve_plus** — a dense complete-relation VE+ triangle query
//!   (r1(a,b) ⨝ r2(b,c) ⨝ r3(c,a), grouped on `a`), end to end through
//!   the physical interpreter. Eliminating the first variable joins two
//!   D²-cell relations into a D³-cell grid and folds it back down, so
//!   the run is dominated by the grid kernels rather than by row→grid
//!   conversion. The sequential reference runs the dense plan with the
//!   *scalar* kernel mode (`MPF_KERNEL=scalar`); the timed runs use the
//!   chunked kernels at threads {1, 4}. This is the headline number:
//!   the chunked mode must beat scalar by ≥1.5× on the single-threaded
//!   run for the PR to hold its acceptance criterion.
//! * **fused_join_agg** — the same plan with fusion on: the D³ join
//!   feeding the marginalization contracts directly into the output
//!   accumulator grid (`JoinAgg`) instead of materializing, against the
//!   unfused dense pipeline as reference. Besides time, each run
//!   reports `peak_rows` — the fused path never materializes the join
//!   intermediate, so its peak must be strictly below the unfused
//!   run's.
//!
//! Every chunked run is checked `function_eq` against the scalar
//! reference (`function_eq_scalar`) and every fused run against the
//! unfused pipeline (`function_eq_unfused`); a `false` anywhere fails
//! `bench_check` unconditionally. Timings are the median of `--reps`
//! runs after one untimed warmup.
//!
//! Usage: `pr10_kernels [--rows <n>] [--reps <n>] [--scale <f>] [--out <path>]`

use std::time::{Duration, Instant};

use mpf_algebra::{
    DenseMode, ExecContext, ExecStats, Executor, KernelMode, MetricsRegistry, PhysicalPlan,
    RelationStore, ReprMode,
};
use mpf_bench::Args;
use mpf_optimizer::{
    choose_physical, optimize, Algorithm, BaseRel, CostModel, Heuristic, OptContext,
    PhysicalConfig, QuerySpec,
};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema};

const THREAD_COUNTS: [usize; 2] = [1, 4];
const SR: SemiringKind = SemiringKind::SumProduct;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Median wall-clock milliseconds of `reps` runs after one warmup.
fn time_ms(reps: usize, mut f: impl FnMut() -> FunctionalRelation) -> (f64, FunctionalRelation) {
    let mut out = f(); // warmup (also the returned result)
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median(samples), out)
}

/// Execute a physical plan with the kernel mode pinned on the context
/// (the bench must not depend on the ambient `MPF_KERNEL`).
fn run_plan(
    store: &RelationStore,
    phys: &PhysicalPlan,
    threads: usize,
    kernel: KernelMode,
) -> (FunctionalRelation, ExecStats) {
    let exec = Executor::new(store, SR).with_threads(threads);
    let mut cx = ExecContext::new(SR)
        .with_threads(threads)
        .with_dense(DenseMode::Auto)
        .with_repr(ReprMode::Off)
        .with_kernel(kernel);
    let rel = exec.execute_physical_in(&mut cx, phys).expect("plan executes");
    (rel, cx.take_stats())
}

fn feed(metrics: &MetricsRegistry, section: &str, path: &str, ms: f64) {
    metrics.inc(&format!("bench.{section}.runs"));
    metrics.observe(
        &format!("bench.{section}.{path}"),
        Duration::from_secs_f64(ms / 1e3),
    );
}

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 1.0);
    let rows: usize = ((args.get("rows", 16384usize) as f64) * scale) as usize;
    let reps: usize = args.get("reps", 3);
    let out_path: String = args.get("out", "BENCH_PR10.json".to_string());
    let metrics = MetricsRegistry::new();

    // The VE+ triangle: complete factors r1(a,b), r2(b,c), r3(c,a) over a
    // common √rows-value domain, marginalized onto `a` under
    // extended-space VE. Every operator densifies, and eliminating the
    // first variable expands two D²-cell grids into a D³-cell
    // intermediate — the kernel-bound regime the chunked mode targets
    // (row→grid conversion stays O(D²)).
    let side = (rows as f64).sqrt().max(4.0) as u64;
    let mut cat = Catalog::new();
    let a = cat.add_var("a", side).expect("var");
    let b = cat.add_var("b", side).expect("var");
    let c = cat.add_var("c", side).expect("var");
    let r1 = FunctionalRelation::complete("r1", Schema::new(vec![a, b]).expect("schema"), &cat, |r| {
        1.0 + ((r[0] as u64 * 19 + r[1] as u64 * 3) % 83) as f64 / 83.0
    });
    let r2 = FunctionalRelation::complete("r2", Schema::new(vec![b, c]).expect("schema"), &cat, |r| {
        1.0 + ((r[0] as u64 * 11 + r[1] as u64 * 17) % 79) as f64 / 79.0
    });
    let r3 = FunctionalRelation::complete("r3", Schema::new(vec![c, a]).expect("schema"), &cat, |r| {
        1.0 + ((r[0] as u64 * 23 + r[1] as u64 * 29) % 73) as f64 / 73.0
    });
    let rows_per_relation = r3.len();
    let base = |rel: &FunctionalRelation| BaseRel {
        name: rel.name().to_string(),
        schema: rel.schema().clone(),
        cardinality: rel.len() as u64,
        fd_lhs: None,
    };
    let rels = vec![base(&r1), base(&r2), base(&r3)];
    let mut store = RelationStore::new();
    store.insert(r1);
    store.insert(r2);
    store.insert(r3);
    let ctx = OptContext::new(&cat, rels, QuerySpec::group_by([a]), CostModel::Io);
    let plan = optimize(&ctx, Algorithm::VePlus(Heuristic::Degree)).plan;
    let cfg = PhysicalConfig {
        memory_rows: 1e9,
        repr_mode: ReprMode::Off,
        dense_mode: DenseMode::Auto,
        ..PhysicalConfig::default()
    };
    // Fusion off here: this section isolates the kernel inner-loop mode.
    let unfused_for = |t: usize| choose_physical(&ctx, &plan, cfg.with_threads(t).with_fuse(false));

    let mut sections = Vec::new();

    // -- kernel_ve_plus ---------------------------------------------------
    let seq_phys = unfused_for(1);
    let (scalar_ms, scalar_out) =
        time_ms(reps, || run_plan(&store, &seq_phys, 1, KernelMode::Scalar).0);
    eprintln!("kernel_ve_plus: scalar {scalar_ms:.1} ms, {} rows", scalar_out.len());
    feed(&metrics, "kernel_ve_plus", "scalar.t1", scalar_ms);
    let mut runs = Vec::new();
    for &t in &THREAD_COUNTS {
        let phys = unfused_for(t);
        let (ms, out) = time_ms(reps, || run_plan(&store, &phys, t, KernelMode::Chunked).0);
        let (_, stats) = run_plan(&store, &phys, t, KernelMode::Chunked);
        let speedup = scalar_ms / ms;
        let eq = out.function_eq(&scalar_out);
        eprintln!(
            "kernel_ve_plus: chunked threads {t} -> {ms:.1} ms ({speedup:.2}x vs scalar, eq {eq})"
        );
        feed(&metrics, "kernel_ve_plus", &format!("chunked.t{t}"), ms);
        runs.push(format!(
            "    {{\"threads\": {t}, \"kernel_ops\": {}, \"ms\": {ms:.3}, \
             \"speedup\": {speedup:.3}, \"function_eq_scalar\": {eq}}}",
            stats.kernel_chunked_ops
        ));
    }
    sections.push(format!(
        "{{\n  \"name\": \"kernel_ve_plus\", \"rows_per_relation\": {rows_per_relation},\n  \
         \"result_rows\": {},\n  \"sequential_ms\": {scalar_ms:.3},\n  \"runs\": [\n{}\n  ]\n}}",
        scalar_out.len(),
        runs.join(",\n")
    ));

    // -- fused_join_agg ---------------------------------------------------
    // The same plan with fusion on: every dense join feeding a dense
    // marginalization contracts straight into the output accumulator.
    // Reference is the unfused chunked single-thread run.
    let (unfused_ms, unfused_out) =
        time_ms(reps, || run_plan(&store, &seq_phys, 1, KernelMode::Chunked).0);
    let (_, unfused_stats) = run_plan(&store, &seq_phys, 1, KernelMode::Chunked);
    let unfused_peak = unfused_stats.max_intermediate_rows;
    eprintln!(
        "fused_join_agg: unfused {unfused_ms:.1} ms, peak {unfused_peak} rows"
    );
    feed(&metrics, "fused_join_agg", "unfused.t1", unfused_ms);
    let mut fruns = Vec::new();
    for &t in &THREAD_COUNTS {
        let phys = choose_physical(&ctx, &plan, cfg.with_threads(t).with_fuse(true));
        let (ms, out) = time_ms(reps, || run_plan(&store, &phys, t, KernelMode::Chunked).0);
        let (_, stats) = run_plan(&store, &phys, t, KernelMode::Chunked);
        let speedup = unfused_ms / ms;
        let eq = out.function_eq(&unfused_out);
        let peak_ok = stats.fused_join_aggs == 0 || stats.max_intermediate_rows < unfused_peak;
        eprintln!(
            "fused_join_agg: fused threads {t} -> {ms:.1} ms ({speedup:.2}x, eq {eq}, \
             {} fused ops, peak {} rows, peak_below_unfused {peak_ok})",
            stats.fused_join_aggs, stats.max_intermediate_rows
        );
        feed(&metrics, "fused_join_agg", &format!("fused.t{t}"), ms);
        fruns.push(format!(
            "    {{\"threads\": {t}, \"fused_ops\": {}, \"peak_rows\": {}, \"ms\": {ms:.3}, \
             \"speedup\": {speedup:.3}, \"function_eq_unfused\": {eq}, \
             \"peak_below_unfused\": {peak_ok}}}",
            stats.fused_join_aggs, stats.max_intermediate_rows
        ));
    }
    sections.push(format!(
        "{{\n  \"name\": \"fused_join_agg\", \"rows_per_relation\": {rows_per_relation},\n  \
         \"unfused_peak_rows\": {unfused_peak},\n  \"sequential_ms\": {unfused_ms:.3},\n  \
         \"runs\": [\n{}\n  ]\n}}",
        fruns.join(",\n")
    ));

    let json = format!(
        "{{\n\"benchmark\": \"pr10_kernels\",\n\"rows\": {rows},\n\"reps\": {reps},\n\
         \"host_threads\": {},\n\"benchmarks\": [\n{}\n],\n\"metrics\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        sections.join(",\n"),
        metrics.to_json()
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
