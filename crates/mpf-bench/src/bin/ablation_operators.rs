//! Ablation: hash vs. sort-based physical operators.
//!
//! The paper notes that the relational setting — unlike GDL — offers
//! multiple algorithms per logical operation, chosen by cost. This harness
//! takes the nonlinear CS+ plan for Q1 on the supply chain and executes it
//! with (a) all-hash operators, (b) all-sort operators, and (c) the
//! cost-based mix chosen by `choose_physical` under several memory budgets.
//!
//! Usage: `ablation_operators [--scale <f>]`

use mpf_algebra::{AggAlgo, Executor, JoinAlgo, PhysicalPlan};
use mpf_bench::{ms, Args};
use mpf_datagen::{SupplyChain, SupplyChainConfig};
use mpf_optimizer::{
    choose_physical, optimize, Algorithm, CostModel, PhysicalConfig, QuerySpec,
};
use mpf_semiring::SemiringKind;

fn main() {
    let args = Args::capture();
    let scale: f64 = args.get("scale", 0.05);
    let sc = SupplyChain::generate(SupplyChainConfig::proportional(scale));
    let ctx = sc.ctx(QuerySpec::group_by([sc.var("cid")]), CostModel::Io);
    let plan = optimize(&ctx, Algorithm::CsPlusNonlinear).plan;
    let exec = Executor::new(&sc.store, SemiringKind::SumProduct);

    println!("Operator-algorithm ablation (scale {scale}, Q1 = group by cid)");
    println!("{:<28} {:>12} {:>14} {:>10}", "variant", "exec ms", "work rows", "sort ops");

    let run = |label: &str, phys: &PhysicalPlan| {
        let t = std::time::Instant::now();
        let (_, stats) = exec.execute_physical(phys).expect("plan executes");
        println!(
            "{:<28} {:>12} {:>14} {:>10}",
            label,
            ms(t.elapsed()),
            stats.rows_processed,
            phys.sort_operator_count()
        );
    };

    run("all hash", &PhysicalPlan::default_hash(&plan));
    let all_sort = PhysicalPlan::from_logical(
        &plan,
        &mut |_, _| JoinAlgo::SortMerge,
        &mut |_, _| AggAlgo::SortAgg,
    );
    run("all sort", &all_sort);
    for budget in [1e2, 1e4, 1e6] {
        let phys = choose_physical(
            &ctx,
            &plan,
            PhysicalConfig {
                memory_rows: budget,
                ..PhysicalConfig::default()
            },
        );
        run(&format!("cost-based (mem {budget:.0e})"), &phys);
    }
}
