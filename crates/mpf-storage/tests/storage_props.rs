//! Property tests for the storage layer: key extraction is injective on
//! the selected columns, canonicalization is order-insensitive, and
//! complete relations enumerate exactly the domain cross product.

use mpf_storage::{Catalog, FunctionalRelation, Key, Schema};
use proptest::prelude::*;

proptest! {
    /// `Key::extract(row, positions)` equals iff the projected column
    /// values equal — no packing collisions across arities 0..=6.
    #[test]
    fn key_extraction_injective(
        a in proptest::collection::vec(0u32..1000, 6),
        b in proptest::collection::vec(0u32..1000, 6),
        positions in proptest::collection::vec(0usize..6, 0..=6),
    ) {
        let mut positions = positions;
        positions.dedup();
        let ka = Key::extract(&a, &positions);
        let kb = Key::extract(&b, &positions);
        let proj_a: Vec<u32> = positions.iter().map(|&i| a[i]).collect();
        let proj_b: Vec<u32> = positions.iter().map(|&i| b[i]).collect();
        prop_assert_eq!(ka == kb, proj_a == proj_b);
    }

    /// Shuffled row order does not change function equality.
    #[test]
    fn canonicalization_is_order_insensitive(
        rows in proptest::collection::btree_map(
            proptest::collection::vec(0u32..4, 2),
            1u32..100,
            1..12
        ),
        rotate in 0usize..12,
    ) {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 4).unwrap();
        let b = cat.add_var("b", 4).unwrap();
        let schema = Schema::new(vec![a, b]).unwrap();
        let items: Vec<(Vec<u32>, f64)> =
            rows.into_iter().map(|(r, m)| (r, m as f64)).collect();
        let r1 = FunctionalRelation::from_rows("r", schema.clone(), items.clone()).unwrap();
        let mut rotated = items.clone();
        rotated.rotate_left(rotate % items.len().max(1));
        let r2 = FunctionalRelation::from_rows("r", schema, rotated).unwrap();
        prop_assert!(r1.function_eq(&r2));
    }

    /// Complete relations have exactly one row per domain point, pass FD and
    /// domain validation, and `lookup` agrees with the generating function.
    #[test]
    fn complete_relations_enumerate_domains(
        d1 in 1u64..5,
        d2 in 1u64..5,
        salt in 0u32..100,
    ) {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", d1).unwrap();
        let b = cat.add_var("b", d2).unwrap();
        let schema = Schema::new(vec![a, b]).unwrap();
        let rel = FunctionalRelation::complete("r", schema, &cat, |row| {
            (row[0] * 7 + row[1] * 3 + salt) as f64
        });
        prop_assert_eq!(rel.len() as u64, d1 * d2);
        prop_assert!(rel.validate_fd().is_ok());
        prop_assert!(rel.validate_domains(&cat).is_ok());
        prop_assert!(rel.is_complete(&cat));
        for x in 0..d1 as u32 {
            for y in 0..d2 as u32 {
                prop_assert_eq!(rel.lookup(&[x, y]), Some((x * 7 + y * 3 + salt) as f64));
            }
        }
    }

    /// `without_zeros` under a semiring drops exactly the additive-identity
    /// rows and `function_eq_in` treats them as absent.
    #[test]
    fn zero_normalization(keep in proptest::collection::vec(any::<bool>(), 4)) {
        use mpf_semiring::SemiringKind;
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 4).unwrap();
        let schema = Schema::new(vec![a]).unwrap();
        let mut with_zeros = FunctionalRelation::new("z", schema.clone());
        let mut without = FunctionalRelation::new("w", schema);
        for (i, &k) in keep.iter().enumerate() {
            let m = if k { (i + 1) as f64 } else { 0.0 };
            with_zeros.push_row(&[i as u32], m).unwrap();
            if k {
                without.push_row(&[i as u32], m).unwrap();
            }
        }
        let sr = SemiringKind::SumProduct;
        prop_assert_eq!(
            with_zeros.without_zeros(sr).len(),
            keep.iter().filter(|&&k| k).count()
        );
        prop_assert!(with_zeros.function_eq_in(&without, sr));
    }
}
