#![warn(missing_docs)]
//! Storage layer for MPF queries: functional relations, catalog, statistics.
//!
//! A **functional relation** (Definition 1 of the paper) is a relation with
//! schema `{A1, ..., Am, f}` where the functional dependency
//! `A1 A2 ... Am -> f` holds; `f` is the *measure* attribute. This crate
//! stores such relations column-agnostically: variable (non-measure)
//! attributes are interned [`VarId`]s with values drawn from finite discrete
//! domains, and the measure is an `f64` interpreted under a semiring chosen
//! by the execution layer.
//!
//! The [`Catalog`] plays the role of an RDBMS system catalog: it records each
//! variable's domain size and each relation's cardinality — exactly the
//! statistics the paper's optimizers consume (`σ_X` and `σ̂_X` in the plan
//! linearity test of Section 5.1, domain sizes for the degree/width
//! heuristics of Section 5.5).

mod catalog;
pub mod csv_io;
pub mod dense;
mod error;
mod key;
pub mod layout;
mod relation;
mod schema;
pub mod sparse;
mod stats;

pub use catalog::{Catalog, Dictionary, VarId, VarInfo};
pub use dense::DenseFactor;
pub use error::StorageError;
pub use key::Key;
pub use relation::FunctionalRelation;
pub use schema::Schema;
pub use sparse::{Factor, SparseFactor};
pub use stats::{density_of, RelationStats};

/// A value of a discrete variable domain, represented as an index
/// `0..domain_size`.
pub type Value = u32;

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
