use crate::{Result, StorageError, VarId};

/// An ordered, duplicate-free set of variables — the non-measure attributes
/// of a functional relation (`Var(s)` in the paper's notation).
///
/// Order matters for row layout; set operations (`union`, `intersect`,
/// `difference`) are provided for the algebra layer, which uses them to
/// compute product-join output schemas (`Var(s1) ∪ Var(s2)`) and join
/// conditions (`Var(s1) ∩ Var(s2)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    vars: Vec<VarId>,
}

impl Schema {
    /// Build a schema from an ordered variable list.
    ///
    /// # Errors
    /// Returns [`StorageError::DuplicateVariable`] if a variable repeats.
    pub fn new(vars: Vec<VarId>) -> Result<Self> {
        for (i, v) in vars.iter().enumerate() {
            if vars[..i].contains(v) {
                return Err(StorageError::DuplicateVariable(format!("{v}")));
            }
        }
        Ok(Self { vars })
    }

    /// The empty schema (a relation holding a single scalar measure).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The variables, in row-layout order.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Number of variables (the relation's arity, excluding the measure).
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// Heap bytes owned by this schema: the variable vector's *capacity*
    /// (not its length), so callers accounting for resident memory see
    /// what the allocator actually handed out.
    pub fn heap_bytes(&self) -> usize {
        self.vars.capacity() * std::mem::size_of::<VarId>()
    }

    /// Whether the schema has no variables.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Whether `v` is one of the schema's variables.
    pub fn contains(&self, v: VarId) -> bool {
        self.vars.contains(&v)
    }

    /// Column position of `v` in the row layout.
    pub fn position(&self, v: VarId) -> Result<usize> {
        self.vars
            .iter()
            .position(|&x| x == v)
            .ok_or(StorageError::VariableNotInSchema(v))
    }

    /// Column positions of each variable in `vars`, in the given order.
    pub fn positions(&self, vars: &[VarId]) -> Result<Vec<usize>> {
        vars.iter().map(|&v| self.position(v)).collect()
    }

    /// `Var(self) ∪ Var(other)`, keeping `self`'s order then `other`'s new
    /// variables — the product-join output schema.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut vars = self.vars.clone();
        for &v in &other.vars {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        Schema { vars }
    }

    /// `Var(self) ∩ Var(other)` in `self`'s order — the implicit product-join
    /// condition.
    pub fn intersect(&self, other: &Schema) -> Schema {
        Schema {
            vars: self
                .vars
                .iter()
                .copied()
                .filter(|v| other.contains(*v))
                .collect(),
        }
    }

    /// `Var(self) \ set` in `self`'s order.
    pub fn difference(&self, set: &[VarId]) -> Schema {
        Schema {
            vars: self
                .vars
                .iter()
                .copied()
                .filter(|v| !set.contains(v))
                .collect(),
        }
    }

    /// Whether every variable of `self` appears in `other`.
    pub fn is_subset_of(&self, other: &Schema) -> bool {
        self.vars.iter().all(|&v| other.contains(v))
    }

    /// Whether the two schemas share at least one variable.
    pub fn overlaps(&self, other: &Schema) -> bool {
        self.vars.iter().any(|&v| other.contains(v))
    }

    /// Iterate over the variables.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars.iter().copied()
    }
}

impl FromIterator<VarId> for Schema {
    /// Build a schema from an iterator, silently dropping duplicates (useful
    /// when the source is already a set).
    fn from_iter<T: IntoIterator<Item = VarId>>(iter: T) -> Self {
        let mut vars = Vec::new();
        for v in iter {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        Schema { vars }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn rejects_duplicates() {
        assert!(Schema::new(vec![v(1), v(2), v(1)]).is_err());
        assert!(Schema::new(vec![v(1), v(2)]).is_ok());
    }

    #[test]
    fn set_operations() {
        let a = Schema::new(vec![v(1), v(2), v(3)]).unwrap();
        let b = Schema::new(vec![v(3), v(4)]).unwrap();
        assert_eq!(a.union(&b).vars(), &[v(1), v(2), v(3), v(4)]);
        assert_eq!(a.intersect(&b).vars(), &[v(3)]);
        assert_eq!(a.difference(&[v(2)]).vars(), &[v(1), v(3)]);
        assert!(a.overlaps(&b));
        assert!(!a.is_subset_of(&b));
        assert!(Schema::new(vec![v(3)]).unwrap().is_subset_of(&b));
    }

    #[test]
    fn positions() {
        let s = Schema::new(vec![v(5), v(9), v(2)]).unwrap();
        assert_eq!(s.position(v(9)).unwrap(), 1);
        assert_eq!(s.positions(&[v(2), v(5)]).unwrap(), vec![2, 0]);
        assert!(s.position(v(7)).is_err());
    }

    #[test]
    fn from_iter_dedups() {
        let s: Schema = [v(1), v(2), v(1), v(3)].into_iter().collect();
        assert_eq!(s.vars(), &[v(1), v(2), v(3)]);
    }
}
