use crate::Value;

/// A compact hashable join/group key extracted from a row.
///
/// Join and group-by keys in MPF plans are almost always 1–4 variables wide
/// (a variable's `rels` set, or a separator between junction-tree cliques),
/// so keys pack into machine words instead of allocating. Wider keys fall
/// back to a boxed slice.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// Up to one column, packed.
    P1(u32),
    /// Two columns, packed.
    P2(u64),
    /// Three or four columns, packed.
    P4(u128),
    /// Five or more columns.
    Big(Box<[Value]>),
}

impl Key {
    /// The key of the empty column set (all rows agree).
    pub const UNIT: Key = Key::P1(0);

    /// Extract the key of `row` at the given column positions.
    #[inline]
    pub fn extract(row: &[Value], positions: &[usize]) -> Key {
        match positions.len() {
            0 => Key::UNIT,
            1 => Key::P1(row[positions[0]]),
            2 => Key::P2(((row[positions[0]] as u64) << 32) | row[positions[1]] as u64),
            3 | 4 => {
                let mut p: u128 = 0;
                for &i in positions {
                    p = (p << 32) | row[i] as u128;
                }
                // Disambiguate arity 3 vs 4 (a leading zero value would
                // otherwise collide): record the arity in the top bits.
                p |= (positions.len() as u128) << 124;
                Key::P4(p)
            }
            _ => Key::Big(positions.iter().map(|&i| row[i]).collect()),
        }
    }

    /// Extract the key of an entire row (all columns in order).
    #[inline]
    pub fn of_row(row: &[Value]) -> Key {
        match row.len() {
            0 => Key::UNIT,
            1 => Key::P1(row[0]),
            2 => Key::P2(((row[0] as u64) << 32) | row[1] as u64),
            3 | 4 => {
                let mut p: u128 = 0;
                for &v in row {
                    p = (p << 32) | v as u128;
                }
                p |= (row.len() as u128) << 124;
                Key::P4(p)
            }
            _ => Key::Big(row.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_matches_columns() {
        let row = &[7, 8, 9, 10, 11, 12][..];
        assert_eq!(Key::extract(row, &[]), Key::UNIT);
        assert_eq!(Key::extract(row, &[2]), Key::P1(9));
        assert_eq!(Key::extract(row, &[0, 1]), Key::extract(&[7, 8], &[0, 1]));
        assert_ne!(Key::extract(row, &[0, 1]), Key::extract(row, &[1, 0]));
        assert_eq!(
            Key::extract(row, &[0, 1, 2, 3, 4]),
            Key::Big(vec![7, 8, 9, 10, 11].into_boxed_slice())
        );
    }

    #[test]
    fn arity_three_and_four_do_not_collide() {
        // [0, 1, 2] as a 3-key must differ from [0, 0, 1, 2] as a 4-key even
        // though their packed value bits coincide.
        let k3 = Key::extract(&[0, 1, 2], &[0, 1, 2]);
        let k4 = Key::extract(&[0, 0, 1, 2], &[0, 1, 2, 3]);
        assert_ne!(k3, k4);
    }

    #[test]
    fn of_row_matches_extract_all() {
        for row in [vec![3u32], vec![3, 4], vec![3, 4, 5], vec![3, 4, 5, 6, 7]] {
            let all: Vec<usize> = (0..row.len()).collect();
            assert_eq!(Key::of_row(&row), Key::extract(&row, &all));
        }
    }
}
