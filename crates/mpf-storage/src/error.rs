use crate::VarId;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A variable name was registered twice in a schema.
    DuplicateVariable(String),
    /// A variable name is not present in the catalog.
    UnknownVariable(String),
    /// A variable id is not present in a schema.
    VariableNotInSchema(VarId),
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Arity the schema expects.
        expected: usize,
        /// Arity the row provided.
        got: usize,
    },
    /// The functional dependency `A1..Am -> f` is violated: two rows share
    /// variable values but differ in measure.
    FdViolation {
        /// Index of the earlier conflicting row.
        first_row: usize,
        /// Index of the later conflicting row.
        second_row: usize,
    },
    /// A value is outside its variable's declared domain.
    ValueOutOfDomain {
        /// The offending variable.
        var: VarId,
        /// The offending value.
        value: u32,
        /// The declared domain size.
        domain: u64,
    },
    /// A measure is invalid for the active semiring (e.g. negative in
    /// min-product, non-0/1 in Boolean).
    InvalidMeasure(f64),
    /// A relation name was not found.
    UnknownRelation(String),
    /// A relation name is already in use.
    DuplicateRelation(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::DuplicateVariable(n) => write!(f, "duplicate variable `{n}`"),
            StorageError::UnknownVariable(n) => write!(f, "unknown variable `{n}`"),
            StorageError::VariableNotInSchema(v) => {
                write!(f, "variable {v:?} is not in the relation schema")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            StorageError::FdViolation {
                first_row,
                second_row,
            } => write!(
                f,
                "functional dependency violated: rows {first_row} and {second_row} share \
                 variable values but have different measures"
            ),
            StorageError::ValueOutOfDomain { var, value, domain } => write!(
                f,
                "value {value} of variable {var:?} is outside its domain of size {domain}"
            ),
            StorageError::InvalidMeasure(m) => {
                write!(f, "measure {m} is invalid for the active semiring")
            }
            StorageError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            StorageError::DuplicateRelation(n) => write!(f, "relation `{n}` already exists"),
        }
    }
}

impl std::error::Error for StorageError {}
