use std::collections::HashMap;
use std::sync::OnceLock;

use mpf_semiring::approx_eq;

use crate::{Catalog, Key, Result, Schema, StorageError, Value, VarId};

/// Assumed page size (bytes) for the simulated-IO cost accounting.
const PAGE_BYTES: u64 = 8192;

/// The key column of a [`FunctionalRelation`]: either explicit packed
/// rows, or — for grid-complete relations in odometer order — just the
/// domain vector, with row `i`'s values *implied* as the odometer
/// decomposition of `i`. The grid form is what
/// [`FunctionalRelation::complete`] and `DenseFactor::into_relation`
/// produce; it certifies odometer order in O(1) (so dense kernels skip
/// the verification scan entirely) and defers materializing the packed
/// keys until a row consumer actually asks, which on a dense→dense
/// pipeline is never.
#[derive(Debug, Clone)]
enum KeyCol {
    /// Explicit row-major packed keys (`len() * arity()` values).
    Rows(Vec<Value>),
    /// Implicit odometer sequence over `domains`; `cache` holds the
    /// packed materialization once some consumer needs real key slices.
    Grid {
        domains: Vec<u64>,
        cache: OnceLock<Vec<Value>>,
    },
}

/// Materialize the odometer key sequence of a grid: runs of the last
/// (fastest) column under a prefix that advances once per run, so the
/// hot per-row loop never branches.
fn odometer_keys(domains: &[u64], total: usize) -> Vec<Value> {
    let arity = domains.len();
    let mut values = vec![0 as Value; total * arity];
    if arity > 0 && total > 0 {
        let dlast = domains[arity - 1];
        let mut prefix = vec![0 as Value; arity - 1];
        let mut w = 0usize;
        for _ in 0..total as u64 / dlast {
            for j in 0..dlast {
                values[w..w + arity - 1].copy_from_slice(&prefix);
                values[w + arity - 1] = j as Value;
                w += arity;
            }
            for c in (0..arity - 1).rev() {
                prefix[c] += 1;
                if (prefix[c] as u64) < domains[c] {
                    break;
                }
                prefix[c] = 0;
            }
        }
    }
    values
}

/// A functional relation (Definition 1): rows of discrete variable values
/// plus a measure column functionally determined by them.
///
/// Storage is row-major: the key column holds `len() * arity()` packed
/// `u32`s (explicitly, or implied by an odometer grid — see [`KeyCol`])
/// and `measures` holds one `f64` per row. The FD `A1..Am -> f` is
/// validated on demand ([`FunctionalRelation::validate_fd`]) rather than
/// on every insert, so bulk loads stay cheap.
#[derive(Debug, Clone)]
pub struct FunctionalRelation {
    name: String,
    schema: Schema,
    keys: KeyCol,
    measures: Vec<f64>,
}

impl PartialEq for FunctionalRelation {
    /// Structural equality: same name, schema, and row sequence, with
    /// measures compared under the crate-wide [`approx_eq`] tolerance.
    /// The kernels accumulate floating point in different (but fixed)
    /// orders per representation, so bit-exact measure comparison would
    /// make "same rows, same function" results compare unequal; the
    /// tolerance here is the same one [`FunctionalRelation::function_eq`]
    /// already applies.
    fn eq(&self, other: &Self) -> bool {
        // Two grid key columns with equal domains imply identical row
        // sequences without materializing either side.
        let keys_eq = match (&self.keys, &other.keys) {
            (KeyCol::Grid { domains: a, .. }, KeyCol::Grid { domains: b, .. }) => a == b,
            _ => self.values_col() == other.values_col(),
        };
        self.name == other.name
            && self.schema == other.schema
            && keys_eq
            && self.measures.len() == other.measures.len()
            && self
                .measures
                .iter()
                .zip(&other.measures)
                .all(|(&a, &b)| approx_eq(a, b))
    }
}

impl FunctionalRelation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema,
            keys: KeyCol::Rows(Vec::new()),
            measures: Vec::new(),
        }
    }

    /// Create a relation from `(row, measure)` pairs.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: impl IntoIterator<Item = (Vec<Value>, f64)>,
    ) -> Result<Self> {
        let mut rel = Self::new(name, schema);
        for (row, m) in rows {
            rel.push_row(&row, m)?;
        }
        Ok(rel)
    }

    /// Create a *complete* relation (Section 2): one row for every point of
    /// the cross product of the schema variables' domains, with the measure
    /// given by `measure_fn` applied to the row.
    ///
    /// Complete relations are required in principle for probability
    /// functions, and the paper's synthetic star/linear/multistar experiment
    /// schemas are all complete.
    pub fn complete(
        name: impl Into<String>,
        schema: Schema,
        catalog: &Catalog,
        mut measure_fn: impl FnMut(&[Value]) -> f64,
    ) -> Self {
        let arity = schema.arity();
        let domains: Vec<u64> = schema.iter().map(|v| catalog.domain_size(v)).collect();
        let total = domains.iter().product::<u64>() as usize;
        // Only the measure column is materialized; the keys are the grid's
        // odometer sequence and stay implicit ([`KeyCol::Grid`]) until a
        // row consumer asks for them.
        let mut measures = Vec::with_capacity(total);
        let mut row = vec![0u32; arity];
        for _ in 0..total {
            measures.push(measure_fn(&row));
            // Odometer increment.
            for c in (0..arity).rev() {
                row[c] += 1;
                if (row[c] as u64) < domains[c] {
                    break;
                }
                row[c] = 0;
            }
        }
        Self::from_grid(name, schema, domains, measures)
    }

    /// Assemble a relation from pre-built packed columns (crate-internal:
    /// the dense⇄sparse converters fill `values`/`measures` directly).
    pub(crate) fn from_parts(
        name: impl Into<String>,
        schema: Schema,
        values: Vec<Value>,
        measures: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(values.len(), measures.len() * schema.arity());
        Self {
            name: name.into(),
            schema,
            keys: KeyCol::Rows(values),
            measures,
        }
    }

    /// Assemble a grid-complete relation in odometer order from its
    /// domain vector and cell measures alone (crate-internal: what
    /// [`FunctionalRelation::complete`] and `DenseFactor::into_relation`
    /// build). The packed keys stay implicit — O(1) here — and the grid
    /// form doubles as a proof of odometer order, so densification never
    /// re-verifies it.
    pub(crate) fn from_grid(
        name: impl Into<String>,
        schema: Schema,
        domains: Vec<u64>,
        measures: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(domains.len(), schema.arity());
        debug_assert_eq!(domains.iter().product::<u64>(), measures.len() as u64);
        Self {
            name: name.into(),
            schema,
            keys: KeyCol::Grid {
                domains,
                cache: OnceLock::new(),
            },
            measures,
        }
    }

    /// For a grid-complete relation in odometer order, the domain vector
    /// its rows enumerate — the O(1) certificate the dense kernels use to
    /// skip the odometer-order verification scan. `None` for explicit-row
    /// relations (which may still *be* odometer-ordered; callers fall
    /// back to the scanning check).
    pub fn grid_domains(&self) -> Option<&[u64]> {
        match &self.keys {
            KeyCol::Rows(_) => None,
            KeyCol::Grid { domains, .. } => Some(domains),
        }
    }

    /// The packed key column, materializing a grid's odometer sequence on
    /// first access.
    fn keys(&self) -> &[Value] {
        match &self.keys {
            KeyCol::Rows(v) => v,
            KeyCol::Grid { domains, cache } => {
                cache.get_or_init(|| odometer_keys(domains, self.measures.len()))
            }
        }
    }

    /// The key column as an owned, mutable vector, demoting a grid to
    /// explicit rows first (mutation invalidates the odometer
    /// certificate).
    fn keys_mut(&mut self) -> &mut Vec<Value> {
        if let KeyCol::Grid { domains, cache } = &mut self.keys {
            let v = match cache.take() {
                Some(v) => v,
                None => odometer_keys(domains, self.measures.len()),
            };
            self.keys = KeyCol::Rows(v);
        }
        match &mut self.keys {
            KeyCol::Rows(v) => v,
            KeyCol::Grid { .. } => unreachable!("demoted above"),
        }
    }

    /// Append a row.
    ///
    /// # Errors
    /// [`StorageError::ArityMismatch`] if `row.len() != arity()`.
    pub fn push_row(&mut self, row: &[Value], measure: f64) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.keys_mut().extend_from_slice(row);
        self.measures.push(measure);
        Ok(())
    }

    /// Append a row without the arity check.
    ///
    /// The partitioning fast paths use this when rows are copied from a
    /// relation that already has the destination schema, so re-validating
    /// every row through [`FunctionalRelation::push_row`] is pure
    /// overhead. The caller guarantees `row.len() == arity()`; this is
    /// asserted in debug builds only.
    #[inline]
    pub fn push_row_unchecked(&mut self, row: &[Value], measure: f64) {
        debug_assert_eq!(row.len(), self.schema.arity());
        self.keys_mut().extend_from_slice(row);
        self.measures.push(measure);
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the relation (consuming builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The relation's variable schema (`Var(s)`).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (the relation's cardinality).
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// Heap bytes owned by this relation: name + schema + value and
    /// measure columns, each charged at vector *capacity* rather than
    /// length so the figure matches what the allocator handed out (a
    /// relation grown row-by-row can hold nearly 2x its length in
    /// capacity). Used by residency accounting (the engine's view
    /// cache) but meaningful for any memory budgeting.
    pub fn heap_bytes(&self) -> usize {
        // A grid key column is charged as if materialized: its cache may
        // fill at any time after a consumer asks for packed keys, and
        // residency accounting must not go stale when it does.
        let key_bytes = match &self.keys {
            KeyCol::Rows(v) => v.capacity() * std::mem::size_of::<Value>(),
            KeyCol::Grid { domains, .. } => {
                domains.capacity() * std::mem::size_of::<u64>()
                    + self.measures.len() * self.schema.arity() * std::mem::size_of::<Value>()
            }
        };
        self.name.capacity()
            + self.schema.heap_bytes()
            + key_bytes
            + self.measures.capacity() * std::mem::size_of::<f64>()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    /// Number of variable columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// The `i`th row's variable values.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        let a = self.schema.arity();
        &self.keys()[i * a..(i + 1) * a]
    }

    /// The `i`th row's measure.
    #[inline]
    pub fn measure(&self, i: usize) -> f64 {
        self.measures[i]
    }

    /// All measures.
    pub fn measures(&self) -> &[f64] {
        &self.measures
    }

    /// The flat value storage (row-major, `len() * arity()` packed
    /// values) as one zero-copy slice — for kernels and conversions that
    /// scan all rows without per-row slice bookkeeping. On a grid key
    /// column this materializes the odometer sequence (once, cached);
    /// consumers that only need to *prove* odometer order should check
    /// [`FunctionalRelation::grid_domains`] first.
    pub fn values_col(&self) -> &[Value] {
        self.keys()
    }

    /// Overwrite the `i`th row's measure (used by aggregation operators to
    /// fold into an accumulator row in place).
    #[inline]
    pub fn set_measure(&mut self, i: usize, m: f64) {
        self.measures[i] = m;
    }

    /// Iterate `(row, measure)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (&[Value], f64)> + '_ {
        (0..self.len()).map(|i| (self.row(i), self.measures[i]))
    }

    /// Value of variable `var` in row `i`.
    pub fn value(&self, i: usize, var: VarId) -> Result<Value> {
        Ok(self.row(i)[self.schema.position(var)?])
    }

    /// Verify the functional dependency `A1..Am -> f` (Definition 1): no two
    /// rows may share variable values. (Two rows with equal values and equal
    /// measures are still duplicates and rejected — a functional relation is
    /// a set.)
    pub fn validate_fd(&self) -> Result<()> {
        let mut seen: HashMap<Key, usize> = HashMap::with_capacity(self.len());
        for i in 0..self.len() {
            let k = Key::of_row(self.row(i));
            if let Some(&first) = seen.get(&k) {
                return Err(StorageError::FdViolation {
                    first_row: first,
                    second_row: i,
                });
            }
            seen.insert(k, i);
        }
        Ok(())
    }

    /// Verify every value is within its variable's catalog domain.
    pub fn validate_domains(&self, catalog: &Catalog) -> Result<()> {
        let domains: Vec<u64> = self.schema.iter().map(|v| catalog.domain_size(v)).collect();
        let vars: Vec<VarId> = self.schema.iter().collect();
        for i in 0..self.len() {
            for (c, &v) in self.row(i).iter().enumerate() {
                if (v as u64) >= domains[c] {
                    return Err(StorageError::ValueOutOfDomain {
                        var: vars[c],
                        value: v,
                        domain: domains[c],
                    });
                }
            }
        }
        Ok(())
    }

    /// Whether the relation is complete: it holds exactly one row per point
    /// of its variables' domain cross product.
    pub fn is_complete(&self, catalog: &Catalog) -> bool {
        let total = catalog.domain_product(self.schema.iter());
        self.len() as u64 == total && self.validate_fd().is_ok()
    }

    /// Per-column domain sizes inferred from the data (`max value + 1`;
    /// 0 for an empty relation). For a complete relation this equals the
    /// catalog domains; for any relation it is the tightest odometer grid
    /// that still covers every row, which is what the dense kernels index
    /// over when no catalog is in scope.
    pub fn inferred_domains(&self) -> Vec<u64> {
        let arity = self.schema.arity();
        let mut max = vec![0u64; arity];
        if self.is_empty() {
            return max;
        }
        for i in 0..self.len() {
            for (c, &v) in self.row(i).iter().enumerate() {
                if (v as u64) >= max[c] {
                    max[c] = v as u64 + 1;
                }
            }
        }
        max
    }

    /// Convert to a [`crate::DenseFactor`] over the catalog's domain grid,
    /// with absent rows taking the measure `fill` (the caller passes the
    /// semiring's additive identity: under MPF semantics a missing row *is*
    /// the additive zero). Returns `None` when the grid does not fit
    /// ([`crate::dense::MAX_DENSE_CELLS`]), a value falls outside its
    /// catalog domain, or a duplicate argument tuple makes the relation
    /// non-functional.
    pub fn try_to_dense(&self, catalog: &Catalog, fill: f64) -> Option<crate::DenseFactor> {
        let domains: Vec<u64> = self.schema.iter().map(|v| catalog.domain_size(v)).collect();
        crate::DenseFactor::from_relation(self, &domains, fill)
    }

    /// Build a hash index from key columns to row indices. `positions` are
    /// column positions (see [`Schema::positions`]).
    pub fn build_index(&self, positions: &[usize]) -> HashMap<Key, Vec<u32>> {
        let mut index: HashMap<Key, Vec<u32>> = HashMap::with_capacity(self.len());
        for i in 0..self.len() {
            index
                .entry(Key::extract(self.row(i), positions))
                .or_default()
                .push(i as u32);
        }
        index
    }

    /// Look up the measure of an exact variable-value row (linear in the
    /// relation size; intended for tests and small relations).
    pub fn lookup(&self, row: &[Value]) -> Option<f64> {
        (0..self.len()).find_map(|i| (self.row(i) == row).then(|| self.measures[i]))
    }

    /// Bytes per row (values + measure) for the simulated-IO accounting.
    pub fn row_bytes(&self) -> u64 {
        (self.schema.arity() * std::mem::size_of::<Value>() + std::mem::size_of::<f64>()) as u64
    }

    /// Number of pages this relation would occupy on disk; the unit of the
    /// IO cost model.
    pub fn estimated_pages(&self) -> u64 {
        (self.len() as u64 * self.row_bytes()).div_ceil(PAGE_BYTES).max(1)
    }

    /// A canonical copy with rows sorted lexicographically by variable
    /// values. Two functional relations over the same schema are equal as
    /// functions iff their canonicalized row/measure sequences match.
    pub fn canonicalized(&self) -> Self {
        // A grid's odometer sequence is already lexicographically sorted.
        if self.grid_domains().is_some() {
            return self.clone();
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| self.row(a).cmp(self.row(b)));
        let mut values = Vec::with_capacity(self.len() * self.schema.arity());
        let mut measures = Vec::with_capacity(self.measures.len());
        for i in order {
            values.extend_from_slice(self.row(i));
            measures.push(self.measures[i]);
        }
        Self::from_parts(self.name.clone(), self.schema.clone(), values, measures)
    }

    /// A copy without rows whose measure is the semiring's additive
    /// identity. Under the MPF semantics a missing row *is* the additive
    /// identity, so explicit-zero rows (which arise e.g. when a calibrated
    /// table is scaled by an empty component's total) and absent rows
    /// represent the same function.
    pub fn without_zeros(&self, sr: mpf_semiring::SemiringKind) -> Self {
        let zero = sr.zero();
        let mut out = Self::new(self.name.clone(), self.schema.clone());
        for (row, m) in self.rows() {
            if m != zero {
                out.push_row(row, m).expect("same schema");
            }
        }
        out
    }

    /// [`FunctionalRelation::function_eq`] modulo explicit additive-zero
    /// rows: the semantically-correct equality for MPF results.
    pub fn function_eq_in(&self, other: &FunctionalRelation, sr: mpf_semiring::SemiringKind) -> bool {
        self.without_zeros(sr).function_eq(&other.without_zeros(sr))
    }

    /// Compare two relations as *functions*: same variable set, and the same
    /// measure for every point of the domain, up to floating-point tolerance
    /// and column/row order. Rows whose measure is `zero` are *not* treated
    /// specially — both sides must materialize the same support.
    pub fn function_eq(&self, other: &FunctionalRelation) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let self_set: std::collections::BTreeSet<VarId> = self.schema.iter().collect();
        let other_set: std::collections::BTreeSet<VarId> = other.schema.iter().collect();
        if self_set != other_set {
            return false;
        }
        // Reorder other's columns to match ours, then compare canonical forms.
        let perm: Vec<usize> = match self
            .schema
            .iter()
            .map(|v| other.schema.position(v))
            .collect::<Result<Vec<_>>>()
        {
            Ok(p) => p,
            Err(_) => return false,
        };
        let a = self.canonicalized();
        let mut permuted = Self::new("", self.schema.clone());
        for (row, m) in other.rows() {
            let reordered: Vec<Value> = perm.iter().map(|&i| row[i]).collect();
            permuted.keys_mut().extend_from_slice(&reordered);
            permuted.measures.push(m);
        }
        let b = permuted.canonicalized();
        (0..a.len()).all(|i| a.row(i) == b.row(i) && approx_eq(a.measure(i), b.measure(i)))
    }
}

impl FunctionalRelation {
    /// Render as an ASCII table with variable names resolved through a
    /// catalog (the `Display` impl falls back to raw variable ids).
    pub fn to_table_string(&self, catalog: &Catalog) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{} ({} rows)", self.name, self.len());
        let header: Vec<&str> = self.schema.iter().map(|v| catalog.name(v)).collect();
        let _ = writeln!(out, "  {} | f", header.join(" "));
        for i in 0..self.len().min(20) {
            let row: Vec<String> = self.row(i).iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "  {} | {}", row.join(" "), self.measures[i]);
        }
        if self.len() > 20 {
            let _ = writeln!(out, "  ... ({} more rows)", self.len() - 20);
        }
        out
    }
}

impl std::fmt::Display for FunctionalRelation {
    /// Render as a small ASCII table (intended for examples and docs; large
    /// relations are truncated to 20 rows).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} ({} rows)", self.name, self.len())?;
        let header: Vec<String> = self.schema.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "  {} | f", header.join(" "))?;
        for i in 0..self.len().min(20) {
            let row: Vec<String> = self.row(i).iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {} | {}", row.join(" "), self.measures[i])?;
        }
        if self.len() > 20 {
            writeln!(f, "  ... ({} more rows)", self.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog3() -> (Catalog, VarId, VarId, VarId) {
        let mut c = Catalog::new();
        let a = c.add_var("a", 2).unwrap();
        let b = c.add_var("b", 3).unwrap();
        let d = c.add_var("d", 2).unwrap();
        (c, a, b, d)
    }

    #[test]
    fn push_and_access() {
        let (_, a, b, _) = catalog3();
        let schema = Schema::new(vec![a, b]).unwrap();
        let mut r = FunctionalRelation::new("r", schema);
        r.push_row(&[0, 1], 2.5).unwrap();
        r.push_row(&[1, 2], 3.5).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), &[1, 2]);
        assert_eq!(r.measure(0), 2.5);
        assert_eq!(r.value(1, b).unwrap(), 2);
        assert!(r.push_row(&[1], 0.0).is_err());
    }

    #[test]
    fn fd_validation() {
        let (_, a, b, _) = catalog3();
        let schema = Schema::new(vec![a, b]).unwrap();
        let mut r = FunctionalRelation::new("r", schema);
        r.push_row(&[0, 1], 2.5).unwrap();
        r.push_row(&[0, 1], 9.0).unwrap();
        assert!(matches!(
            r.validate_fd(),
            Err(StorageError::FdViolation {
                first_row: 0,
                second_row: 1
            })
        ));
    }

    #[test]
    fn complete_relation() {
        let (c, a, b, _) = catalog3();
        let schema = Schema::new(vec![a, b]).unwrap();
        let r = FunctionalRelation::complete("r", schema, &c, |row| (row[0] * 10 + row[1]) as f64);
        assert_eq!(r.len(), 6);
        assert!(r.is_complete(&c));
        assert_eq!(r.lookup(&[1, 2]), Some(12.0));
        assert_eq!(r.lookup(&[0, 0]), Some(0.0));
        r.validate_fd().unwrap();
        r.validate_domains(&c).unwrap();
    }

    #[test]
    fn domain_validation() {
        let (c, a, b, _) = catalog3();
        let schema = Schema::new(vec![a, b]).unwrap();
        let mut r = FunctionalRelation::new("r", schema);
        r.push_row(&[0, 5], 1.0).unwrap();
        assert!(matches!(
            r.validate_domains(&c),
            Err(StorageError::ValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn function_equality_ignores_order() {
        let (_, a, b, _) = catalog3();
        let s1 = Schema::new(vec![a, b]).unwrap();
        let s2 = Schema::new(vec![b, a]).unwrap();
        let r1 =
            FunctionalRelation::from_rows("x", s1, [(vec![0, 1], 2.0), (vec![1, 2], 3.0)]).unwrap();
        let r2 =
            FunctionalRelation::from_rows("y", s2, [(vec![2, 1], 3.0), (vec![1, 0], 2.0)]).unwrap();
        assert!(r1.function_eq(&r2));
        let r3 =
            FunctionalRelation::from_rows("z", r1.schema().clone(), [(vec![0, 1], 2.0)]).unwrap();
        assert!(!r1.function_eq(&r3));
    }

    #[test]
    fn index_groups_rows() {
        let (_, a, b, _) = catalog3();
        let schema = Schema::new(vec![a, b]).unwrap();
        let r = FunctionalRelation::from_rows(
            "r",
            schema,
            [(vec![0, 1], 1.0), (vec![0, 2], 2.0), (vec![1, 1], 3.0)],
        )
        .unwrap();
        let idx = r.build_index(&[0]);
        assert_eq!(idx[&Key::P1(0)], vec![0, 1]);
        assert_eq!(idx[&Key::P1(1)], vec![2]);
    }

    #[test]
    fn pages_estimate() {
        let (_, a, b, _) = catalog3();
        let schema = Schema::new(vec![a, b]).unwrap();
        let mut r = FunctionalRelation::new("r", schema);
        assert_eq!(r.estimated_pages(), 1);
        for i in 0..10_000 {
            r.push_row(&[i % 2, i % 3], 1.0).unwrap();
        }
        // 16 bytes/row * 10k rows = 160_000 bytes -> 20 pages.
        assert_eq!(r.row_bytes(), 16);
        assert_eq!(r.estimated_pages(), 20);
    }

    #[test]
    fn complete_relations_carry_the_grid_certificate_lazily() {
        let (c, a, b, _) = catalog3();
        let schema = Schema::new(vec![a, b]).unwrap();
        let r = FunctionalRelation::complete("r", schema, &c, |row| (row[0] * 10 + row[1]) as f64);
        // The grid certificate is available without materializing keys.
        assert_eq!(r.grid_domains(), Some(&[2u64, 3][..]));
        // Row access still sees the odometer sequence, identical to a
        // push-built copy.
        assert_eq!(r.row(0), &[0, 0]);
        assert_eq!(r.row(4), &[1, 1]);
        let explicit = FunctionalRelation::from_rows(
            "r",
            r.schema().clone(),
            r.rows().map(|(row, m)| (row.to_vec(), m)),
        )
        .unwrap();
        assert_eq!(r, explicit);
        assert!(explicit.grid_domains().is_none());
        // Equality also holds grid-vs-grid without any materialization.
        let r2 = FunctionalRelation::complete(
            "r",
            r.schema().clone(),
            &c,
            |row| (row[0] * 10 + row[1]) as f64,
        );
        assert_eq!(r, r2);
        // Canonicalization is the identity on a grid (odometer order is
        // lexicographic order).
        assert_eq!(r.canonicalized(), r);
    }

    #[test]
    fn mutating_a_grid_relation_demotes_its_certificate() {
        let (c, a, b, _) = catalog3();
        let schema = Schema::new(vec![a, b]).unwrap();
        let mut r =
            FunctionalRelation::complete("r", schema, &c, |row| (row[0] * 10 + row[1]) as f64);
        assert!(r.grid_domains().is_some());
        // Pushing a row invalidates odometer order; the certificate must
        // disappear while the existing rows stay intact.
        r.push_row(&[0, 0], 99.0).unwrap();
        assert!(r.grid_domains().is_none());
        assert_eq!(r.len(), 7);
        assert_eq!(r.row(0), &[0, 0]);
        assert_eq!(r.row(6), &[0, 0]);
        assert_eq!(r.measure(6), 99.0);
    }

    #[test]
    fn heap_bytes_is_capacity_accurate() {
        let (_, a, b, _) = catalog3();
        let schema = Schema::new(vec![a, b]).unwrap();
        let mut r = FunctionalRelation::new("rel", schema);
        let expect = |r: &FunctionalRelation| {
            let key_bytes = match &r.keys {
                KeyCol::Rows(v) => v.capacity() * std::mem::size_of::<Value>(),
                KeyCol::Grid { .. } => unreachable!("push-built relation"),
            };
            r.name.capacity()
                + r.schema().heap_bytes()
                + key_bytes
                + r.measures.capacity() * std::mem::size_of::<f64>()
        };
        assert_eq!(r.heap_bytes(), expect(&r));
        for i in 0..1000 {
            r.push_row(&[i % 2, i % 3], 1.0).unwrap();
        }
        // Capacity, not length: push-grown vectors over-allocate, and the
        // accounting must see that slack.
        assert!(r.measures.capacity() > r.len());
        assert_eq!(r.heap_bytes(), expect(&r));
        assert!(
            r.heap_bytes()
                > r.len() * (2 * std::mem::size_of::<Value>() + std::mem::size_of::<f64>())
        );
    }
}
