//! Shared odometer/stride/linearization math for grid-shaped factors.
//!
//! Every factor representation that indexes a domain grid — the dense
//! row-major array ([`crate::DenseFactor`]), the CSR-like sparse tensor
//! ([`crate::SparseFactor`]), and the dense kernels in the algebra layer
//! — needs the same primitives: row-major strides for a domain vector,
//! grid-size computation with overflow guards, linearization of a
//! variable-value row into a cell index (and back), and the
//! odometer-order check that proves a relation's measure column *is* a
//! grid's value array. They used to be duplicated between
//! `mpf-storage/src/dense.rs` and `mpf-algebra/src/dense.rs`; this
//! module is the single home, re-exported from [`crate::dense`] for
//! compatibility.

use crate::{FunctionalRelation, Value};

/// Hard cap on dense-grid cells (2^24 = 16M cells ≈ 128 MiB of `f64`).
/// Conversions refuse grids beyond this, so a mis-estimated density can
/// cost a refused fast path but never an absurd allocation.
pub const MAX_DENSE_CELLS: u64 = 1 << 24;

/// Cap on *coordinate-space* cells for the sparse tensor (2^62). Sparse
/// factors never allocate per cell — only per present row — so the cap
/// exists solely to keep linearized `u64` coordinates from overflowing
/// in intermediate products (an output coordinate is `a * bc + b` with
/// both factors below the cap).
pub const MAX_SPARSE_COORD_CELLS: u64 = 1 << 62;

/// Row-major strides for a domain vector: `strides[i]` is the product of
/// all domains after position `i`.
pub fn strides_of(domains: &[u64]) -> Vec<u64> {
    let mut strides = vec![1u64; domains.len()];
    for i in (0..domains.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * domains[i + 1];
    }
    strides
}

/// The grid size for a domain vector, or `None` when it overflows
/// [`MAX_DENSE_CELLS`] (or `u64`).
pub fn grid_cells(domains: &[u64]) -> Option<u64> {
    let mut total: u64 = 1;
    for &d in domains {
        total = total.checked_mul(d)?;
        if total > MAX_DENSE_CELLS {
            return None;
        }
    }
    Some(total)
}

/// The coordinate-space size for a domain vector under the much wider
/// sparse cap ([`MAX_SPARSE_COORD_CELLS`]): sparse tensors only store
/// present cells, so the grid itself is never allocated and only
/// coordinate overflow matters.
pub fn grid_cells_wide(domains: &[u64]) -> Option<u64> {
    let mut total: u64 = 1;
    for &d in domains {
        total = total.checked_mul(d)?;
        if total > MAX_SPARSE_COORD_CELLS {
            return None;
        }
    }
    Some(total)
}

/// Linearize a variable-value row into its grid cell index under
/// row-major `strides` (no bounds checking: callers validate domains
/// once per relation, not per row).
#[inline]
pub fn linearize(row: &[Value], strides: &[u64]) -> u64 {
    debug_assert_eq!(row.len(), strides.len());
    row.iter()
        .zip(strides)
        .map(|(&v, &s)| v as u64 * s)
        .sum::<u64>()
}

/// Decompose a grid cell index into the variable values of its row,
/// written into `row` (schema order).
#[inline]
pub fn delinearize(idx: u64, strides: &[u64], row: &mut [Value]) {
    debug_assert_eq!(row.len(), strides.len());
    let mut rem = idx;
    for (c, &s) in strides.iter().enumerate() {
        row[c] = (rem / s) as Value;
        rem %= s;
    }
}

/// Whether `rel`'s rows are exactly the odometer sequence of the grid
/// `domains` — the row order [`FunctionalRelation::complete`] and
/// [`crate::DenseFactor::into_relation`] emit. A `true` result proves
/// the relation is complete on the grid (right row count, every point
/// once, nothing out of bounds), so its measure column *is* the grid's
/// dense value array and kernels may read it in place with no
/// conversion copy. One sequential scan: runs of the last (fastest)
/// column are compared against a prefix that only advances once per
/// run.
pub fn is_odometer_ordered(rel: &FunctionalRelation, domains: &[u64]) -> bool {
    let arity = rel.schema().arity();
    if domains.len() != arity || grid_cells(domains) != Some(rel.len() as u64) {
        return false;
    }
    if arity == 0 || rel.is_empty() {
        return true;
    }
    // A grid-certified relation proves its order in O(arity): its rows
    // are the odometer sequence of `g`, and one sequence is the odometer
    // of exactly one domain vector (per-column max + 1), so it matches
    // `domains` iff the vectors are equal — no scan, and no key
    // materialization.
    if let Some(g) = rel.grid_domains() {
        return g == domains;
    }
    let vals = rel.values_col();
    let dlast = domains[arity - 1];
    if dlast == 0 {
        return false;
    }
    let mut prefix = vec![0 as Value; arity - 1];
    let mut i = 0usize;
    for _ in 0..rel.len() as u64 / dlast {
        // Accumulate mismatches branchlessly within a run; one test per
        // run keeps the hot loop a straight compare.
        let mut ok = true;
        for j in 0..dlast as Value {
            for (c, &p) in prefix.iter().enumerate() {
                ok &= vals[i + c] == p;
            }
            ok &= vals[i + arity - 1] == j;
            i += arity;
        }
        if !ok {
            return false;
        }
        for c in (0..arity - 1).rev() {
            prefix[c] += 1;
            if (prefix[c] as u64) < domains[c] {
                break;
            }
            prefix[c] = 0;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides_of(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_of(&[5]), vec![1]);
        assert_eq!(strides_of(&[]), Vec::<u64>::new());
    }

    #[test]
    fn grid_cells_guards_overflow() {
        assert_eq!(grid_cells(&[2, 3]), Some(6));
        assert_eq!(grid_cells(&[1 << 20, 1 << 20]), None);
        assert_eq!(grid_cells(&[u64::MAX, u64::MAX]), None);
        assert_eq!(grid_cells(&[]), Some(1));
    }

    #[test]
    fn wide_cells_admit_grids_the_dense_cap_refuses() {
        // 2^40 cells: far beyond the dense allocation cap, fine as a
        // sparse coordinate space.
        assert_eq!(grid_cells(&[1 << 20, 1 << 20]), None);
        assert_eq!(grid_cells_wide(&[1 << 20, 1 << 20]), Some(1 << 40));
        assert_eq!(grid_cells_wide(&[1 << 40, 1 << 40]), None);
        assert_eq!(grid_cells_wide(&[u64::MAX, 2]), None);
    }

    #[test]
    fn linearize_round_trips() {
        let domains = [2u64, 3, 4];
        let strides = strides_of(&domains);
        let mut row = [0 as Value; 3];
        for idx in 0..24u64 {
            delinearize(idx, &strides, &mut row);
            assert_eq!(linearize(&row, &strides), idx);
        }
        assert_eq!(linearize(&[1, 2, 3], &strides), 23);
    }
}
