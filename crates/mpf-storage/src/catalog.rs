use std::collections::HashMap;

use crate::{Result, StorageError};

/// An interned variable (non-measure attribute) identifier.
///
/// Variables are global to a [`Catalog`]; two relations mentioning the same
/// `VarId` share that variable's domain, which is what makes the implicit
/// natural-join semantics of product joins well defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Catalog metadata for one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Human-readable attribute name (e.g. `wid`).
    pub name: String,
    /// Size of the variable's discrete domain; values are `0..domain_size`.
    pub domain_size: u64,
}

/// Dictionary encoding for a labeled variable: external string labels
/// interned to dense `Value` indices (used by CSV import/export).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    labels: Vec<String>,
    by_label: HashMap<String, u32>,
}

impl Dictionary {
    /// Intern a label, returning its value index.
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(&v) = self.by_label.get(label) {
            return v;
        }
        let v = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.by_label.insert(label.to_string(), v);
        v
    }

    /// The label of a value index, if interned.
    pub fn label(&self, value: u32) -> Option<&str> {
        self.labels.get(value as usize).map(String::as_str)
    }

    /// The value index of a label, if interned.
    pub fn value(&self, label: &str) -> Option<u32> {
        self.by_label.get(label).copied()
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no labels are interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// The system catalog: interned variables with domain-size statistics.
///
/// This mirrors the statistics the paper assumes are "readily available in
/// the catalog of RDBMS systems" (Section 5.1): per-variable domain sizes
/// (`σ_X = |X|`) from which, together with relation cardinalities, every
/// optimizer heuristic in the paper is computed.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    vars: Vec<VarInfo>,
    by_name: HashMap<String, VarId>,
    /// Optional per-variable label dictionaries (CSV import/export).
    dictionaries: HashMap<VarId, Dictionary>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a variable with a domain size, returning its id. Returns the
    /// existing id if a variable of the same name and domain already exists;
    /// errors if the name exists with a *different* domain size.
    pub fn add_var(&mut self, name: &str, domain_size: u64) -> Result<VarId> {
        if let Some(&id) = self.by_name.get(name) {
            if self.vars[id.index()].domain_size == domain_size {
                return Ok(id);
            }
            return Err(StorageError::DuplicateVariable(name.to_string()));
        }
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.to_string(),
            domain_size,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up a variable id by name.
    pub fn var(&self, name: &str) -> Result<VarId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownVariable(name.to_string()))
    }

    /// Look up a variable's metadata.
    pub fn info(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// The variable's name.
    pub fn name(&self, id: VarId) -> &str {
        &self.vars[id.index()].name
    }

    /// The variable's domain size (`σ_X` in the paper).
    pub fn domain_size(&self, id: VarId) -> u64 {
        self.vars[id.index()].domain_size
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the catalog has no variables.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterate over all `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i as u32), v))
    }

    /// Intern `label` into `var`'s dictionary, growing the variable's
    /// domain if the label is new. Returns the label's value index.
    pub fn intern_label(&mut self, var: VarId, label: &str) -> u32 {
        let v = self.dictionaries.entry(var).or_default().intern(label);
        let info = &mut self.vars[var.index()];
        if (v as u64) >= info.domain_size {
            info.domain_size = v as u64 + 1;
        }
        v
    }

    /// Grow a variable's domain to at least `at_least` values (used by CSV
    /// import when numeric value indices exceed the declared domain).
    pub fn grow_domain(&mut self, var: VarId, at_least: u64) {
        let info = &mut self.vars[var.index()];
        if info.domain_size < at_least {
            info.domain_size = at_least;
        }
    }

    /// The dictionary of a labeled variable, if any.
    pub fn dictionary(&self, var: VarId) -> Option<&Dictionary> {
        self.dictionaries.get(&var)
    }

    /// Render a value: its interned label when the variable is labeled,
    /// otherwise the numeric index.
    pub fn render_value(&self, var: VarId, value: u32) -> String {
        self.dictionaries
            .get(&var)
            .and_then(|d| d.label(value))
            .map(str::to_string)
            .unwrap_or_else(|| value.to_string())
    }

    /// Product of the domain sizes of a set of variables, saturating at
    /// `u64::MAX`. This is the size of a *complete* functional relation over
    /// those variables, and the basis of the degree/width heuristics.
    pub fn domain_product(&self, vars: impl IntoIterator<Item = VarId>) -> u64 {
        vars.into_iter()
            .fold(1u64, |acc, v| acc.saturating_mul(self.domain_size(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut c = Catalog::new();
        let a = c.add_var("wid", 5000).unwrap();
        let b = c.add_var("wid", 5000).unwrap();
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
        assert_eq!(c.name(a), "wid");
        assert_eq!(c.domain_size(a), 5000);
    }

    #[test]
    fn conflicting_domain_rejected() {
        let mut c = Catalog::new();
        c.add_var("wid", 5000).unwrap();
        assert!(matches!(
            c.add_var("wid", 10),
            Err(StorageError::DuplicateVariable(_))
        ));
    }

    #[test]
    fn unknown_lookup_errors() {
        let c = Catalog::new();
        assert!(matches!(
            c.var("nope"),
            Err(StorageError::UnknownVariable(_))
        ));
    }

    #[test]
    fn domain_product_saturates() {
        let mut c = Catalog::new();
        let a = c.add_var("a", u64::MAX).unwrap();
        let b = c.add_var("b", 3).unwrap();
        assert_eq!(c.domain_product([a, b]), u64::MAX);
        assert_eq!(c.domain_product([b]), 3);
        assert_eq!(c.domain_product([]), 1);
    }
}
