//! CSR-like sparse tensor storage: sorted linearized coordinates plus a
//! parallel columnar measure vector.
//!
//! The mid-density representation between the row-major hash path and
//! the dense grid: a [`SparseFactor`] stores each present cell of a
//! domain grid as one linearized odometer coordinate
//! ([`crate::layout::linearize`]) in a `u64` column sorted ascending,
//! with the measures in a parallel `f64` column. Nothing is allocated
//! for absent cells, so the grid may be far larger than
//! [`crate::layout::MAX_DENSE_CELLS`] (the coordinate space is only
//! bounded by [`crate::layout::MAX_SPARSE_COORD_CELLS`], an overflow
//! guard rather than an allocation cap). Sorted coordinates make the
//! operators streaming scans: join is a sorted merge on shared-variable
//! coordinate prefixes, marginalization is a single coordinate-collapse
//! pass, and both read the measure column as contiguous slices — no
//! per-row key extraction, no hash probes.

use crate::layout::{delinearize, grid_cells_wide, linearize, strides_of};
use crate::{DenseFactor, FunctionalRelation, Schema, Value};

/// A sparse tensor over a domain grid: present cells only, sorted by
/// linearized coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseFactor {
    name: String,
    schema: Schema,
    /// Per-variable domain sizes, in schema order.
    domains: Vec<u64>,
    /// Row-major strides, in schema order (`strides[last] == 1`).
    strides: Vec<u64>,
    /// Linearized cell coordinates, sorted ascending, no duplicates.
    coords: Vec<u64>,
    /// One measure per present cell, parallel to `coords`.
    values: Vec<f64>,
}

impl SparseFactor {
    /// Sparsify a relation onto the given grid. Returns `None` when the
    /// domain vector does not match the schema arity, the coordinate
    /// space overflows, a value falls outside its domain, or two rows
    /// share an argument tuple (a duplicate coordinate means the
    /// caller's data is not functional — fall back to the hash path
    /// rather than pick a winner). Rows already in ascending coordinate
    /// order — every sparse-kernel output, and anything odometer-ordered
    /// — skip the sort.
    pub fn from_relation(rel: &FunctionalRelation, domains: &[u64]) -> Option<SparseFactor> {
        let arity = rel.schema().arity();
        if domains.len() != arity {
            return None;
        }
        grid_cells_wide(domains)?;
        let strides = strides_of(domains);
        let vals = rel.values_col();
        let mut coords = Vec::with_capacity(rel.len());
        let mut sorted = true;
        for i in 0..rel.len() {
            let row = &vals[i * arity..(i + 1) * arity];
            for (c, &v) in row.iter().enumerate() {
                if (v as u64) >= domains[c] {
                    return None;
                }
            }
            let coord = linearize(row, &strides);
            if let Some(&prev) = coords.last() {
                sorted &= prev < coord;
            }
            coords.push(coord);
        }
        let values = if sorted {
            rel.measures().to_vec()
        } else {
            let mut order: Vec<u32> = (0..coords.len() as u32).collect();
            order.sort_unstable_by_key(|&i| coords[i as usize]);
            let sorted_coords: Vec<u64> = order.iter().map(|&i| coords[i as usize]).collect();
            let values: Vec<f64> = order.iter().map(|&i| rel.measure(i as usize)).collect();
            coords = sorted_coords;
            values
        };
        if coords.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(SparseFactor {
            name: rel.name().to_string(),
            schema: rel.schema().clone(),
            domains: domains.to_vec(),
            strides,
            coords,
            values,
        })
    }

    /// Assemble a sparse factor from pre-sorted columns (kernel outputs
    /// emit coordinates in ascending order by construction). Sortedness
    /// and uniqueness are asserted in debug builds only.
    pub fn from_sorted_parts(
        name: impl Into<String>,
        schema: Schema,
        domains: Vec<u64>,
        coords: Vec<u64>,
        values: Vec<f64>,
    ) -> SparseFactor {
        debug_assert_eq!(domains.len(), schema.arity());
        debug_assert_eq!(coords.len(), values.len());
        debug_assert!(coords.windows(2).all(|w| w[0] < w[1]));
        let strides = strides_of(&domains);
        SparseFactor {
            name: name.into(),
            schema,
            domains,
            strides,
            coords,
            values,
        }
    }

    /// The factor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The factor's variable schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Per-variable domain sizes, in schema order.
    pub fn domains(&self) -> &[u64] {
        &self.domains
    }

    /// Row-major strides, in schema order.
    pub fn strides(&self) -> &[u64] {
        &self.strides
    }

    /// Number of present cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no cells are present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Heap bytes owned by this factor: name, schema, domain/stride
    /// vectors, and the coordinate + measure columns, all charged at
    /// vector *capacity* so the figure matches the allocation.
    pub fn heap_bytes(&self) -> usize {
        self.name.capacity()
            + self.schema.heap_bytes()
            + self.domains.capacity() * std::mem::size_of::<u64>()
            + self.strides.capacity() * std::mem::size_of::<u64>()
            + self.coords.capacity() * std::mem::size_of::<u64>()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }

    /// The sorted linearized coordinates.
    pub fn coords(&self) -> &[u64] {
        &self.coords
    }

    /// The cell measures, parallel to [`SparseFactor::coords`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Present cells as a fraction of the coordinate space (1.0 for an
    /// empty grid).
    pub fn density(&self) -> f64 {
        match grid_cells_wide(&self.domains) {
            Some(0) | None => 1.0,
            Some(total) => self.len() as f64 / total as f64,
        }
    }

    /// Materialize back into a row-major [`FunctionalRelation`], rows in
    /// ascending coordinate (odometer) order.
    pub fn to_relation(&self) -> FunctionalRelation {
        self.clone().into_relation()
    }

    /// [`SparseFactor::to_relation`], consuming the factor so the
    /// measure column moves without a copy.
    pub fn into_relation(self) -> FunctionalRelation {
        let arity = self.schema.arity();
        let mut values = vec![0 as Value; self.coords.len() * arity];
        for (i, &coord) in self.coords.iter().enumerate() {
            delinearize(coord, &self.strides, &mut values[i * arity..(i + 1) * arity]);
        }
        FunctionalRelation::from_parts(self.name, self.schema, values, self.values)
    }
}

/// A factor in one of the engine's three storage representations.
///
/// `Rows` is the general row-major hash path, `Sparse` the sorted
/// coordinate tensor for the mid-density regime, `Dense` the complete
/// odometer grid. Measures are columnar in all three; operators pick a
/// representation per input from density estimates and convert at the
/// boundaries, and the inference layer chains factors through the
/// algebra without forcing everything back to `Rows` between steps.
#[derive(Debug, Clone, PartialEq)]
pub enum Factor {
    /// Row-major relation — the hash operators' native form.
    Rows(FunctionalRelation),
    /// Sorted-coordinate sparse tensor.
    Sparse(SparseFactor),
    /// Complete dense grid.
    Dense(DenseFactor),
}

impl Factor {
    /// The factor's name.
    pub fn name(&self) -> &str {
        match self {
            Factor::Rows(r) => r.name(),
            Factor::Sparse(s) => s.name(),
            Factor::Dense(d) => d.name(),
        }
    }

    /// The factor's variable schema.
    pub fn schema(&self) -> &Schema {
        match self {
            Factor::Rows(r) => r.schema(),
            Factor::Sparse(s) => s.schema(),
            Factor::Dense(d) => d.schema(),
        }
    }

    /// Number of materialized rows/cells (present cells for `Sparse`,
    /// every grid cell for `Dense`).
    pub fn len(&self) -> usize {
        match self {
            Factor::Rows(r) => r.len(),
            Factor::Sparse(s) => s.len(),
            Factor::Dense(d) => d.len(),
        }
    }

    /// Whether the factor holds no rows/cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes owned by the factor in its current representation
    /// (capacity-based, see the per-representation `heap_bytes`
    /// methods).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Factor::Rows(r) => r.heap_bytes(),
            Factor::Sparse(s) => s.heap_bytes(),
            Factor::Dense(d) => d.heap_bytes(),
        }
    }

    /// The representation tag used in traces and `explain_analyze`
    /// output (`rows`/`sparse`/`dense`).
    pub fn repr_name(&self) -> &'static str {
        match self {
            Factor::Rows(_) => "rows",
            Factor::Sparse(_) => "sparse",
            Factor::Dense(_) => "dense",
        }
    }

    /// Materialize into a row-major relation, consuming the factor (a
    /// move for `Rows`, a conversion otherwise).
    pub fn into_relation(self) -> FunctionalRelation {
        match self {
            Factor::Rows(r) => r,
            Factor::Sparse(s) => s.into_relation(),
            Factor::Dense(d) => d.into_relation(),
        }
    }
}

impl From<FunctionalRelation> for Factor {
    fn from(r: FunctionalRelation) -> Factor {
        Factor::Rows(r)
    }
}

impl From<SparseFactor> for Factor {
    fn from(s: SparseFactor) -> Factor {
        Factor::Sparse(s)
    }
}

impl From<DenseFactor> for Factor {
    fn from(d: DenseFactor) -> Factor {
        Factor::Dense(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Catalog, VarId};

    fn fixture() -> (Catalog, VarId, VarId) {
        let mut c = Catalog::new();
        let a = c.add_var("a", 3).unwrap();
        let b = c.add_var("b", 4).unwrap();
        (c, a, b)
    }

    #[test]
    fn unsorted_rows_sort_and_round_trip() {
        let (_, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        let rel = FunctionalRelation::from_rows(
            "r",
            schema,
            [(vec![2, 3], 5.0), (vec![0, 1], 2.0), (vec![1, 0], 3.0)],
        )
        .unwrap();
        let sp = SparseFactor::from_relation(&rel, &[3, 4]).expect("fits");
        assert_eq!(sp.coords(), &[1, 4, 11]);
        assert_eq!(sp.values(), &[2.0, 3.0, 5.0]);
        assert!((sp.density() - 0.25).abs() < 1e-12);
        let back = sp.into_relation();
        assert!(back.function_eq(&rel));
        assert_eq!(back.row(0), &[0, 1]);
    }

    #[test]
    fn odometer_ordered_input_skips_the_sort() {
        let (cat, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        let rel = FunctionalRelation::complete("r", schema, &cat, |row| {
            (row[0] * 4 + row[1]) as f64
        });
        let sp = SparseFactor::from_relation(&rel, &[3, 4]).expect("fits");
        assert_eq!(sp.len(), 12);
        assert_eq!(sp.coords()[11], 11);
        assert_eq!(sp.to_relation(), rel);
    }

    #[test]
    fn conversion_refuses_bad_input() {
        let (_, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        // Value outside the grid.
        let mut out = FunctionalRelation::new("r", schema.clone());
        out.push_row(&[0, 9], 1.0).unwrap();
        assert!(SparseFactor::from_relation(&out, &[3, 4]).is_none());
        // Duplicate argument tuple.
        let mut dup = FunctionalRelation::new("d", schema.clone());
        dup.push_row(&[1, 1], 1.0).unwrap();
        dup.push_row(&[1, 1], 2.0).unwrap();
        assert!(SparseFactor::from_relation(&dup, &[3, 4]).is_none());
        // Arity mismatch.
        let empty = FunctionalRelation::new("e", schema);
        assert!(SparseFactor::from_relation(&empty, &[3]).is_none());
    }

    #[test]
    fn wide_grids_are_fine_sparse() {
        // A 2^13 × 2^13 grid is beyond MAX_DENSE_CELLS but trivially
        // sparse-representable.
        let mut cat = Catalog::new();
        let x = cat.add_var("x", 1 << 13).unwrap();
        let y = cat.add_var("y", 1 << 13).unwrap();
        let schema = Schema::new(vec![x, y]).unwrap();
        let mut rel = FunctionalRelation::new("w", schema);
        rel.push_row(&[(1 << 13) - 1, (1 << 13) - 1], 7.0).unwrap();
        let sp = SparseFactor::from_relation(&rel, &[1 << 13, 1 << 13]).expect("sparse fits");
        assert_eq!(sp.coords(), &[(1u64 << 26) - 1]);
        assert!(sp.to_relation().function_eq(&rel));
    }

    #[test]
    fn factor_accessors_dispatch() {
        let (cat, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        let rel = FunctionalRelation::complete("r", schema, &cat, |row| {
            1.0 + (row[0] + row[1]) as f64
        });
        let sp = SparseFactor::from_relation(&rel, &[3, 4]).unwrap();
        let de = rel.try_to_dense(&cat, 0.0).unwrap();
        let fr = Factor::from(rel.clone());
        let fs = Factor::from(sp);
        let fd = Factor::from(de);
        assert_eq!(fr.repr_name(), "rows");
        assert_eq!(fs.repr_name(), "sparse");
        assert_eq!(fd.repr_name(), "dense");
        for f in [fr, fs, fd] {
            assert_eq!(f.name(), "r");
            assert_eq!(f.len(), 12);
            assert!(f.clone().into_relation().function_eq(&rel));
        }
    }

    #[test]
    fn heap_bytes_tracks_capacity_in_every_repr() {
        let (cat, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        let rel = FunctionalRelation::complete("r", schema, &cat, |row| {
            1.0 + (row[0] + row[1]) as f64
        });
        let sp = SparseFactor::from_relation(&rel, &[3, 4]).unwrap();
        let expect = sp.name.capacity()
            + sp.schema.heap_bytes()
            + (sp.domains.capacity() + sp.strides.capacity() + sp.coords.capacity())
                * std::mem::size_of::<u64>()
            + sp.values.capacity() * std::mem::size_of::<f64>();
        assert_eq!(sp.heap_bytes(), expect);

        // The Factor dispatcher reports whichever representation it
        // wraps, and shrinking/growing a column moves the number.
        let de = rel.try_to_dense(&cat, 0.0).unwrap();
        assert_eq!(Factor::from(rel.clone()).heap_bytes(), rel.heap_bytes());
        assert_eq!(Factor::from(sp.clone()).heap_bytes(), sp.heap_bytes());
        assert_eq!(Factor::from(de.clone()).heap_bytes(), de.heap_bytes());

        let mut grown = sp.clone();
        grown.coords.reserve(1024);
        grown.values.reserve(1024);
        // Same length, larger capacity: accounting must grow with it.
        assert_eq!(grown.len(), sp.len());
        assert!(grown.heap_bytes() >= sp.heap_bytes() + 2048 * 8);
    }
}
