use std::collections::HashSet;

use crate::{FunctionalRelation, Value};

/// Per-relation statistics, computed by scanning the relation once.
///
/// Together with the catalog's domain sizes these are the inputs to the
/// optimizer's cardinality estimator and to the plan linearity test of
/// Section 5.1 (which needs `σ̂_X`, the size of the smallest base relation
/// containing a variable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStats {
    /// Row count.
    pub cardinality: u64,
    /// Distinct value count per column, in schema order.
    pub distinct_per_col: Vec<u64>,
}

impl RelationStats {
    /// Compute statistics for a relation.
    pub fn compute(rel: &FunctionalRelation) -> Self {
        let arity = rel.arity();
        let mut seen: Vec<HashSet<Value>> = vec![HashSet::new(); arity];
        for (row, _) in rel.rows() {
            for (c, &v) in row.iter().enumerate() {
                seen[c].insert(v);
            }
        }
        RelationStats {
            cardinality: rel.len() as u64,
            distinct_per_col: seen.into_iter().map(|s| s.len() as u64).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Catalog, Schema};

    #[test]
    fn distinct_counts() {
        let mut c = Catalog::new();
        let a = c.add_var("a", 10).unwrap();
        let b = c.add_var("b", 10).unwrap();
        let schema = Schema::new(vec![a, b]).unwrap();
        let r = FunctionalRelation::from_rows(
            "r",
            schema,
            [
                (vec![0, 5], 1.0),
                (vec![0, 6], 1.0),
                (vec![1, 5], 1.0),
                (vec![2, 5], 1.0),
            ],
        )
        .unwrap();
        let s = RelationStats::compute(&r);
        assert_eq!(s.cardinality, 4);
        assert_eq!(s.distinct_per_col, vec![3, 2]);
    }

    #[test]
    fn empty_relation() {
        let mut c = Catalog::new();
        let a = c.add_var("a", 10).unwrap();
        let r = FunctionalRelation::new("r", Schema::new(vec![a]).unwrap());
        let s = RelationStats::compute(&r);
        assert_eq!(s.cardinality, 0);
        assert_eq!(s.distinct_per_col, vec![0]);
    }
}
