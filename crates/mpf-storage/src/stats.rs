use std::collections::HashSet;

use crate::{Catalog, FunctionalRelation, Value};

/// Per-relation statistics, computed by scanning the relation once.
///
/// Together with the catalog's domain sizes these are the inputs to the
/// optimizer's cardinality estimator and to the plan linearity test of
/// Section 5.1 (which needs `σ̂_X`, the size of the smallest base relation
/// containing a variable). `density` feeds the dense-path selection rule:
/// a relation at density 1.0 is complete, and the odometer-indexed
/// kernels beat the hash operators on it.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Row count.
    pub cardinality: u64,
    /// Distinct value count per column, in schema order.
    pub distinct_per_col: Vec<u64>,
    /// Exact density: rows ÷ ∏ catalog domain sizes (1.0 for a complete
    /// relation, `NaN` when computed without a catalog).
    pub density: f64,
}

impl RelationStats {
    /// Compute statistics for a relation, without a catalog (`density` is
    /// `NaN`; use [`RelationStats::compute_with_catalog`] to record it).
    pub fn compute(rel: &FunctionalRelation) -> Self {
        let arity = rel.arity();
        let mut seen: Vec<HashSet<Value>> = vec![HashSet::new(); arity];
        for (row, _) in rel.rows() {
            for (c, &v) in row.iter().enumerate() {
                seen[c].insert(v);
            }
        }
        RelationStats {
            cardinality: rel.len() as u64,
            distinct_per_col: seen.into_iter().map(|s| s.len() as u64).collect(),
            density: f64::NAN,
        }
    }

    /// Compute statistics including the exact density (rows ÷ ∏ domain
    /// sizes over the relation's schema).
    pub fn compute_with_catalog(rel: &FunctionalRelation, catalog: &Catalog) -> Self {
        let mut stats = Self::compute(rel);
        stats.density = density_of(rel.len() as u64, catalog.domain_product(rel.schema().iter()));
        stats
    }
}

/// Density of `rows` over a `grid`-cell domain cross product, clamped to
/// `[0, 1]` (an over-full relation is treated as dense, and an empty grid
/// as empty).
pub fn density_of(rows: u64, grid: u64) -> f64 {
    if grid == 0 {
        0.0
    } else {
        (rows as f64 / grid as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Catalog, Schema};

    #[test]
    fn distinct_counts() {
        let mut c = Catalog::new();
        let a = c.add_var("a", 10).unwrap();
        let b = c.add_var("b", 10).unwrap();
        let schema = Schema::new(vec![a, b]).unwrap();
        let r = FunctionalRelation::from_rows(
            "r",
            schema,
            [
                (vec![0, 5], 1.0),
                (vec![0, 6], 1.0),
                (vec![1, 5], 1.0),
                (vec![2, 5], 1.0),
            ],
        )
        .unwrap();
        let s = RelationStats::compute(&r);
        assert_eq!(s.cardinality, 4);
        assert_eq!(s.distinct_per_col, vec![3, 2]);
        assert!(s.density.is_nan());
        let s = RelationStats::compute_with_catalog(&r, &c);
        assert_eq!(s.density, 0.04);
    }

    #[test]
    fn density_is_exact_and_clamped() {
        let mut c = Catalog::new();
        let a = c.add_var("a", 2).unwrap();
        let b = c.add_var("b", 3).unwrap();
        let schema = Schema::new(vec![a, b]).unwrap();
        let r = FunctionalRelation::complete("r", schema, &c, |_| 1.0);
        let s = RelationStats::compute_with_catalog(&r, &c);
        assert_eq!(s.density, 1.0);
        assert_eq!(density_of(12, 6), 1.0, "over-full clamps to 1");
        assert_eq!(density_of(5, 0), 0.0, "empty grid is empty");
    }

    #[test]
    fn empty_relation() {
        let mut c = Catalog::new();
        let a = c.add_var("a", 10).unwrap();
        let r = FunctionalRelation::new("r", Schema::new(vec![a]).unwrap());
        let s = RelationStats::compute(&r);
        assert_eq!(s.cardinality, 0);
        assert_eq!(s.distinct_per_col, vec![0]);
    }
}
