//! Dense factor storage: a functional relation over a complete (or
//! zero-filled) domain grid, stored as one row-major `f64` array.
//!
//! The paper's probabilistic-inference workloads run over *complete*
//! relations — one row per point of the schema's domain cross product —
//! where hash-based operators pay key extraction and probing for
//! structure the odometer already encodes. A [`DenseFactor`] drops the
//! keys entirely: cell `i` holds the measure of the row whose variable
//! values are the odometer decomposition of `i` under precomputed
//! strides (last schema variable fastest, matching
//! [`FunctionalRelation::complete`] row order). Any cell of the grid
//! that the source relation did not populate takes a caller-supplied
//! `fill` measure — the semiring's additive identity, which is exactly
//! what a missing row denotes under MPF semantics.

use crate::{FunctionalRelation, Schema, Value};

// The shared grid math lives in [`crate::layout`]; these re-exports keep
// the historical `mpf_storage::dense::*` paths working for the algebra
// and optimizer layers.
pub use crate::layout::{grid_cells, is_odometer_ordered, strides_of, MAX_DENSE_CELLS};

/// A dense, row-major factor over a domain grid.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseFactor {
    name: String,
    schema: Schema,
    /// Per-variable domain sizes, in schema order.
    domains: Vec<u64>,
    /// Row-major strides, in schema order (`strides[last] == 1`).
    strides: Vec<u64>,
    /// One measure per grid cell; `len == domains.iter().product()`.
    values: Vec<f64>,
}

impl DenseFactor {
    /// A factor with every cell set to `fill`. Returns `None` when the
    /// grid exceeds [`MAX_DENSE_CELLS`] or `domains.len()` does not match
    /// the schema arity.
    pub fn filled(
        name: impl Into<String>,
        schema: Schema,
        domains: Vec<u64>,
        fill: f64,
    ) -> Option<DenseFactor> {
        if domains.len() != schema.arity() {
            return None;
        }
        let total = grid_cells(&domains)?;
        let strides = strides_of(&domains);
        Some(DenseFactor {
            name: name.into(),
            schema,
            domains,
            strides,
            values: vec![fill; total as usize],
        })
    }

    /// Densify a relation onto the given grid. Absent cells take `fill`;
    /// returns `None` when the grid is too large, a row falls outside it,
    /// or two rows share an argument tuple (a functional relation is a
    /// set, so a duplicate means the caller's data is invalid — fall back
    /// to the sparse path rather than pick a winner).
    ///
    /// A relation that is complete over the grid *in odometer order* (the
    /// order [`FunctionalRelation::complete`] and
    /// [`DenseFactor::into_relation`] emit — every dense-kernel round
    /// trip) takes a fast path: verify the order with one sequential
    /// scan and move the measures wholesale, skipping the fill pass, the
    /// duplicate bitmap, and the scattered writes.
    pub fn from_relation(
        rel: &FunctionalRelation,
        domains: &[u64],
        fill: f64,
    ) -> Option<DenseFactor> {
        if domains.len() != rel.schema().arity() {
            return None;
        }
        let total = grid_cells(domains)?;
        if rel.len() as u64 == total {
            if let Some(out) = DenseFactor::from_odometer_ordered(rel, domains) {
                return Some(out);
            }
        }
        let mut out = DenseFactor::filled(
            rel.name().to_string(),
            rel.schema().clone(),
            domains.to_vec(),
            fill,
        )?;
        let mut written = vec![false; out.values.len()];
        for (row, m) in rel.rows() {
            let idx = out.checked_index_of(row)?;
            if written[idx] {
                return None;
            }
            written[idx] = true;
            out.values[idx] = m;
        }
        Some(out)
    }

    /// The fast conversion: if `rel`'s rows are exactly the grid's
    /// odometer sequence (which also proves completeness, uniqueness, and
    /// bounds), the measure column *is* the dense value array.
    fn from_odometer_ordered(rel: &FunctionalRelation, domains: &[u64]) -> Option<DenseFactor> {
        if !is_odometer_ordered(rel, domains) {
            return None;
        }
        Some(DenseFactor {
            name: rel.name().to_string(),
            schema: rel.schema().clone(),
            domains: domains.to_vec(),
            strides: strides_of(domains),
            values: rel.measures().to_vec(),
        })
    }

    /// The factor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The factor's variable schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Per-variable domain sizes, in schema order.
    pub fn domains(&self) -> &[u64] {
        &self.domains
    }

    /// Row-major strides, in schema order.
    pub fn strides(&self) -> &[u64] {
        &self.strides
    }

    /// Total grid cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid is empty (some domain is 0).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Heap bytes owned by this factor: name, schema, domain/stride
    /// vectors, and the cell grid, all charged at vector *capacity* so
    /// the figure matches the allocation.
    pub fn heap_bytes(&self) -> usize {
        self.name.capacity()
            + self.schema.heap_bytes()
            + self.domains.capacity() * std::mem::size_of::<u64>()
            + self.strides.capacity() * std::mem::size_of::<u64>()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }

    /// The cell measures, row-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable cell measures (for in-place kernels).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The grid index of a variable-value row (row-major odometer).
    #[inline]
    pub fn index_of(&self, row: &[Value]) -> usize {
        crate::layout::linearize(row, &self.strides) as usize
    }

    /// [`DenseFactor::index_of`] with bounds checking; `None` when a value
    /// falls outside its domain.
    pub fn checked_index_of(&self, row: &[Value]) -> Option<usize> {
        if row.len() != self.strides.len() {
            return None;
        }
        let mut idx: u64 = 0;
        for ((&v, &d), &s) in row.iter().zip(&self.domains).zip(&self.strides) {
            if (v as u64) >= d {
                return None;
            }
            idx += v as u64 * s;
        }
        Some(idx as usize)
    }

    /// Decompose a grid index into the variable values of its row,
    /// written into `row` (schema order).
    #[inline]
    pub fn row_of(&self, idx: usize, row: &mut [Value]) {
        crate::layout::delinearize(idx as u64, &self.strides, row);
    }

    /// Materialize back into a sparse [`FunctionalRelation`], emitting
    /// every grid cell in odometer order (the same row order
    /// [`FunctionalRelation::complete`] produces).
    pub fn to_relation(&self) -> FunctionalRelation {
        self.clone().into_relation()
    }

    /// [`DenseFactor::to_relation`], consuming the factor so the cell
    /// measures move into the relation without a copy. The key column
    /// stays *implicit* (the relation records the grid's domain vector;
    /// packed keys materialize lazily on first row access), so on a
    /// dense→dense pipeline this conversion is O(1) in the grid size and
    /// the next densification proves odometer order without a scan.
    pub fn into_relation(self) -> FunctionalRelation {
        FunctionalRelation::from_grid(self.name, self.schema, self.domains, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Catalog, VarId};

    fn fixture() -> (Catalog, VarId, VarId) {
        let mut c = Catalog::new();
        let a = c.add_var("a", 2).unwrap();
        let b = c.add_var("b", 3).unwrap();
        (c, a, b)
    }

    #[test]
    fn complete_relation_round_trips() {
        let (cat, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        let rel =
            FunctionalRelation::complete("r", schema, &cat, |row| (row[0] * 10 + row[1]) as f64);
        let dense = rel.try_to_dense(&cat, 0.0).expect("complete fits");
        assert_eq!(dense.len(), 6);
        assert_eq!(dense.index_of(&[1, 2]), 5);
        assert_eq!(dense.values()[dense.index_of(&[1, 2])], 12.0);
        let mut row = [0, 0];
        dense.row_of(5, &mut row);
        assert_eq!(row, [1, 2]);
        let back = dense.to_relation();
        assert!(back.function_eq(&rel));
        // `to_relation` emits odometer order: bit-identical to `complete`.
        assert_eq!(back, rel);
    }

    #[test]
    fn sparse_rows_fill_with_identity() {
        let (cat, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        let rel =
            FunctionalRelation::from_rows("r", schema, [(vec![0, 1], 2.0), (vec![1, 2], 3.0)])
                .unwrap();
        let dense = rel.try_to_dense(&cat, 0.0).expect("grid fits");
        assert_eq!(dense.len(), 6);
        assert_eq!(dense.values()[dense.index_of(&[0, 1])], 2.0);
        assert_eq!(dense.values()[dense.index_of(&[0, 0])], 0.0);
        let back = dense.to_relation();
        assert_eq!(back.len(), 6);
        assert_eq!(back.lookup(&[1, 2]), Some(3.0));
        assert_eq!(back.lookup(&[1, 0]), Some(0.0));
    }

    #[test]
    fn conversion_refuses_bad_input() {
        let (cat, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        // A value outside the grid.
        let mut rel = FunctionalRelation::new("r", schema.clone());
        rel.push_row(&[0, 7], 1.0).unwrap();
        assert!(rel.try_to_dense(&cat, 0.0).is_none());
        // A duplicate argument tuple.
        let mut dup = FunctionalRelation::new("d", schema.clone());
        dup.push_row(&[0, 1], 1.0).unwrap();
        dup.push_row(&[0, 1], 2.0).unwrap();
        assert!(dup.try_to_dense(&cat, 0.0).is_none());
        // A grid beyond MAX_DENSE_CELLS.
        let mut big = Catalog::new();
        let x = big.add_var("x", 1 << 13).unwrap();
        let y = big.add_var("y", 1 << 13).unwrap();
        let wide = FunctionalRelation::new("w", Schema::new(vec![x, y]).unwrap());
        assert!(wide.try_to_dense(&big, 0.0).is_none());
    }

    #[test]
    fn inferred_domains_cover_data() {
        let (_, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        let rel =
            FunctionalRelation::from_rows("r", schema.clone(), [(vec![1, 0], 1.0), (vec![0, 2], 2.0)])
                .unwrap();
        assert_eq!(rel.inferred_domains(), vec![2, 3]);
        assert_eq!(FunctionalRelation::new("e", schema).inferred_domains(), vec![0, 0]);
    }

    #[test]
    fn heap_bytes_charges_every_column() {
        let (_, a, b) = fixture();
        let schema = Schema::new(vec![a, b]).unwrap();
        let d = DenseFactor::filled("d", schema, vec![3, 4], 0.0).unwrap();
        let expect = d.name.capacity()
            + d.schema.heap_bytes()
            + d.domains.capacity() * std::mem::size_of::<u64>()
            + d.strides.capacity() * std::mem::size_of::<u64>()
            + d.values.capacity() * std::mem::size_of::<f64>();
        assert_eq!(d.heap_bytes(), expect);
        // At minimum the 12-cell grid itself.
        assert!(d.heap_bytes() >= 12 * std::mem::size_of::<f64>());
    }
}
