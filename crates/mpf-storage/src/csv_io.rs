//! CSV import/export for functional relations.
//!
//! The on-disk format is a plain CSV with one column per variable plus a
//! trailing measure column named `f`:
//!
//! ```csv
//! wid,cid,f
//! w01,acme,1.25
//! w02,acme,1.10
//! ```
//!
//! Non-numeric variable cells are dictionary-encoded through the catalog
//! ([`Catalog::intern_label`]), so external string-keyed data drops into
//! the engine's dense `u32` value model; numeric cells are taken as value
//! indices directly. Export renders labels back where dictionaries exist.

use std::io::{BufRead, Write};

use crate::{Catalog, FunctionalRelation, Result, Schema, StorageError, Value};

/// Read a functional relation from CSV text. Variables named in the header
/// are created in (or resolved against) `catalog`; string cells are
/// interned, numeric cells used verbatim (growing the domain as needed).
/// The last column must be named `f` and hold the measure.
pub fn read_csv(
    catalog: &mut Catalog,
    name: &str,
    reader: impl BufRead,
) -> Result<FunctionalRelation> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| StorageError::UnknownRelation("empty csv".into()))?
        .map_err(|e| StorageError::UnknownRelation(format!("io error: {e}")))?;
    let cols: Vec<String> = header.split(',').map(|c| c.trim().to_string()).collect();
    if cols.last().map(String::as_str) != Some("f") {
        return Err(StorageError::UnknownVariable(
            "csv header must end with measure column `f`".into(),
        ));
    }
    let var_names = &cols[..cols.len() - 1];
    let vars: Vec<_> = var_names
        .iter()
        .map(|n| {
            // Existing variable or fresh one with a minimal domain
            // (grown by interning below).
            catalog.var(n).or_else(|_| catalog.add_var(n, 1))
        })
        .collect::<Result<_>>()?;

    let schema = Schema::new(vars.clone())?;
    let mut rel = FunctionalRelation::new(name, schema);
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| StorageError::UnknownRelation(format!("io error: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != cols.len() {
            return Err(StorageError::ArityMismatch {
                expected: cols.len(),
                got: cells.len(),
            });
        }
        let mut row: Vec<Value> = Vec::with_capacity(vars.len());
        for (&var, cell) in vars.iter().zip(&cells[..cells.len() - 1]) {
            let value = match cell.parse::<u32>() {
                Ok(v) => {
                    // Numeric index; grow the domain to cover it.
                    catalog.grow_domain(var, v as u64 + 1);
                    v
                }
                Err(_) => catalog.intern_label(var, cell),
            };
            row.push(value);
        }
        let measure: f64 = cells[cells.len() - 1].parse().map_err(|_| {
            StorageError::InvalidMeasure(f64::NAN)
        })?;
        rel.push_row(&row, measure).map_err(|_| {
            StorageError::ArityMismatch {
                expected: vars.len(),
                got: lineno,
            }
        })?;
    }
    rel.validate_fd()?;
    Ok(rel)
}

/// Write a functional relation as CSV, rendering dictionary labels where
/// the catalog has them.
pub fn write_csv(
    rel: &FunctionalRelation,
    catalog: &Catalog,
    mut writer: impl Write,
) -> std::io::Result<()> {
    let header: Vec<&str> = rel.schema().iter().map(|v| catalog.name(v)).collect();
    writeln!(writer, "{},f", header.join(","))?;
    let vars: Vec<_> = rel.schema().iter().collect();
    for (row, m) in rel.rows() {
        let cells: Vec<String> = vars
            .iter()
            .zip(row)
            .map(|(&v, &val)| catalog.render_value(v, val))
            .collect();
        writeln!(writer, "{},{m}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_labels() {
        let csv = "wid,cid,f\nw01,acme,1.25\nw02,acme,1.1\nw01,globex,0.5\n";
        let mut cat = Catalog::new();
        let rel = read_csv(&mut cat, "warehouses", csv.as_bytes()).unwrap();
        assert_eq!(rel.len(), 3);
        let wid = cat.var("wid").unwrap();
        let cid = cat.var("cid").unwrap();
        assert_eq!(cat.domain_size(wid), 2);
        assert_eq!(cat.domain_size(cid), 2);
        assert_eq!(cat.render_value(cid, 0), "acme");
        assert_eq!(rel.lookup(&[0, 0]), Some(1.25));
        assert_eq!(rel.lookup(&[0, 1]), Some(0.5));

        let mut out = Vec::new();
        write_csv(&rel, &cat, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("wid,cid,f\n"));
        assert!(text.contains("w01,acme,1.25"));

        // Re-reading the export reproduces the relation.
        let mut cat2 = Catalog::new();
        let rel2 = read_csv(&mut cat2, "warehouses", text.as_bytes()).unwrap();
        assert!(rel.function_eq(&rel2));
    }

    #[test]
    fn numeric_cells_are_value_indices() {
        let csv = "a,b,f\n0,5,2.0\n1,3,4.0\n";
        let mut cat = Catalog::new();
        let rel = read_csv(&mut cat, "r", csv.as_bytes()).unwrap();
        let a = cat.var("a").unwrap();
        let b = cat.var("b").unwrap();
        assert_eq!(cat.domain_size(a), 2);
        assert_eq!(cat.domain_size(b), 6); // max index 5 -> domain 6
        assert_eq!(rel.lookup(&[1, 3]), Some(4.0));
    }

    #[test]
    fn rejects_malformed_input() {
        let mut cat = Catalog::new();
        // Missing measure column.
        assert!(read_csv(&mut cat, "r", "a,b\n0,1\n".as_bytes()).is_err());
        // Ragged row.
        assert!(read_csv(&mut cat, "r", "a,f\n0,1.0,9\n".as_bytes()).is_err());
        // Bad measure.
        assert!(read_csv(&mut cat, "r", "a,f\n0,zzz\n".as_bytes()).is_err());
        // FD violation: duplicate variable row.
        assert!(read_csv(&mut cat, "r", "a,f\n0,1.0\n0,2.0\n".as_bytes()).is_err());
    }

    #[test]
    fn existing_variables_are_shared() {
        let mut cat = Catalog::new();
        let _ = read_csv(&mut cat, "r1", "x,f\nred,1.0\nblue,2.0\n".as_bytes()).unwrap();
        let rel2 = read_csv(&mut cat, "r2", "x,f\nblue,5.0\ngreen,6.0\n".as_bytes()).unwrap();
        let x = cat.var("x").unwrap();
        // blue keeps its index across relations; green extends the domain.
        assert_eq!(cat.dictionary(x).unwrap().value("blue"), Some(1));
        assert_eq!(cat.domain_size(x), 3);
        assert_eq!(rel2.lookup(&[1]), Some(5.0));
    }
}
