//! The transparent [`ViewCache`] behind `Database::run`: answers must be
//! bit-identical with the cache on or off at any thread count, warm
//! queries must actually be served from cache, uncovered queries must
//! fall through to normal execution, residency must respect the byte
//! budget under an eviction storm, and a `via_cache` request built under
//! the wrong semiring must fail with the typed mismatch error.
//!
//! Measures are dyadic rationals (`k / 8.0`), so sums and products are
//! exact in `f64` and "bit-identical" is a meaningful contract, not a
//! tolerance.

use std::sync::Arc;

use mpf_algebra::{ExecLimits, MetricsRegistry};
use mpf_engine::{Database, EngineError, Query, QueryRequest, ViewCache};
use mpf_semiring::{Aggregate, Combine, SemiringKind};
use mpf_storage::{FunctionalRelation, Schema, Value};

/// A three-relation chain view v = r1(a,b) ⋈ r2(b,c) ⋈ r3(c,d) with
/// dyadic measures.
fn chain_db() -> Database {
    let db = Database::new().with_cache_bytes(0); // callers opt in explicitly
    let a = db.add_var("a", 3).unwrap();
    let b = db.add_var("b", 4).unwrap();
    let c = db.add_var("c", 3).unwrap();
    let d = db.add_var("d", 2).unwrap();
    let catalog = db.catalog();
    let r1 = FunctionalRelation::complete("r1", Schema::new(vec![a, b]).unwrap(), &catalog, |r| {
        1.0 + (r[0] * 4 + r[1]) as f64 / 8.0
    });
    let r2 = FunctionalRelation::complete("r2", Schema::new(vec![b, c]).unwrap(), &catalog, |r| {
        0.5 + (r[0] * 3 + r[1]) as f64 / 8.0
    });
    let r3 = FunctionalRelation::complete("r3", Schema::new(vec![c, d]).unwrap(), &catalog, |r| {
        2.0 + (r[0] * 2 + r[1]) as f64 / 8.0
    });
    drop(catalog);
    db.insert_relation(r1).unwrap();
    db.insert_relation(r2).unwrap();
    db.insert_relation(r3).unwrap();
    db.create_view("v", &["r1", "r2", "r3"], Combine::Product)
        .unwrap();
    db
}

/// Canonical bit-exact serialization: columns permuted into ascending
/// `VarId` order (a cache-served answer may emit the cached table's
/// variable order rather than the query's), rows sorted, measures as
/// raw bits.
fn canon(ans: &mpf_engine::Answer) -> Vec<(Vec<(u32, Value)>, u64)> {
    let vars = ans.relation.schema().vars().to_vec();
    let mut rows: Vec<(Vec<(u32, Value)>, u64)> = ans
        .relation
        .rows()
        .map(|(row, m)| {
            let mut cols: Vec<(u32, Value)> =
                vars.iter().zip(row).map(|(&v, &x)| (v.0, x)).collect();
            cols.sort();
            (cols, m.to_bits())
        })
        .collect();
    rows.sort();
    rows
}

/// The query mix exercised by the parity tests: different group-by sets
/// and an evidence (filter) query, all over the same view.
fn workload() -> Vec<Query> {
    vec![
        Query::on("v").group_by(["a"]),
        Query::on("v").group_by(["b"]),
        Query::on("v").group_by(["a", "b"]),
        Query::on("v").group_by(["c", "d"]),
        Query::on("v").group_by(["a"]).filter("b", 1),
        Query::on("v").group_by(["d"]).filter("b", 2),
        Query::on("v").group_by(["b"]).aggregate(Aggregate::Max),
    ]
}

#[test]
fn answers_bit_identical_with_cache_on_and_off_at_any_thread_count() {
    for threads in [1usize, 4] {
        let limits = ExecLimits::none().with_threads(threads);
        let cold = chain_db().with_limits(limits.clone());
        let warm = chain_db()
            .with_limits(limits)
            .with_cache_bytes(64 << 20);
        // Three passes: pass 1 records demand, pass 2 builds + admits,
        // pass 3 serves from cache. Every answer on every pass must be
        // bit-identical to the uncached database's.
        for _pass in 0..3 {
            for q in workload() {
                let a_cold = cold.run(&q).unwrap();
                let a_warm = warm.run(&q).unwrap();
                assert_eq!(canon(&a_cold), canon(&a_warm), "query {q} diverged");
            }
        }
        let vc = warm.view_cache().unwrap();
        assert!(vc.counter("hits") > 0, "warm passes never hit the cache");
        assert!(vc.counter("admits") > 0, "demand never admitted a tree");
    }
}

#[test]
fn warm_queries_are_served_from_cache_and_annotated() {
    let db = chain_db().with_cache_bytes(64 << 20);
    let q = Query::on("v").group_by(["a", "b"]);
    // Two misses to trigger the cost-based admission, then a hit.
    assert!(db.run(&q).unwrap().cache.is_none());
    assert!(db.run(&q).unwrap().cache.is_none());
    let served = db.run(&q).unwrap();
    let cs = served.cache.expect("third run should be cache-served");
    assert!(cs.rows > 0);
    assert!(!cs.clique.is_empty());

    // Evidence queries derive a conditioned tree from the resident base
    // tree and are served without ever paying a second recompute.
    let qf = Query::on("v").group_by(["a"]).filter("b", 1);
    let first = db.run(&qf).unwrap();
    assert!(first.cache.is_some(), "derivable evidence query missed");
    assert_eq!(db.view_cache().unwrap().counter("derived"), 1);

    // EXPLAIN ANALYZE names the serving clique.
    let text = db.explain_analyze(&q).unwrap();
    assert!(
        text.contains("-- served from cache: clique {"),
        "missing cache annotation:\n{text}"
    );
}

#[test]
fn uncovered_queries_fall_through_to_normal_execution() {
    let db = chain_db().with_cache_bytes(64 << 20);
    let warmup = Query::on("v").group_by(["b"]);
    for _ in 0..3 {
        db.run(&warmup).unwrap();
    }
    let vc = db.view_cache().unwrap();
    assert!(vc.counter("admits") > 0);
    // {a, d} spans the whole chain: no single clique of the elimination
    // tree covers it, so the hit falls through and still answers.
    let wide = Query::on("v").group_by(["a", "d"]);
    let ans = db.run(&wide).unwrap();
    assert!(ans.cache.is_none(), "uncoverable query claimed a cache serve");
    assert_eq!(ans.relation.len(), 3 * 2);
    assert!(vc.counter("uncovered") > 0);
}

#[test]
fn eviction_storm_stays_within_the_byte_budget() {
    // A budget big enough for roughly one tree: distinct views contend
    // and the cache must evict rather than grow.
    let db = chain_db().with_cache_bytes(0);
    for i in 0..8 {
        let name = format!("v{i}");
        db.create_view(&name, &["r1", "r2", "r3"], Combine::Product)
            .unwrap();
    }
    // Size one real tree to pick a budget that forces eviction.
    let probe = db.build_cache("v0", Aggregate::Sum, None).unwrap();
    let one_tree = probe.heap_bytes() as u64;
    let budget = one_tree + one_tree / 2;
    let db = db.with_cache_bytes(budget);
    let vc = Arc::clone(db.view_cache().unwrap());

    for round in 0..4 {
        for i in 0..8 {
            let q = Query::on(format!("v{i}")).group_by(["a"]);
            db.run(&q).unwrap();
            assert!(
                vc.bytes_resident() <= budget,
                "round {round}, view v{i}: resident {} > budget {budget}",
                vc.bytes_resident()
            );
        }
    }
    assert!(vc.counter("admits") > 0, "storm admitted nothing");
    // Eight trees contend for a 1.5-tree budget, so every admission
    // attempt beyond the resident one either evicted a victim or was
    // discarded by the utility comparison (which way depends on the
    // observed recompute timings, so only the sum is deterministic).
    assert!(
        vc.counter("evictions") + vc.counter("build_discarded") > 0,
        "storm neither evicted nor discarded under contention"
    );
    assert!(vc.bytes_resident() > 0);
    // The accounting is capacity-accurate: with at least one resident
    // tree of this shape, residency is at least one tree's heap bytes
    // and at most the budget.
    assert!(vc.bytes_resident() >= one_tree);
}

#[test]
fn zero_budget_disables_the_cache_entirely() {
    let db = chain_db().with_cache_bytes(0);
    assert!(db.view_cache().is_none());
    let q = Query::on("v").group_by(["a"]);
    for _ in 0..4 {
        assert!(db.run(&q).unwrap().cache.is_none());
    }
    // An explicitly shared zero-budget cache also never serves.
    let shared = Arc::new(ViewCache::new(0));
    let db = chain_db().with_view_cache(Arc::clone(&shared));
    for _ in 0..4 {
        assert!(db.run(&q).unwrap().cache.is_none());
    }
    assert!(!shared.enabled());
    assert_eq!(shared.counter("misses"), 0);
}

#[test]
fn via_cache_rejects_a_semiring_mismatch_with_a_typed_error() {
    let db = chain_db();
    // Built under SUM (sum-product with Combine::Product)...
    let cache = db.build_cache("v", Aggregate::Sum, None).unwrap();
    // ...queried under MAX (max-product): a typed error, not a wrong answer.
    let q = Query::on("v").group_by(["a"]).aggregate(Aggregate::Max);
    let err = db
        .run(QueryRequest::from(q).via_cache(&cache))
        .unwrap_err();
    assert_eq!(
        err,
        EngineError::CacheSemiringMismatch {
            expected: SemiringKind::MaxProduct,
            cached: SemiringKind::SumProduct,
        }
    );
    // The matching aggregate still serves, and reports the clique.
    let ok = db
        .run(QueryRequest::from(Query::on("v").group_by(["a"])).via_cache(&cache))
        .unwrap();
    assert!(ok.cache.is_some());
}

#[test]
fn shared_cache_serves_across_databases_and_publishes_metrics() {
    let shared = Arc::new(ViewCache::new(64 << 20));
    let metrics = Arc::new(MetricsRegistry::new());
    let db1 = chain_db()
        .with_view_cache(Arc::clone(&shared))
        .with_metrics(Arc::clone(&metrics));
    // A clone shares the same snapshot chain, hence the same versions:
    // trees admitted through one handle serve the other.
    let db2 = db1.clone();
    let q = Query::on("v").group_by(["a", "b"]);
    db1.run(&q).unwrap();
    db1.run(&q).unwrap(); // second miss admits
    let served = db2.run(&q).unwrap();
    assert!(served.cache.is_some(), "clone missed the shared entry");
    let json = metrics.to_json();
    assert!(json.contains("engine.cache.hits"), "no cache metrics: {json}");
    assert!(json.contains("engine.cache.bytes_resident"));
}
