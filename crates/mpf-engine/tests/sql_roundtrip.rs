//! Property test: the SQL formatter and the SQL-extension parser are
//! inverse to each other on the full query surface.

use mpf_engine::{parser, Query, RangePredicate, Statement, Strategy as EvalStrategy};
use mpf_optimizer::Heuristic;
use mpf_semiring::Aggregate;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Lowercase identifiers that are not keywords of the grammar.
    "[a-z][a-z0-9_]{0,8}".prop_filter("keyword", |s| {
        !matches!(
            s.as_str(),
            "select" | "from" | "where" | "group" | "by" | "having" | "using" | "and"
                | "sum" | "min" | "max" | "or_agg" | "create" | "mpfview" | "as" | "measure"
        )
    })
}

fn aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Sum),
        Just(Aggregate::Min),
        Just(Aggregate::Max),
        Just(Aggregate::Or),
    ]
}

fn heuristic() -> impl Strategy<Value = Heuristic> {
    prop_oneof![
        Just(Heuristic::Degree),
        Just(Heuristic::Width),
        Just(Heuristic::ElimCost),
        Just(Heuristic::DegreeWidth),
        Just(Heuristic::DegreeElimCost),
        (0u64..100).prop_map(Heuristic::Random),
    ]
}

fn strategy() -> impl Strategy<Value = EvalStrategy> {
    prop_oneof![
        Just(EvalStrategy::Auto),
        Just(EvalStrategy::Naive),
        Just(EvalStrategy::Cs),
        Just(EvalStrategy::CsPlusLinear),
        Just(EvalStrategy::CsPlusNonlinear),
        heuristic().prop_map(EvalStrategy::Ve),
        heuristic().prop_map(EvalStrategy::VePlus),
    ]
}

fn range() -> impl Strategy<Value = Option<(RangePredicate, f64)>> {
    proptest::option::of((
        prop_oneof![
            Just(RangePredicate::Less),
            Just(RangePredicate::Greater),
            Just(RangePredicate::LessEq),
            Just(RangePredicate::GreaterEq),
        ],
        // Bounds that print exactly (integers and halves) so the
        // round-trip is lossless.
        (0u32..1000).prop_map(|n| n as f64 / 2.0),
    ))
}

fn query() -> impl Strategy<Value = Query> {
    (
        ident(),
        proptest::collection::vec(ident(), 1..=3),
        aggregate(),
        proptest::collection::vec((ident(), 0u32..100), 0..=2),
        range(),
        strategy(),
    )
        .prop_map(|(view, mut group_vars, agg, filters, having, strategy)| {
            group_vars.sort_unstable();
            group_vars.dedup();
            let mut q = Query::on(view).group_by(group_vars).aggregate(agg).strategy(strategy);
            for (var, val) in filters {
                q = q.filter(var, val);
            }
            if let Some((cmp, bound)) = having {
                q = q.having(cmp, bound);
            }
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn format_parse_roundtrip(q in query()) {
        let sql = q.to_string();
        let parsed = parser::parse(&sql)
            .unwrap_or_else(|e| panic!("`{sql}` failed to parse: {e}"));
        match parsed {
            Statement::Select(p) => prop_assert_eq!(p, q, "sql was `{}`", sql),
            _ => return Err(TestCaseError::fail("expected select")),
        }
    }
}
