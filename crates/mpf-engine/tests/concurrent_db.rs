//! Property: `Database::run` from N threads on one shared instance,
//! racing snapshot-installing updates, returns answers bit-identical to
//! serial execution against the matching snapshot.
//!
//! Each catalog version `v` writes both base relations with a
//! version-specific measure in one atomic install. For every version we
//! precompute the answer on a fresh, serial database; every answer
//! observed concurrently must then equal one of those serial answers
//! bit-for-bit (`f64::to_bits`) — a torn read (half-installed version)
//! or cross-snapshot drift would produce a bit pattern outside the set.

use std::collections::{HashMap, HashSet};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use mpf_engine::{Database, Query};
use mpf_semiring::Combine;
use mpf_storage::{Catalog, FunctionalRelation, Schema, Value, VarId};
use proptest::prelude::*;

/// Both base relations at version `version` (measures depend on the
/// version and the row, so distinct versions give distinct answers).
fn version_relations(
    catalog: &Catalog,
    a: VarId,
    b: VarId,
    version: u32,
) -> [FunctionalRelation; 2] {
    let base = (2 * version + 1) as f64;
    [
        FunctionalRelation::complete("r1", Schema::new(vec![a, b]).unwrap(), catalog, move |r| {
            base + (r[0] * 2 + r[1]) as f64 / 8.0
        }),
        FunctionalRelation::complete("r2", Schema::new(vec![b]).unwrap(), catalog, move |r| {
            base * 0.5 + r[0] as f64 / 16.0
        }),
    ]
}

fn fresh_db(version: u32) -> Database {
    let db = Database::new();
    let a = db.add_var("a", 3).unwrap();
    let b = db.add_var("b", 3).unwrap();
    let catalog = db.catalog();
    let [r1, r2] = version_relations(&catalog, a, b, version);
    drop(catalog);
    db.insert_relation(r1).unwrap();
    db.insert_relation(r2).unwrap();
    db.create_view("v", &["r1", "r2"], Combine::Product).unwrap();
    db
}

/// Canonical bit-exact serialization of an answer: sorted rows with the
/// measure's raw bits.
fn canon(ans: &mpf_engine::Answer) -> Vec<(Vec<Value>, u64)> {
    let mut rows: Vec<(Vec<Value>, u64)> = ans
        .relation
        .rows()
        .map(|(row, m)| (row.to_vec(), m.to_bits()))
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn shared_instance_answers_match_serial_per_snapshot(
        versions in 2u32..6,
        readers in 2usize..5,
    ) {
        let query = Query::on("v").group_by(["a"]);

        // Serial ground truth, one isolated database per version.
        let mut expected: HashMap<Vec<(Vec<Value>, u64)>, u32> = HashMap::new();
        for v in 0..versions {
            let serial = canon(&fresh_db(v).run(&query).unwrap());
            prop_assert!(
                expected.insert(serial, v).is_none(),
                "versions must have distinct answers for the test to discriminate"
            );
        }

        // One shared instance: readers race a writer that installs
        // versions 1.. in order (version 0 is the seed state).
        let db = Arc::new(fresh_db(0));
        let a = db.catalog().var("a").unwrap();
        let b = db.catalog().var("b").unwrap();
        let writer = {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for v in 1..versions {
                    let catalog = db.catalog();
                    let [r1, r2] = version_relations(&catalog, a, b, v);
                    drop(catalog);
                    db.mutate(|snap| {
                        snap.store_mut().insert(r1.clone());
                        snap.store_mut().insert(r2.clone());
                        Ok(())
                    })
                    .unwrap();
                    thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let (tx, rx) = mpsc::channel();
        for _ in 0..readers {
            let db = Arc::clone(&db);
            let query = query.clone();
            let tx = tx.clone();
            thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..30 {
                    seen.push(canon(&db.run(&query).unwrap()));
                }
                tx.send(seen).unwrap();
            });
        }
        drop(tx);

        let mut versions_seen = HashSet::new();
        for _ in 0..readers {
            let seen = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("reader finished without panic or deadlock");
            for answer in seen {
                match expected.get(&answer) {
                    Some(v) => {
                        versions_seen.insert(*v);
                    }
                    None => prop_assert!(
                        false,
                        "concurrent answer is not bit-identical to any serial snapshot answer: {answer:?}"
                    ),
                }
            }
        }
        writer.join().expect("writer clean");
        prop_assert!(!versions_seen.is_empty());

        // After the writer finishes, a fresh query must see the final
        // version exactly.
        let last = canon(&db.run(&query).unwrap());
        prop_assert_eq!(expected.get(&last), Some(&(versions - 1)));
    }
}
