//! Guardrail and fallback behavior of the engine facade: resource budgets
//! trip with typed errors (never a panic or an OOM), generous budgets are
//! invisible, and the strategy fallback chain serves queries past
//! optimizer-side failures, recording who answered in
//! [`Answer::served_by`].

use std::time::Duration;

use mpf_algebra::{AlgebraError, CancelToken, ExecLimits, ResourceKind};
use mpf_datagen::{SupplyChain, SupplyChainConfig};
use mpf_engine::{Database, EngineError, FallbackPolicy, Query, Strategy};
use mpf_semiring::Combine;
use mpf_storage::{FunctionalRelation, Schema};

fn supply_chain_db(scale: f64) -> Database {
    let sc = SupplyChain::generate(SupplyChainConfig::at_scale(scale));
    let db = Database::from_parts(sc.catalog, sc.store);
    db.create_view("invest", &mpf_datagen::supply_chain::RELATION_NAMES, Combine::Product)
        .unwrap();
    db
}

/// Acceptance scenario: a supply-chain query under `max_total_cells = 1`
/// returns `ResourceExhausted` — the first scan already exceeds the budget,
/// every fallback strategy trips the same way, and nothing panics or
/// materializes the join.
#[test]
fn supply_chain_query_with_one_cell_budget_is_rejected() {
    let db = supply_chain_db(0.01).with_limits(ExecLimits::none().with_max_total_cells(1));
    let err = db.run(Query::on("invest").group_by(["wid"])).unwrap_err();
    match err {
        EngineError::Algebra(AlgebraError::ResourceExhausted {
            resource: ResourceKind::TotalCells,
            limit: 1,
            observed,
        }) => assert!(observed > 1),
        other => panic!("expected TotalCells trip, got {other:?}"),
    }
}

/// Generous limits change nothing: same answer, requested strategy serves,
/// no fallback entries.
#[test]
fn generous_limits_are_transparent() {
    let unlimited = supply_chain_db(0.01);
    let limited = supply_chain_db(0.01).with_limits(
        ExecLimits::none()
            .with_max_output_rows(100_000_000)
            .with_max_total_cells(1_000_000_000)
            .with_timeout(Duration::from_secs(3600))
            .with_cancel_token(CancelToken::new()),
    );
    let q = Query::on("invest").group_by(["wid"]);
    let want = unlimited.run(&q).unwrap();
    let got = limited.run(&q).unwrap();
    assert!(want.relation.function_eq(&got.relation));
    assert_eq!(got.served_by, Strategy::Auto);
    assert!(got.fallback.is_empty());
}

#[test]
fn cancelled_queries_error_without_fallback() {
    let token = CancelToken::new();
    token.cancel();
    let db = supply_chain_db(0.01).with_limits(ExecLimits::none().with_cancel_token(token));
    let err = db.run(Query::on("invest").group_by(["wid"])).unwrap_err();
    assert_eq!(err, EngineError::Algebra(AlgebraError::Cancelled));
}

#[test]
fn expired_deadline_errors_without_fallback() {
    let db = supply_chain_db(0.01).with_limits(ExecLimits::none().with_timeout(Duration::ZERO));
    let err = db.run(Query::on("invest").group_by(["wid"])).unwrap_err();
    assert!(matches!(
        err,
        EngineError::Algebra(AlgebraError::ResourceExhausted {
            resource: ResourceKind::WallClock,
            ..
        })
    ));
}

/// A view beyond the optimizer's 30-relation DP limit is still served: the
/// chain's terminal naive strategy performs no plan search.
#[test]
fn views_beyond_dp_limit_fall_back_to_naive() {
    let db = Database::new();
    let a = db.add_var("a", 4).unwrap();
    let names: Vec<String> = (0..31).map(|i| format!("r{i}")).collect();
    for n in &names {
        db.insert_relation(
            FunctionalRelation::from_rows(
                n.clone(),
                Schema::new(vec![a]).unwrap(),
                (0..4u32).map(|v| (vec![v], 1.0)),
            )
            .unwrap(),
        )
        .unwrap();
    }
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    db.create_view("wide", &refs, Combine::Product).unwrap();

    let ans = db.run(Query::on("wide").group_by(["a"])).unwrap();
    assert_eq!(ans.served_by, Strategy::Naive);
    assert!(ans
        .fallback
        .iter()
        .all(|(_, e)| matches!(e, EngineError::TooManyRelations { count: 31, limit: 30 })));
    assert!(!ans.fallback.is_empty());
    assert_eq!(ans.relation.len(), 4);
    assert!((ans.relation.lookup(&[0]).unwrap() - 1.0).abs() < 1e-9);

    // With fallback disabled the same query is a typed error.
    let strict = db.clone().with_fallback(FallbackPolicy::none());
    assert!(matches!(
        strict.run(Query::on("wide").group_by(["a"])).unwrap_err(),
        EngineError::TooManyRelations { count: 31, limit: 30 }
    ));
}

#[test]
fn empty_views_are_rejected_at_creation() {
    let db = Database::new();
    assert!(matches!(
        db.create_view("hollow", &[], Combine::Product),
        Err(EngineError::EmptyView(n)) if n == "hollow"
    ));
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use std::sync::Mutex;

    use mpf_algebra::fault;
    use mpf_semiring::approx_eq;
    use mpf_storage::Schema;

    /// The fault registry is process-global; serialize the tests that arm it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// r1(a, b) ⋈ r2(b, c) with known answers.
    ///
    /// The relations are complete over their 2×2 grids, so the dense
    /// fast path would normally serve them without ever reaching the
    /// sparse operator fault sites (`product_join`, `group_by`); the
    /// tests that arm those sites force `DenseMode::Off`.
    fn tiny_db() -> Database {
        let db = Database::new();
        let a = db.add_var("a", 2).unwrap();
        let b = db.add_var("b", 2).unwrap();
        let c = db.add_var("c", 2).unwrap();
        db.insert_relation(
            FunctionalRelation::from_rows(
                "r1",
                Schema::new(vec![a, b]).unwrap(),
                [
                    (vec![0, 0], 1.0),
                    (vec![0, 1], 2.0),
                    (vec![1, 0], 3.0),
                    (vec![1, 1], 4.0),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert_relation(
            FunctionalRelation::from_rows(
                "r2",
                Schema::new(vec![b, c]).unwrap(),
                [
                    (vec![0, 0], 10.0),
                    (vec![0, 1], 20.0),
                    (vec![1, 0], 30.0),
                    (vec![1, 1], 40.0),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_view("v", &["r1", "r2"], Combine::Product).unwrap();
        db
    }

    /// Acceptance scenario: a fault injected into the VE+ optimizer makes
    /// the first attempt fail, the chain retries with linear CS+, and the
    /// answer is correct with the serving strategy recorded.
    #[test]
    fn ve_plus_optimizer_fault_falls_back_to_cs_plus() {
        let _g = lock();
        fault::clear_all();
        let db = tiny_db();
        let q = Query::on("v")
            .group_by(["c"])
            .strategy(Strategy::VePlus(mpf_optimizer::Heuristic::Degree));

        fault::inject("optimize::VE(deg) ext.", 1);
        let ans = db.run(&q).unwrap();
        assert_eq!(ans.served_by, Strategy::CsPlusLinear);
        assert_eq!(ans.fallback.len(), 1);
        assert_eq!(
            ans.fallback[0],
            (
                Strategy::VePlus(mpf_optimizer::Heuristic::Degree),
                EngineError::Algebra(AlgebraError::FaultInjected(
                    "optimize::VE(deg) ext.".into()
                ))
            )
        );
        assert!(approx_eq(ans.relation.lookup(&[0]).unwrap(), 220.0));
        assert!(approx_eq(ans.relation.lookup(&[1]).unwrap(), 320.0));

        // The arm disarmed after firing: the same query now serves directly.
        let again = db.run(&q).unwrap();
        assert_eq!(
            again.served_by,
            Strategy::VePlus(mpf_optimizer::Heuristic::Degree)
        );
        assert!(again.fallback.is_empty());
    }

    /// An execution-side operator fault is also cured by the retry.
    #[test]
    fn join_fault_is_cured_by_fallback() {
        let _g = lock();
        fault::clear_all();
        // Hash-path pins: this arms the hash join's fault site, so the
        // dense and sparse representations must both stand down.
        let db = tiny_db()
            .with_dense(mpf_engine::DenseMode::Off)
            .with_repr(mpf_engine::ReprMode::Off);
        fault::inject("product_join", 1);
        let ans = db.run(Query::on("v").group_by(["c"])).unwrap();
        assert_eq!(ans.fallback.len(), 1);
        assert!(matches!(
            ans.fallback[0].1,
            EngineError::Algebra(AlgebraError::FaultInjected(_))
        ));
        assert!(approx_eq(ans.relation.lookup(&[0]).unwrap(), 220.0));
    }

    /// The answer's stats cover the whole fallback chain: the attempt that
    /// died mid-plan had already scanned its inputs, and that work shows up
    /// in the served answer's counters on top of the successful retry's.
    #[test]
    fn fallback_answer_reports_work_of_failed_attempts() {
        let _g = lock();
        fault::clear_all();
        let db = tiny_db()
            .with_dense(mpf_engine::DenseMode::Off)
            .with_repr(mpf_engine::ReprMode::Off);
        let q = Query::on("v").group_by(["c"]);
        let clean = db.run(&q).unwrap();
        assert!(clean.stats.rows_scanned > 0);

        fault::inject("product_join", 1);
        let ans = db.run(&q).unwrap();
        assert_eq!(ans.fallback.len(), 1);
        assert!(
            ans.stats.rows_scanned > clean.stats.rows_scanned,
            "failed attempt's scans missing: {} vs clean {}",
            ans.stats.rows_scanned,
            clean.stats.rows_scanned
        );
        assert!(ans.relation.function_eq(&clean.relation));
    }

    /// When every strategy in the chain faults, the last error surfaces as
    /// a typed failure — never a panic.
    #[test]
    fn exhausted_chain_surfaces_last_error() {
        let _g = lock();
        fault::clear_all();
        let db = tiny_db();
        for site in [
            "optimize::VE(deg) ext.",
            "optimize::CS+ linear",
            "optimize::naive",
        ] {
            fault::inject_always(site);
        }
        let err = db
            .run(
                Query::on("v")
                    .group_by(["c"])
                    .strategy(Strategy::VePlus(mpf_optimizer::Heuristic::Degree)),
            )
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::Algebra(AlgebraError::FaultInjected("optimize::naive".into()))
        );
        fault::clear_all();
    }
}
