//! Invalidation property: interleave catalog mutations (point measure
//! updates, whole-relation replacements, raw snapshot rewrites) with
//! cached queries, and every post-mutation answer from the cached
//! database must be bit-identical to a cold recompute on an uncached
//! database that received exactly the same mutations.
//!
//! Measures are dyadic rationals (`k / 8.0`), so every sum/product — and
//! every update-semijoin patch ratio `new / old` along the way — is
//! exact in `f64`, making bit-identity the real contract rather than a
//! tolerance. The patch path (paper Section 6) is exercised explicitly:
//! `Database::update_measure` reports a precise event, and resident
//! sum-product trees are patched forward instead of evicted.

use mpf_engine::{Database, Query};
use mpf_semiring::Combine;
use mpf_storage::{FunctionalRelation, Schema, Value};
use proptest::prelude::*;

/// r1(a,b) ⋈ r2(b,c) under view `v`, dyadic measures.
fn build_db(cache_bytes: u64) -> Database {
    let db = Database::new().with_cache_bytes(cache_bytes);
    let a = db.add_var("a", 2).unwrap();
    let b = db.add_var("b", 3).unwrap();
    let c = db.add_var("c", 2).unwrap();
    let catalog = db.catalog();
    let r1 = FunctionalRelation::complete("r1", Schema::new(vec![a, b]).unwrap(), &catalog, |r| {
        1.0 + (r[0] * 3 + r[1]) as f64 / 8.0
    });
    let r2 = FunctionalRelation::complete("r2", Schema::new(vec![b, c]).unwrap(), &catalog, |r| {
        0.5 + (r[0] * 2 + r[1]) as f64 / 8.0
    });
    drop(catalog);
    db.insert_relation(r1).unwrap();
    db.insert_relation(r2).unwrap();
    db.create_view("v", &["r1", "r2"], Combine::Product).unwrap();
    db
}

/// One interleaved step of the soak.
#[derive(Debug, Clone)]
enum Op {
    /// `Database::update_measure` on row `row_idx % len` of a relation
    /// (precise `MeasureUpdate` event; patches resident trees). The new
    /// measure halves or doubles the current one, so the patch ratio is
    /// exactly `0.5` or `2.0` — bit-identity survives the semijoin.
    /// (An arbitrary dyadic target would make the ratio `new / old`
    /// inexact, e.g. `7/11`, and 1-ULP drift between the patched and
    /// recomputed answers would be correct behavior, not a bug.)
    UpdateMeasure { rel: usize, row_idx: usize },
    /// Replace a whole relation through `insert_relation` (precise
    /// `Touched` event; evicts trees over the relation).
    Replace { rel: usize, k: u32 },
    /// Rewrite through raw `mutate` (conservative `Unknown` event;
    /// evicts everything).
    RawRewrite { rel: usize, k: u32 },
    /// Run one query of the workload (index into `workload()`).
    Query(usize),
}

fn workload() -> Vec<Query> {
    vec![
        Query::on("v").group_by(["a"]),
        Query::on("v").group_by(["b"]),
        Query::on("v").group_by(["a", "b"]),
        Query::on("v").group_by(["c"]),
        Query::on("v").group_by(["a"]).filter("b", 1),
    ]
}

const REL_NAMES: [&str; 2] = ["r1", "r2"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..2usize, 0..6usize).prop_map(|(rel, row_idx)| Op::UpdateMeasure { rel, row_idx }),
        (0..2usize, 1..32u32).prop_map(|(rel, k)| Op::Replace { rel, k }),
        (0..2usize, 1..32u32).prop_map(|(rel, k)| Op::RawRewrite { rel, k }),
        (0..5usize).prop_map(Op::Query),
    ]
}

/// A relation with the same name/schema but fresh dyadic measures.
fn remeasured(db: &Database, rel: usize, k: u32) -> FunctionalRelation {
    let snap = db.snapshot();
    let old = snap.relation_of(REL_NAMES[rel]).unwrap();
    let mut fresh = FunctionalRelation::new(old.name().to_string(), old.schema().clone());
    for (i, (row, _)) in old.rows().enumerate() {
        fresh
            .push_row(row, (k + i as u32) as f64 / 8.0)
            .unwrap();
    }
    fresh
}

/// One canonical row: `(var, value)` pairs in ascending `VarId` order
/// plus the measure's raw bits.
type CanonRow = (Vec<(u32, Value)>, u64);

/// Bit-exact canonical rows, columns normalized to ascending `VarId`.
fn canon(ans: &mpf_engine::Answer) -> Vec<CanonRow> {
    let vars = ans.relation.schema().vars().to_vec();
    let mut rows: Vec<CanonRow> = ans
        .relation
        .rows()
        .map(|(row, m)| {
            let mut cols: Vec<(u32, Value)> =
                vars.iter().zip(row).map(|(&v, &x)| (v.0, x)).collect();
            cols.sort();
            (cols, m.to_bits())
        })
        .collect();
    rows.sort();
    rows
}

fn apply(db: &Database, op: &Op) -> Option<Vec<CanonRow>> {
    match op {
        Op::UpdateMeasure { rel, row_idx } => {
            let (row, old) = {
                let snap = db.snapshot();
                let r = snap.relation_of(REL_NAMES[*rel]).unwrap();
                let i = row_idx % r.len();
                (r.row(i).to_vec(), r.measure(i))
            };
            // Halve large measures, double small ones: measures stay in
            // a band where every sum of products is exact in f64.
            let new = if old >= 1.0 { old / 2.0 } else { old * 2.0 };
            db.update_measure(REL_NAMES[*rel], &row, new).unwrap();
            None
        }
        Op::Replace { rel, k } => {
            db.insert_relation(remeasured(db, *rel, *k)).unwrap();
            None
        }
        Op::RawRewrite { rel, k } => {
            let fresh = remeasured(db, *rel, *k);
            db.mutate(|snap| {
                snap.store_mut().insert(fresh.clone());
                Ok(())
            })
            .unwrap();
            None
        }
        Op::Query(i) => Some(canon(&db.run(&workload()[*i]).unwrap())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_post_mutation_answer_matches_a_cold_recompute(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let warm = build_db(16 << 20);
        let cold = build_db(0);
        // Warm the cache: two passes over the workload admit base trees
        // before the interleaving starts, so mutations hit live entries.
        for q in workload() {
            for _ in 0..2 {
                warm.run(&q).unwrap();
            }
        }
        for (step, op) in ops.iter().enumerate() {
            let a_warm = apply(&warm, op);
            let a_cold = apply(&cold, op);
            prop_assert_eq!(
                a_warm, a_cold,
                "step {} ({:?}) diverged from cold recompute", step, op
            );
        }
        // And once more after the dust settles: the full workload must
        // agree bit-for-bit on the final state.
        for q in workload() {
            prop_assert_eq!(
                canon(&warm.run(&q).unwrap()),
                canon(&cold.run(&q).unwrap()),
                "final state diverged on {}", q
            );
        }
    }
}

/// The patch path specifically: a point update through
/// `Database::update_measure` must patch the resident sum-product tree
/// forward (counter `patched`), keep serving from cache, and agree with
/// a cold recompute bit-for-bit.
#[test]
fn measure_updates_patch_resident_trees_instead_of_evicting() {
    let warm = build_db(16 << 20);
    let cold = build_db(0);
    let q = Query::on("v").group_by(["a"]);
    for _ in 0..3 {
        warm.run(&q).unwrap();
    }
    let vc = warm.view_cache().unwrap();
    assert!(vc.counter("admits") > 0);

    // Row 2 of r1 carries 1 + 2/8 = 1.25; halving it keeps the patch
    // ratio an exact power of two.
    let row = {
        let snap = warm.snapshot();
        snap.relation_of("r1").unwrap().row(2).to_vec()
    };
    let old_warm = warm.update_measure("r1", &row, 0.625).unwrap();
    let old_cold = cold.update_measure("r1", &row, 0.625).unwrap();
    assert_eq!(old_warm.to_bits(), old_cold.to_bits());
    assert!(vc.counter("patched") > 0, "update evicted instead of patching");

    let served = warm.run(&q).unwrap();
    assert!(
        served.cache.is_some(),
        "patched tree was not served after the update"
    );
    assert_eq!(canon(&served), canon(&cold.run(&q).unwrap()));

    // Unknown row: typed error, snapshot and cache untouched.
    let before = warm.snapshot().version();
    let err = warm.update_measure("r1", &[9, 9], 1.0).unwrap_err();
    assert!(matches!(err, mpf_engine::EngineError::InvalidUpdate(_)));
    assert_eq!(warm.snapshot().version(), before);
}
