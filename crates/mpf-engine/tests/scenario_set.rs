//! Scenario-batch contract: `Database::run_scenarios` fan-out is
//! **bit-identical** to a sequential loop of single-scenario runs —
//! shared trunks, plan reuse, and worker fan-out are pure optimizations.
//!
//! The property is checked across four semirings (including division-free
//! `MinProduct`, so the recompute frontier path is exercised where the
//! Section 6 ratio trick cannot apply), thread counts {1, 4}, and the
//! transparent view cache off/on — with random measures, random scenario
//! sets (measure shocks, domain moves, evidence), and random group-bys.

use mpf_engine::{Database, Query, QueryRequest, Scenario, ScenarioSet};
use mpf_algebra::ExecLimits;
use mpf_semiring::{Aggregate, Combine};
use mpf_storage::{FunctionalRelation, Schema, Value};
use proptest::prelude::*;

/// `(combine, agg)` pairs resolving to the semirings under test.
/// `MinProduct` has no division ([`mpf_semiring::SemiringKind`]), so it
/// pins the recompute-only frontier path.
const SEMIRINGS: [(Combine, Aggregate); 4] = [
    (Combine::Product, Aggregate::Sum), // SumProduct
    (Combine::Sum, Aggregate::Min),     // MinSum (tropical)
    (Combine::Product, Aggregate::Max), // MaxProduct
    (Combine::Product, Aggregate::Min), // MinProduct — division-free
];

/// Variable names/domains of the chain schema, and each relation's vars.
const VARS: [(&str, u64); 4] = [("a", 2), ("b", 3), ("c", 2), ("d", 2)];
const RELS: [(&str, [&str; 2]); 3] = [("r1", ["a", "b"]), ("r2", ["b", "c"]), ("r3", ["c", "d"])];

/// Chain r1(a,b) ⋈ r2(b,c) ⋈ r3(c,d) under view `v`, dyadic measures
/// (`k/8`) so every semiring combination is exact in `f64` and
/// bit-identity is the real contract, not a tolerance.
fn build_db(combine: Combine, threads: usize, cache_bytes: u64, seed: u32) -> Database {
    let db = Database::new()
        .with_limits(ExecLimits::none().with_threads(threads))
        .with_cache_bytes(cache_bytes);
    for (name, domain) in VARS {
        db.add_var(name, domain).unwrap();
    }
    let catalog = db.catalog();
    let rels: Vec<FunctionalRelation> = RELS
        .iter()
        .enumerate()
        .map(|(ri, (name, vars))| {
            let ids = vars.map(|v| catalog.var(v).unwrap());
            FunctionalRelation::complete(*name, Schema::new(ids.to_vec()).unwrap(), &catalog, |r| {
                1.0 + ((seed + ri as u32 * 7 + r[0] * 5 + r[1] * 3) % 16) as f64 / 8.0
            })
        })
        .collect();
    drop(catalog);
    let names: Vec<&str> = RELS.iter().map(|(n, _)| *n).collect();
    for rel in rels {
        db.insert_relation(rel).unwrap();
    }
    db.create_view("v", &names, combine).unwrap();
    db
}

/// A scenario described by indices only, resolved against a concrete
/// database at apply time (rows are looked up, so overrides always name
/// existing rows).
#[derive(Debug, Clone)]
enum Edit {
    /// Shock one row's measure to `k/8`.
    Measure { rel: usize, row_idx: usize, k: u32 },
    /// Remap one variable of one relation, `from -> to`.
    Move { rel: usize, var: usize, from: u32, to: u32 },
    /// Condition the scenario on `var = value`.
    Evidence { var: usize, value: u32 },
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0..3usize, 0..12usize, 0u32..32).prop_map(|(rel, row_idx, k)| Edit::Measure {
            rel,
            row_idx,
            k
        }),
        (0..3usize, 0..2usize, 0u32..3, 0u32..3).prop_map(|(rel, var, from, to)| Edit::Move {
            rel,
            var,
            from,
            to
        }),
        (0..4usize, 0u32..2).prop_map(|(var, value)| Edit::Evidence { var, value }),
    ]
}

fn scenario_sets() -> impl Strategy<Value = Vec<Vec<Edit>>> {
    proptest::collection::vec(proptest::collection::vec(edit_strategy(), 0..3), 1..5)
}

/// Resolve index-form edits into a concrete named scenario.
fn resolve(db: &Database, name: String, edits: &[Edit]) -> Scenario {
    let snap = db.snapshot();
    let mut sc = Scenario::named(name);
    for edit in edits {
        sc = match *edit {
            Edit::Measure { rel, row_idx, k } => {
                let (rel_name, _) = RELS[rel];
                let r = snap.relation_of(rel_name).unwrap();
                sc.measure(rel_name, r.row(row_idx % r.len()).to_vec(), k as f64 / 8.0)
            }
            Edit::Move { rel, var, from, to } => {
                let (rel_name, vars) = RELS[rel];
                let (var_name, domain) = VARS[VARS.iter().position(|(n, _)| *n == vars[var]).unwrap()];
                sc.move_domain(
                    rel_name,
                    var_name,
                    (from as u64 % domain) as Value,
                    (to as u64 % domain) as Value,
                )
            }
            Edit::Evidence { var, value } => {
                let (var_name, domain) = VARS[var];
                sc.evidence(var_name, (value as u64 % domain) as Value)
            }
        };
    }
    sc
}

/// The answer's content, bit-exactly: rows in relation order with raw
/// measure bits (schema column order included via the row vectors).
fn bits(rel: &FunctionalRelation) -> Vec<(Vec<Value>, u64)> {
    rel.rows().map(|(r, m)| (r.to_vec(), m.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn batch_is_bit_identical_to_sequential_loop(
        sets in scenario_sets(),
        seed in 0u32..1000,
        gq in 0usize..3,
    ) {
        let group_by: &[&str] = [&["a", "d"][..], &["b"][..], &["a", "c"][..]][gq];
        for (combine, agg) in SEMIRINGS {
            for threads in [1usize, 4] {
                for cache_bytes in [0u64, 64 << 20] {
                    let db = build_db(combine, threads, cache_bytes, seed);
                    let q = Query::on("v").group_by(group_by.iter().copied()).aggregate(agg);
                    let scenarios: Vec<Scenario> = sets
                        .iter()
                        .enumerate()
                        .map(|(i, edits)| resolve(&db, format!("s{i}"), edits))
                        .collect();

                    // The reference: a plain sequential loop of
                    // single-scenario requests.
                    let sequential: Vec<_> = scenarios
                        .iter()
                        .map(|sc| {
                            db.run(QueryRequest::from(&q).scenario(sc.clone()))
                                .unwrap()
                        })
                        .collect();
                    let baseline = db.run(&q).unwrap();

                    let set: ScenarioSet = scenarios.clone().into_iter().collect();
                    let report = db
                        .run_scenarios(QueryRequest::from(&q).scenario_set(set))
                        .unwrap();

                    prop_assert_eq!(
                        bits(&report.baseline.relation),
                        bits(&baseline.relation),
                        "baseline diverged ({combine:?}/{agg:?}, threads={threads}, cache={cache_bytes})"
                    );
                    prop_assert_eq!(report.outcomes.len(), scenarios.len());
                    for (i, (outcome, seq)) in
                        report.outcomes.iter().zip(&sequential).enumerate()
                    {
                        prop_assert_eq!(&outcome.name, &format!("s{i}"));
                        prop_assert_eq!(
                            bits(&outcome.answer.relation),
                            bits(&seq.relation),
                            "scenario s{i} diverged ({combine:?}/{agg:?}, threads={threads}, cache={cache_bytes})"
                        );
                        // The divergence summary is consistent with the
                        // bit comparison it claims to report.
                        prop_assert_eq!(
                            outcome.divergence.is_invariant(),
                            bits(&outcome.answer.relation) == bits(&baseline.relation),
                            "divergence flag inconsistent for s{i}"
                        );
                    }
                }
            }
        }
    }
}

/// Duplicate names are a typed error; multi-scenario sets are rejected by
/// the single-answer entry points.
#[test]
fn scenario_set_api_contract() {
    use mpf_engine::EngineError;
    let db = build_db(Combine::Product, 1, 0, 1);
    let q = Query::on("v").group_by(["a"]);
    let dup = QueryRequest::from(&q)
        .scenario(Scenario::named("x").measure("r1", vec![0, 0], 1.0))
        .scenario(Scenario::named("x").measure("r1", vec![0, 1], 1.0));
    assert!(matches!(
        db.run_scenarios(dup).unwrap_err(),
        EngineError::DuplicateScenario(_)
    ));

    let multi = QueryRequest::from(&q)
        .scenario(Scenario::named("x").measure("r1", vec![0, 0], 1.0))
        .scenario(Scenario::named("y").measure("r1", vec![0, 1], 1.0));
    assert!(matches!(
        db.run(multi.clone()).unwrap_err(),
        EngineError::ScenarioBatch { count: 2 }
    ));
    assert!(matches!(
        db.describe(multi).unwrap_err(),
        EngineError::ScenarioBatch { count: 2 }
    ));

    // An empty set still reports the baseline.
    let report = db.run_scenarios(&q).unwrap();
    assert!(report.outcomes.is_empty());
    assert_eq!(report.trunk_builds, 0);
}

/// Trunk sharing actually happens: identical measure-only scenarios over
/// one relation of a 3-relation chain must reuse trunk subtrees across
/// the batch (builds strictly fewer trunks than scenario-executions).
#[test]
fn trunks_are_shared_across_scenarios() {
    let db = build_db(Combine::Product, 4, 0, 2);
    let q = Query::on("v").group_by(["a"]);
    let snap = db.snapshot();
    let r1 = snap.relation_of("r1").unwrap();
    let set: ScenarioSet = (0..8)
        .map(|i| {
            Scenario::named(format!("s{i}")).measure(
                "r1",
                r1.row(i % r1.len()).to_vec(),
                (i + 2) as f64,
            )
        })
        .collect();
    drop(snap);
    let report = db
        .run_scenarios(QueryRequest::from(&q).scenario_set(set))
        .unwrap();
    assert_eq!(report.outcomes.len(), 8);
    assert!(
        report.trunk_builds > 0,
        "a chain query with one touched relation must have a shared trunk"
    );
    assert!(
        report.trunk_hits > report.trunk_builds,
        "8 scenarios sharing trunks should hit more than they build \
         (builds={}, hits={})",
        report.trunk_builds,
        report.trunk_hits
    );
}
