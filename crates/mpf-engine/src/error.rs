use mpf_algebra::AlgebraError;
use mpf_infer::InferError;
use mpf_semiring::{Aggregate, Combine};
use mpf_storage::StorageError;

/// Errors raised by the query engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying algebra error.
    Algebra(AlgebraError),
    /// Underlying inference error.
    Infer(InferError),
    /// Unknown MPF view.
    UnknownView(String),
    /// A view of this name already exists.
    DuplicateView(String),
    /// Unknown variable name in a query.
    UnknownVariable(String),
    /// The aggregate does not distribute over the view's combine operation
    /// (no commutative semiring pairs them).
    IncompatibleAggregate {
        /// The view's multiplicative operation.
        combine: Combine,
        /// The requested aggregate.
        aggregate: Aggregate,
    },
    /// SQL parse error with position and message.
    Parse {
        /// Byte offset of the offending token.
        position: usize,
        /// Human-readable message.
        message: String,
    },
    /// A hypothetical override referenced a missing relation or row.
    BadOverride(String),
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<AlgebraError> for EngineError {
    fn from(e: AlgebraError) -> Self {
        EngineError::Algebra(e)
    }
}

impl From<InferError> for EngineError {
    fn from(e: InferError) -> Self {
        EngineError::Infer(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Algebra(e) => write!(f, "algebra error: {e}"),
            EngineError::Infer(e) => write!(f, "inference error: {e}"),
            EngineError::UnknownView(n) => write!(f, "unknown mpf view `{n}`"),
            EngineError::DuplicateView(n) => write!(f, "mpf view `{n}` already exists"),
            EngineError::UnknownVariable(n) => write!(f, "unknown variable `{n}`"),
            EngineError::IncompatibleAggregate { combine, aggregate } => write!(
                f,
                "aggregate {aggregate:?} does not distribute over combine {combine:?}: \
                 no commutative semiring pairs them"
            ),
            EngineError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            EngineError::BadOverride(m) => write!(f, "bad hypothetical override: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Algebra(e) => Some(e),
            EngineError::Infer(e) => Some(e),
            _ => None,
        }
    }
}
