use mpf_algebra::{AlgebraError, ConfigError, ResourceKind};
use mpf_infer::InferError;
use mpf_semiring::{Aggregate, Combine, SemiringKind};
use mpf_storage::StorageError;

/// Errors raised by the query engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying algebra error.
    Algebra(AlgebraError),
    /// Underlying inference error.
    Infer(InferError),
    /// Unknown MPF view.
    UnknownView(String),
    /// A view of this name already exists.
    DuplicateView(String),
    /// Unknown variable name in a query.
    UnknownVariable(String),
    /// The aggregate does not distribute over the view's combine operation
    /// (no commutative semiring pairs them).
    IncompatibleAggregate {
        /// The view's multiplicative operation.
        combine: Combine,
        /// The requested aggregate.
        aggregate: Aggregate,
    },
    /// SQL parse error with position and message.
    Parse {
        /// Byte offset of the offending token.
        position: usize,
        /// Human-readable message.
        message: String,
    },
    /// A hypothetical override referenced a missing relation or row.
    BadOverride(String),
    /// An MPF view with no base relations (rejected at creation, and again
    /// defensively at planning time).
    EmptyView(String),
    /// An environment knob (`MPF_THREADS`, `MPF_DENSE`) held a value that
    /// does not parse; raised by the strict startup paths
    /// ([`crate::Database::from_env`], the `mpf_serve` binary) instead of
    /// silently falling back to a default.
    Config(ConfigError),
    /// The view has more base relations than the optimizer's bitmask
    /// dynamic-programming search can enumerate. [`crate::Strategy::Naive`]
    /// still evaluates such views (no plan search), so a fallback chain
    /// ending in it serves the query.
    TooManyRelations {
        /// Base relations in the view.
        count: usize,
        /// The optimizer's limit.
        limit: usize,
    },
    /// A [`mpf_infer::VeCache`] handed to
    /// [`crate::QueryRequest::via_cache`] was built under a different
    /// semiring than the query resolves to. Marginalizing its tables
    /// would silently aggregate with the wrong operations, so the
    /// mismatch is a typed error instead of a wrong answer.
    CacheSemiringMismatch {
        /// The semiring the query's view/aggregate pair resolves to.
        expected: SemiringKind,
        /// The semiring the supplied cache was built under.
        cached: SemiringKind,
    },
    /// A point measure update named a relation, row, or old measure that
    /// does not match the current snapshot.
    InvalidUpdate(String),
    /// A multi-scenario request was submitted to a single-answer entry
    /// point ([`crate::Database::run`] / [`crate::Database::describe`]);
    /// batches go through [`crate::Database::run_scenarios`].
    ScenarioBatch {
        /// Scenarios in the rejected request.
        count: usize,
    },
    /// Two scenarios in one set share a name; the report keys outcomes
    /// by name, so names must be unique.
    DuplicateScenario(String),
}

impl EngineError {
    /// Whether retrying the query with a different evaluation strategy can
    /// plausibly cure this error.
    ///
    /// A row or cell budget trip may be caused by the chosen plan's
    /// intermediates (a cheaper-memory strategy can fit); an injected
    /// fault, a worker-thread panic, and the optimizer's relation-count
    /// limit are likewise strategy-specific. A missed wall-clock deadline
    /// is not — the deadline has already passed and every further attempt
    /// starts from zero — and cancellation, name-resolution, parse, and
    /// data errors are strategy-independent.
    pub fn fallback_may_cure(&self) -> bool {
        match self {
            EngineError::Algebra(AlgebraError::ResourceExhausted { resource, .. }) => {
                *resource != ResourceKind::WallClock
            }
            EngineError::Algebra(AlgebraError::FaultInjected(_))
            | EngineError::Algebra(AlgebraError::Internal(_))
            | EngineError::TooManyRelations { .. } => true,
            _ => false,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<AlgebraError> for EngineError {
    fn from(e: AlgebraError) -> Self {
        EngineError::Algebra(e)
    }
}

impl From<InferError> for EngineError {
    fn from(e: InferError) -> Self {
        EngineError::Infer(e)
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Algebra(e) => write!(f, "algebra error: {e}"),
            EngineError::Infer(e) => write!(f, "inference error: {e}"),
            EngineError::UnknownView(n) => write!(f, "unknown mpf view `{n}`"),
            EngineError::DuplicateView(n) => write!(f, "mpf view `{n}` already exists"),
            EngineError::UnknownVariable(n) => write!(f, "unknown variable `{n}`"),
            EngineError::IncompatibleAggregate { combine, aggregate } => write!(
                f,
                "aggregate {aggregate:?} does not distribute over combine {combine:?}: \
                 no commutative semiring pairs them"
            ),
            EngineError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            EngineError::BadOverride(m) => write!(f, "bad hypothetical override: {m}"),
            EngineError::Config(e) => write!(f, "configuration error: {e}"),
            EngineError::EmptyView(n) => {
                write!(f, "mpf view `{n}` has no base relations")
            }
            EngineError::TooManyRelations { count, limit } => write!(
                f,
                "view has {count} base relations, beyond the optimizer's \
                 {limit}-relation search limit (the naive strategy still applies)"
            ),
            EngineError::CacheSemiringMismatch { expected, cached } => write!(
                f,
                "the supplied VeCache was built under semiring {cached:?}, but the \
                 query resolves to {expected:?}: rebuild the cache for this \
                 view/aggregate pair"
            ),
            EngineError::InvalidUpdate(m) => write!(f, "invalid measure update: {m}"),
            EngineError::ScenarioBatch { count } => write!(
                f,
                "request carries {count} scenarios but this entry point returns a \
                 single answer: use Database::run_scenarios for scenario sets"
            ),
            EngineError::DuplicateScenario(n) => {
                write!(f, "duplicate scenario name `{n}` in one scenario set")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Algebra(e) => Some(e),
            EngineError::Infer(e) => Some(e),
            _ => None,
        }
    }
}
