//! The engine-owned, cross-query materialized-view cache.
//!
//! [`crate::Database::run`] recomputes a view's elimination tree on every
//! request, even when consecutive queries differ only in their group-by
//! variable — exactly the recomputation the paper's VE-cache scheme
//! (Section 6, Algorithm 3) exists to remove. A [`ViewCache`] promotes
//! that scheme from a caller-managed object
//! ([`crate::QueryRequest::via_cache`]) to an engine-owned, cross-query,
//! cross-tenant layer: entries are whole [`VeCache`] trees keyed by
//! [`CacheKey`] (snapshot version, view, semiring, sorted evidence), and
//! `Database::run` serves a query transparently whenever a resident tree
//! covers it.
//!
//! **Admission** is demand- and cost-based: the first miss of a key only
//! records the observed recompute cost; a tree is built (and its build
//! cost paid, once, by the triggering request) when the accumulated
//! observed cost reaches [`ADMIT_FACTOR`] recomputes — the point where
//! expected savings amortize the build, which is itself about one
//! no-query-variable recompute of the view. An entry whose
//! [`VeCache::heap_bytes`] exceed the byte budget, or whose cost/byte
//! utility cannot beat the worst resident entry it would displace, is
//! discarded instead of admitted.
//!
//! **Eviction** is an LRU/cost hybrid: under byte pressure the entry with
//! the lowest `(1 + hits) × observed_cost / bytes` score goes first,
//! least-recently-used breaking ties. The byte accounting is capacity-
//! accurate ([`VeCache::heap_bytes`]: every cached table, name, schema,
//! and bookkeeping vector at allocator capacity), so the resident total
//! tracks real heap, not row counts.
//!
//! **Invalidation** is snapshot-keyed: entries carry the version of the
//! snapshot they were built against, and
//! [`crate::Database::mutate`] reports every install as a
//! [`CacheEvent`]. A point measure update patches affected trees forward
//! with the paper's update semijoin ([`VeCache::update_measure`]) where
//! the semiring admits division, re-keys untouched trees to the new
//! version, and evicts what it cannot patch; a mutation of unknown shape
//! evicts everything built against the old version. A query can
//! therefore never observe a stale tree: it looks up under its pinned
//! snapshot's version, and no mutation path leaves an entry behind under
//! a version it did not verify.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mpf_algebra::MetricsRegistry;
use mpf_infer::VeCache;
use mpf_semiring::SemiringKind;
use mpf_storage::{Value, VarId};

/// Misses (weighted by observed recompute cost) before a key's tree is
/// built: admission requires the accumulated cost of cache misses to
/// reach this many mean recomputes, so one-off queries never pay a
/// build. With steady per-query cost this is simply the second miss.
pub const ADMIT_FACTOR: f64 = 2.0;

/// Identity of one cached elimination tree. Equal keys guarantee equal
/// answers: the snapshot version pins catalog + data + view definitions
/// (versions are globally unique and reassigned on every install), the
/// view name and semiring pin the algebra, and the evidence list
/// (sorted) pins any conditioning applied via the Theorem 5 protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The snapshot version the tree was built against.
    pub version: u64,
    /// The MPF view the tree materializes.
    pub view: String,
    /// The semiring the tree was built under.
    pub semiring: SemiringKind,
    /// Equality evidence conditioned into the tree, sorted by variable
    /// then value (empty for an unconditioned tree).
    pub evidence: Vec<(VarId, Value)>,
}

impl CacheKey {
    /// The same key without evidence — the unconditioned base tree a
    /// conditioned entry derives from.
    pub fn base(&self) -> CacheKey {
        CacheKey {
            version: self.version,
            view: self.view.clone(),
            semiring: self.semiring,
            evidence: Vec::new(),
        }
    }
}

/// What a [`crate::Database::mutate`] install did, as far as the cache
/// is concerned. Precise events keep more of the cache alive; the
/// conservative default ([`CacheEvent::Unknown`]) is always safe.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheEvent {
    /// One row of one base relation changed its measure from `old` to
    /// `new`. Trees over views containing the relation are patched
    /// forward with the update semijoin when the semiring admits
    /// division and `old` is not the additive identity; trees over
    /// other views are carried forward untouched.
    MeasureUpdate {
        /// The mutated base relation.
        relation: String,
        /// The row's variable values, in the relation's schema order.
        row: Vec<Value>,
        /// The measure before the update.
        old: f64,
        /// The measure after the update.
        new: f64,
    },
    /// The named base relations changed in an unspecified way (insert,
    /// replace, load); everything else — other relations, the catalog's
    /// variable set, view definitions — is unchanged. Trees whose view
    /// reads none of the named relations are carried forward; the rest
    /// are evicted. An empty list (a pure catalog/view/FD addition)
    /// carries every tree forward.
    Touched(Vec<String>),
    /// Arbitrary mutation: every tree built against the old version is
    /// evicted. The raw [`crate::Database::mutate`] entry point reports
    /// this, since its closure can rewrite anything.
    Unknown,
}

/// One resident tree with its accounting.
struct Entry {
    tree: Arc<VeCache>,
    /// Base relation names of the entry's view (for `Touched` precision).
    base: Vec<String>,
    /// Capacity-accurate heap bytes ([`VeCache::heap_bytes`]) at
    /// admission/patch time.
    bytes: usize,
    /// Times this entry served a query.
    hits: u64,
    /// Accumulated observed recompute cost (µs) the entry stands in for.
    cost_us: f64,
    /// Logical clock of the last lookup (LRU tiebreak).
    last_used: u64,
}

impl Entry {
    /// Eviction score: cheap-to-rebuild, rarely-hit, byte-hungry entries
    /// score lowest and go first.
    fn score(&self) -> f64 {
        (1 + self.hits) as f64 * self.cost_us.max(1.0) / self.bytes.max(1) as f64
    }
}

/// Per-key demand recorded before admission.
#[derive(Default)]
struct Demand {
    misses: u64,
    cost_us: f64,
}

/// Demand entries kept before the map is cleared wholesale (a runaway
/// workload of never-repeating keys must not grow the map unboundedly).
const MAX_DEMAND_KEYS: usize = 4096;

#[derive(Default)]
struct Inner {
    entries: HashMap<CacheKey, Entry>,
    demand: HashMap<CacheKey, Demand>,
    bytes: usize,
    clock: u64,
}

/// Cumulative counters, exported as `engine.cache.*` metrics.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    admits: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    patched: AtomicU64,
    carried: AtomicU64,
    derived: AtomicU64,
    uncovered: AtomicU64,
    build_discarded: AtomicU64,
}

/// The engine-owned view cache: byte-budgeted, cost-admitted,
/// snapshot-invalidated storage of [`VeCache`] trees, shared across
/// queries, `Database` clones, and tenants (see the module docs for the
/// policies). All methods take `&self`; share with an `Arc` via
/// [`crate::Database::with_view_cache`].
pub struct ViewCache {
    /// Byte budget; `0` disables the cache entirely.
    budget: u64,
    inner: Mutex<Inner>,
    counters: Counters,
}

impl std::fmt::Debug for ViewCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewCache")
            .field("budget", &self.budget)
            .field("bytes", &self.bytes_resident())
            .field("entries", &self.len())
            .finish()
    }
}

impl ViewCache {
    /// A cache with the given byte budget (`0` disables it: every lookup
    /// misses, nothing is recorded or admitted).
    pub fn new(budget: u64) -> ViewCache {
        ViewCache {
            budget,
            inner: Mutex::new(Inner::default()),
            counters: Counters::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Whether the cache is enabled (a nonzero budget).
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// Capacity-accurate resident bytes across all entries.
    pub fn bytes_resident(&self) -> u64 {
        lock(&self.inner).bytes as u64
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a tree by key, bumping its hit count and recency. The
    /// returned `Arc` is served outside the cache lock; a concurrent
    /// eviction only drops the cache's own reference.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<VeCache>> {
        if !self.enabled() {
            return None;
        }
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.hits += 1;
                e.last_used = clock;
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.tree))
            }
            None => None,
        }
    }

    /// Record a miss that cost `cost_us` microseconds to answer without
    /// the cache. Returns `true` when the accumulated demand for `key`
    /// justifies building its tree now (see [`ADMIT_FACTOR`]).
    pub fn record_miss(&self, key: &CacheKey, cost_us: f64) -> bool {
        if !self.enabled() {
            return false;
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = lock(&self.inner);
        if inner.demand.len() >= MAX_DEMAND_KEYS && !inner.demand.contains_key(key) {
            inner.demand.clear();
        }
        let d = inner.demand.entry(key.clone()).or_default();
        d.misses += 1;
        d.cost_us += cost_us.max(0.0);
        d.misses > 1 && d.cost_us >= ADMIT_FACTOR * (d.cost_us / d.misses as f64)
    }

    /// Offer a freshly built (or derived) tree for admission. The entry
    /// is discarded — and `false` returned — when it alone exceeds the
    /// byte budget, or when making room would evict resident entries of
    /// higher cost/byte utility than the candidate's. On admission the
    /// key's recorded demand transfers to the entry's cost.
    pub fn admit(&self, key: CacheKey, base: Vec<String>, tree: Arc<VeCache>) -> bool {
        if !self.enabled() {
            return false;
        }
        let bytes = tree.heap_bytes();
        let mut inner = lock(&self.inner);
        let cost_us = inner
            .demand
            .remove(&key)
            .map(|d| d.cost_us)
            .unwrap_or(0.0);
        inner.clock += 1;
        let candidate = Entry {
            tree,
            base,
            bytes,
            hits: 0,
            cost_us,
            last_used: inner.clock,
        };
        if !self.make_room(&mut inner, &candidate) {
            self.counters.build_discarded.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if let Some(old) = inner.entries.insert(key, candidate) {
            inner.bytes -= old.bytes; // a concurrent build of the same key lost the race
        }
        inner.bytes += bytes;
        self.counters.admits.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Evict lowest-score entries until `candidate` fits. Returns `false`
    /// (leaving residents untouched beyond what was already evicted) when
    /// the candidate cannot fit or does not beat the cheapest resident.
    fn make_room(&self, inner: &mut Inner, candidate: &Entry) -> bool {
        if candidate.bytes as u64 > self.budget {
            return false;
        }
        while inner.bytes + candidate.bytes > self.budget as usize {
            let victim = inner
                .entries
                .iter()
                .min_by(|(_, a), (_, b)| {
                    (a.score(), a.last_used)
                        .partial_cmp(&(b.score(), b.last_used))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(k, e)| (k.clone(), e.score()));
            match victim {
                Some((_, s)) if s > candidate.score() => return false,
                Some((k, _)) => {
                    if let Some(e) = inner.entries.remove(&k) {
                        inner.bytes -= e.bytes;
                        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => return false, // empty cache yet still over budget: impossible
            }
        }
        true
    }

    /// Apply one catalog mutation: rewrite every entry keyed by
    /// `old_version` according to `event` — patch forward
    /// ([`VeCache::update_measure`]) under a measure update, re-key
    /// untouched entries to `new_version`, evict the rest. Entries at
    /// other versions belong to other databases sharing this cache and
    /// are left alone. Demand recorded against `old_version` is dropped.
    ///
    /// Patch failures (no division in the semiring, a zero old measure, a
    /// budget trip or injected fault inside the semijoin) degrade to
    /// eviction — correctness never depends on a patch landing.
    pub fn on_mutation(&self, old_version: u64, new_version: u64, event: &CacheEvent) {
        if !self.enabled() || old_version == new_version {
            return;
        }
        let mut inner = lock(&self.inner);
        inner.demand.retain(|k, _| k.version != old_version);
        let stale: Vec<CacheKey> = inner
            .entries
            .keys()
            .filter(|k| k.version == old_version)
            .cloned()
            .collect();
        for key in stale {
            let Some(entry) = inner.entries.remove(&key) else {
                continue;
            };
            inner.bytes -= entry.bytes;
            self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
            let carried = match event {
                CacheEvent::Unknown => None,
                CacheEvent::Touched(names) => {
                    if names.iter().any(|n| entry.base.iter().any(|b| b == n)) {
                        None
                    } else {
                        self.counters.carried.fetch_add(1, Ordering::Relaxed);
                        Some(entry)
                    }
                }
                CacheEvent::MeasureUpdate {
                    relation,
                    row,
                    old,
                    new,
                } => {
                    if !entry.base.iter().any(|b| b == relation) {
                        self.counters.carried.fetch_add(1, Ordering::Relaxed);
                        Some(entry)
                    } else if !key.evidence.is_empty() {
                        // Conditioned trees are derived cheaply from the
                        // base tree; re-derive after the patch rather
                        // than reason about selection/patch commutation.
                        None
                    } else {
                        match entry.tree.update_measure(relation, row, *old, *new) {
                            Ok(patched) => {
                                self.counters.patched.fetch_add(1, Ordering::Relaxed);
                                let bytes = patched.heap_bytes();
                                Some(Entry {
                                    tree: Arc::new(patched),
                                    bytes,
                                    ..entry
                                })
                            }
                            Err(_) => None,
                        }
                    }
                }
            };
            match carried {
                Some(entry) => {
                    let mut key = key;
                    key.version = new_version;
                    inner.bytes += entry.bytes;
                    if let Some(old) = inner.entries.insert(key, entry) {
                        inner.bytes -= old.bytes;
                    }
                }
                None => {
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // A patch can grow an entry past the budget; shed by score.
        self.shed_over_budget(&mut inner);
    }

    /// Evict lowest-score entries until the resident total fits the
    /// budget again.
    fn shed_over_budget(&self, inner: &mut Inner) {
        while inner.bytes as u64 > self.budget {
            let victim = inner
                .entries
                .iter()
                .min_by(|(_, a), (_, b)| {
                    (a.score(), a.last_used)
                        .partial_cmp(&(b.score(), b.last_used))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(k, _)| k.clone());
            let Some(k) = victim else { break };
            if let Some(e) = inner.entries.remove(&k) {
                inner.bytes -= e.bytes;
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Count a conditioned tree derived from a resident base tree.
    pub(crate) fn note_derived(&self) {
        self.counters.derived.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a hit whose tree had no table covering the query's
    /// variables (the query fell through to normal execution).
    pub(crate) fn note_uncovered(&self) {
        self.counters.uncovered.fetch_add(1, Ordering::Relaxed);
    }

    /// Export the cache's counters and residency gauges into a
    /// [`MetricsRegistry`] under `engine.cache.*`. Values are absolute
    /// (the cache owns the counters), so re-publishing is idempotent and
    /// safe from every `Database` clone sharing the registry.
    pub fn publish(&self, m: &MetricsRegistry) {
        let c = &self.counters;
        m.set("engine.cache.hits", c.hits.load(Ordering::Relaxed));
        m.set("engine.cache.misses", c.misses.load(Ordering::Relaxed));
        m.set("engine.cache.admits", c.admits.load(Ordering::Relaxed));
        m.set("engine.cache.evictions", c.evictions.load(Ordering::Relaxed));
        m.set(
            "engine.cache.invalidations",
            c.invalidations.load(Ordering::Relaxed),
        );
        m.set("engine.cache.patched", c.patched.load(Ordering::Relaxed));
        m.set("engine.cache.carried", c.carried.load(Ordering::Relaxed));
        m.set("engine.cache.derived", c.derived.load(Ordering::Relaxed));
        m.set("engine.cache.uncovered", c.uncovered.load(Ordering::Relaxed));
        m.set(
            "engine.cache.build_discarded",
            c.build_discarded.load(Ordering::Relaxed),
        );
        m.set("engine.cache.bytes_resident", self.bytes_resident());
        m.set("engine.cache.entries", self.len() as u64);
    }

    /// A named cumulative counter, for tests and diagnostics: one of
    /// `hits`, `misses`, `admits`, `evictions`, `invalidations`,
    /// `patched`, `carried`, `derived`, `uncovered`, `build_discarded`.
    pub fn counter(&self, name: &str) -> u64 {
        let c = &self.counters;
        match name {
            "hits" => c.hits.load(Ordering::Relaxed),
            "misses" => c.misses.load(Ordering::Relaxed),
            "admits" => c.admits.load(Ordering::Relaxed),
            "evictions" => c.evictions.load(Ordering::Relaxed),
            "invalidations" => c.invalidations.load(Ordering::Relaxed),
            "patched" => c.patched.load(Ordering::Relaxed),
            "carried" => c.carried.load(Ordering::Relaxed),
            "derived" => c.derived.load(Ordering::Relaxed),
            "uncovered" => c.uncovered.load(Ordering::Relaxed),
            "build_discarded" => c.build_discarded.load(Ordering::Relaxed),
            _ => 0,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}
