//! MVCC-lite snapshot storage for the database's catalog and data.
//!
//! A [`Snapshot`] is one immutable, internally consistent version of
//! everything a query resolves names against: the variable [`Catalog`],
//! the base-relation [`RelationStore`], the MPF view definitions, and the
//! declared functional dependencies. The [`Database`](crate::Database)
//! keeps the *current* snapshot behind an atomically swappable `Arc`:
//!
//! * **readers** ([`Database::run`](crate::Database::run) and friends)
//!   grab the `Arc` once at query start and use that snapshot for the
//!   query's whole lifetime — a concurrent writer can never make a query
//!   see half-updated metadata, and queries never block writers;
//! * **writers** ([`Database::mutate`](crate::Database::mutate) and the
//!   mutators built on it) clone the current snapshot, apply their
//!   changes to the private copy, and install it with one pointer swap.
//!   Writers serialize among themselves; a failed mutation installs
//!   nothing.
//!
//! The accessor guards ([`CatalogRef`], [`StoreRef`], [`RelationRef`],
//! [`ViewRef`]) keep the old reference-returning `Database` accessors
//! ergonomic: each owns an `Arc<Snapshot>` and derefs into it, so
//! `db.catalog().name(v)` and `db.relation("r").unwrap().measure(0)`
//! read exactly as before while borrowing from a pinned snapshot instead
//! of the (now concurrently mutable) database.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpf_algebra::RelationStore;
use mpf_storage::{Catalog, FunctionalRelation, VarId};

use crate::MpfView;

/// Process-wide snapshot version source. Versions are globally unique —
/// not per-`Database` — so `Database` clones (and independent databases)
/// sharing one [`crate::ViewCache`] can never collide on a version
/// number and serve one database's cached tree for another's data.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

/// A fresh, never-before-issued snapshot version.
pub(crate) fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// One immutable version of the database: catalog, base relations, view
/// definitions, and declared FDs. Cheap to share (`Arc`), cloned in full
/// by writers building the next version.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub(crate) catalog: Catalog,
    pub(crate) store: RelationStore,
    pub(crate) views: HashMap<String, MpfView>,
    /// Declared narrow functional dependencies (`X -> f` with
    /// `X ⊂ Var(s)`), keyed by relation name; feed Proposition 1.
    pub(crate) fds: HashMap<String, Vec<VarId>>,
    /// Globally unique version number, reassigned on every install.
    /// Everything keyed by it (the engine view cache) is implicitly
    /// invalidated when a writer installs a successor.
    pub(crate) version: u64,
}

impl Snapshot {
    /// The variable catalog of this version.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// This snapshot's globally unique version number. A mutation —
    /// however small — installs a snapshot with a fresh version, so
    /// equal versions imply identical catalog, data, views, and FDs.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The base relations of this version.
    pub fn store(&self) -> &RelationStore {
        &self.store
    }

    /// Mutable access to the base relations, for
    /// [`Database::mutate`](crate::Database::mutate) closures that
    /// replace several relations in one atomic install (a reader either
    /// sees all of the replacements or none of them).
    pub fn store_mut(&mut self) -> &mut RelationStore {
        &mut self.store
    }

    /// A base relation by name.
    pub fn relation_of(&self, name: &str) -> Option<&FunctionalRelation> {
        use mpf_algebra::RelationProvider;
        self.store.relation_of(name)
    }

    /// A view definition by name.
    pub fn view_of(&self, name: &str) -> Option<&MpfView> {
        self.views.get(name)
    }

    /// Iterate over the view definitions (unordered).
    pub fn views(&self) -> impl Iterator<Item = &MpfView> {
        self.views.values()
    }

    /// The declared FD left-hand side for a relation, if any.
    pub fn fd_of(&self, name: &str) -> Option<&[VarId]> {
        self.fds.get(name).map(Vec::as_slice)
    }
}

/// Guard dereferencing to the [`Catalog`] of a pinned snapshot.
#[derive(Debug, Clone)]
pub struct CatalogRef(pub(crate) Arc<Snapshot>);

impl Deref for CatalogRef {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        self.0.catalog()
    }
}

/// Guard dereferencing to the [`RelationStore`] of a pinned snapshot.
#[derive(Debug, Clone)]
pub struct StoreRef(pub(crate) Arc<Snapshot>);

impl StoreRef {
    /// The whole pinned snapshot (for callers that also need the catalog
    /// consistent with this store).
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.0
    }
}

impl Deref for StoreRef {
    type Target = RelationStore;
    fn deref(&self) -> &RelationStore {
        self.0.store()
    }
}

/// Guard dereferencing to one base relation of a pinned snapshot.
#[derive(Debug, Clone)]
pub struct RelationRef {
    pub(crate) snap: Arc<Snapshot>,
    pub(crate) name: String,
}

impl Deref for RelationRef {
    type Target = FunctionalRelation;
    fn deref(&self) -> &FunctionalRelation {
        // Constructed only after the lookup succeeded, and the snapshot
        // is immutable, so the relation cannot have gone away.
        self.snap
            .relation_of(&self.name)
            .expect("relation pinned by snapshot")
    }
}

/// Guard dereferencing to one view definition of a pinned snapshot.
#[derive(Debug, Clone)]
pub struct ViewRef {
    pub(crate) snap: Arc<Snapshot>,
    pub(crate) name: String,
}

impl Deref for ViewRef {
    type Target = MpfView;
    fn deref(&self) -> &MpfView {
        self.snap
            .view_of(&self.name)
            .expect("view pinned by snapshot")
    }
}
