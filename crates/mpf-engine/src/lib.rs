#![warn(missing_docs)]
//! High-level MPF query engine: database facade, query API, and the
//! paper's SQL extension.
//!
//! This crate ties the storage, algebra, optimizer, and inference layers
//! into the interface a user of the paper's modified PostgreSQL would see:
//!
//! * [`Database`] — named relations + MPF view definitions
//!   (`create mpfview r as select ..., measure = (* s1.f, ..., sn.f) from ...`);
//! * [`Query`] / [`Answer`] — the three optimizable MPF query forms of
//!   Section 3.1 (basic, restricted answer, constrained domain), plus the
//!   constrained-range (`having`) form, evaluated under a selectable
//!   [`Strategy`] (the paper's PostgreSQL patch exposes the same knob as a
//!   language extension "that specifies the evaluation strategy");
//! * [`QueryRequest`] — the builder every execution entry point accepts
//!   ([`Database::run`] / [`Database::describe`] /
//!   [`Database::explain_analyze`]): strategy, per-request
//!   [`mpf_algebra::ExecLimits`], hypothetical [`Scenario`]s (named
//!   bundles of alternate-measure / alternate-domain overrides plus
//!   evidence, the Section 3.1 future-work forms), span tracing
//!   ([`TraceLevel`]), and answering from a materialized
//!   [`mpf_infer::VeCache`]
//!   ([`Database::build_cache`] + [`QueryRequest::via_cache`]);
//! * batch what-if evaluation: [`Database::run_scenarios`] takes a
//!   [`ScenarioSet`] (hundreds of named variants in one call), computes
//!   plan subtrees untouched by any override once as a *shared trunk*,
//!   fans per-scenario frontiers across the worker pool under one
//!   budget, and returns a [`ScenarioReport`] — per-scenario answers
//!   (bit-identical to sequential runs) plus an invariant-vs-divergent
//!   summary ([`Divergence`]) ranked by group shift;
//! * [`parser`] — a lexer + recursive-descent parser for the SQL extension,
//!   so the paper's example statements run verbatim;
//! * observability: [`Answer::trace`] carries a per-operator span tree
//!   (row counts, cells, wall time, partition/worker fan-out),
//!   [`Database::explain_analyze`] renders it next to the optimizer's
//!   estimates, and [`Database::with_metrics`] feeds a process-wide
//!   [`MetricsRegistry`] (counters + latency histograms, JSON export);
//! * execution guardrails: [`Database::with_limits`] enforces
//!   [`mpf_algebra::ExecLimits`] resource budgets on every query, and
//!   [`Database::with_fallback`] configures the [`FallbackPolicy`] strategy
//!   chain retried when an attempt trips a budget or the optimizer fails
//!   ([`Answer::served_by`] records which strategy answered);
//! * a transparent, engine-owned [`ViewCache`]: cached elimination trees
//!   keyed by snapshot version × view × semiring × evidence, with
//!   byte-accurate residency accounting under an `MPF_CACHE_BYTES`
//!   budget, cost-based admission, LRU/cost hybrid eviction, and
//!   snapshot-keyed invalidation ([`CacheEvent`]) that patches point
//!   measure updates forward with the paper's Section 6 update semijoin.
//!   [`Database::run`] serves from it automatically; [`Answer::cache`]
//!   ([`CacheServed`]) records when it did.

mod database;
mod delta;
mod error;
pub mod parser;
mod query;
mod request;
mod scenario;
mod snapshot;
mod viewcache;

pub use database::{Database, FallbackPolicy, MpfView, Override, SqlOutcome};
pub use error::EngineError;
pub use parser::{Statement, StrategySpec};
pub use query::{Answer, CacheServed, Query, RangePredicate, Strategy};
pub use request::QueryRequest;
pub use scenario::{
    Divergence, GroupDelta, Scenario, ScenarioOutcome, ScenarioReport, ScenarioSet,
};
pub use snapshot::{CatalogRef, RelationRef, Snapshot, StoreRef, ViewRef};
pub use viewcache::{CacheEvent, CacheKey, ViewCache};
// `Strategy::Ve`/`VePlus` take a heuristic, so consumers of this crate
// alone must be able to name it; likewise the trace/metrics/config types
// a `QueryRequest`, `Database::with_metrics`, and `Database::from_env`
// speak in.
pub use mpf_algebra::{
    ConfigError, DenseMode, MetricsRegistry, ReprMode, SpanKind, TraceLevel, TraceSpan, TraceTree,
};
// `EngineError::Infer` wraps it, so consumers matching engine errors
// (e.g. the service's wire classification) must be able to name it.
pub use mpf_infer::InferError;
pub use mpf_optimizer::Heuristic;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
