#![warn(missing_docs)]
//! High-level MPF query engine: database facade, query API, and the
//! paper's SQL extension.
//!
//! This crate ties the storage, algebra, optimizer, and inference layers
//! into the interface a user of the paper's modified PostgreSQL would see:
//!
//! * [`Database`] — named relations + MPF view definitions
//!   (`create mpfview r as select ..., measure = (* s1.f, ..., sn.f) from ...`);
//! * [`Query`] / [`Answer`] — the three optimizable MPF query forms of
//!   Section 3.1 (basic, restricted answer, constrained domain), plus the
//!   constrained-range (`having`) form, evaluated under a selectable
//!   [`Strategy`] (the paper's PostgreSQL patch exposes the same knob as a
//!   language extension "that specifies the evaluation strategy");
//! * [`parser`] — a lexer + recursive-descent parser for the SQL extension,
//!   so the paper's example statements run verbatim;
//! * hypothetical queries (alternate measure / alternate domain, the
//!   Section 3.1 future-work forms) via [`Database::query_hypothetical`];
//! * workload support: [`Database::build_cache`] materializes a
//!   [`mpf_infer::VeCache`] for a view and
//!   [`Database::query_cached`] answers from it;
//! * execution guardrails: [`Database::with_limits`] enforces
//!   [`mpf_algebra::ExecLimits`] resource budgets on every query, and
//!   [`Database::with_fallback`] configures the [`FallbackPolicy`] strategy
//!   chain retried when an attempt trips a budget or the optimizer fails
//!   ([`Answer::served_by`] records which strategy answered).

mod database;
mod error;
pub mod parser;
mod query;

pub use database::{Database, FallbackPolicy, MpfView, Override, SqlOutcome};
pub use error::EngineError;
pub use parser::{Statement, StrategySpec};
pub use query::{Answer, Query, RangePredicate, Strategy};
// `Strategy::Ve`/`VePlus` take a heuristic, so consumers of this crate
// alone must be able to name it.
pub use mpf_optimizer::Heuristic;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
