use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use mpf_algebra::{
    fault, AggAlgo, DenseMode, ExecContext, ExecLimits, ExecStats, Executor, MetricsRegistry,
    PhysicalPlan, Plan, RelationProvider, RelationStore, ReprMode, TraceLevel,
};
use mpf_infer::VeCache;
use mpf_optimizer::{
    choose_physical, estimate::annotate_estimates, linearity::linearity_test,
    linearity::LinearityTest, optimize, Algorithm, BaseRel, CostModel, Heuristic, OptContext,
    PhysicalConfig, QuerySpec, MAX_DP_RELATIONS,
};
use mpf_semiring::{resolve_semiring, Aggregate, Combine, SemiringKind};
use mpf_storage::{Catalog, FunctionalRelation, Value, VarId};

use crate::parser::{parse, Statement};
use crate::query::CacheServed;
use crate::snapshot::{fresh_version, CatalogRef, RelationRef, Snapshot, StoreRef, ViewRef};
use crate::viewcache::{CacheEvent, CacheKey, ViewCache};
use crate::{Answer, EngineError, Query, QueryRequest, Result, Strategy};

/// An MPF view definition: a product join of named base relations under a
/// combine operation (the `create mpfview` statement of Section 2).
#[derive(Debug, Clone, PartialEq)]
pub struct MpfView {
    /// View name.
    pub name: String,
    /// Base relation names, in definition order.
    pub base: Vec<String>,
    /// The multiplicative operation of the product join.
    pub combine: Combine,
}

/// A hypothetical override for what-if queries (the alternate-measure and
/// alternate-domain forms of Section 3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum Override {
    /// Hypothetically change the measure of one row of a base relation
    /// ("what if part p1 was a different price?").
    Measure {
        /// Base relation name.
        relation: String,
        /// The row's variable values (in the relation's schema order).
        row: Vec<Value>,
        /// The hypothetical measure.
        measure: f64,
    },
    /// Hypothetically move rows of a base relation from one variable value
    /// to another ("transfer c1's deal with t1 to t2"). If the remap merges
    /// rows, the first occurrence wins.
    Domain {
        /// Base relation name.
        relation: String,
        /// The variable being remapped (catalog name).
        var: String,
        /// Rows with this value...
        from: Value,
        /// ...are rewritten to this value.
        to: Value,
    },
}

impl Override {
    /// The base relation this override touches — the key the scenario
    /// engine partitions plans by (subtrees scanning only untouched
    /// relations become shared trunks).
    pub fn relation(&self) -> &str {
        match self {
            Override::Measure { relation, .. } | Override::Domain { relation, .. } => relation,
        }
    }
}

/// The engine's strategy fallback chain.
///
/// When a query attempt fails with an error a different strategy can
/// plausibly cure ([`EngineError::fallback_may_cure`]: a row/cell budget
/// trip, an injected fault, a worker panic, or the optimizer's
/// relation-count limit), the engine retries down this chain, skipping
/// entries equal to strategies already tried. The serving strategy and the
/// failed attempts are recorded in [`Answer::served_by`] and
/// [`Answer::fallback`]. Cancellation and missed wall-clock deadlines are
/// never retried.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackPolicy {
    /// Strategies to try, in order, after the query's requested strategy.
    pub chain: Vec<Strategy>,
}

impl Default for FallbackPolicy {
    /// Progressively simpler strategies: extended Variable Elimination,
    /// then linear CS+, then the join-all naive plan — which performs no
    /// plan search at all, so it survives optimizer-side failures on any
    /// view.
    fn default() -> Self {
        FallbackPolicy {
            chain: vec![
                Strategy::VePlus(Heuristic::Degree),
                Strategy::CsPlusLinear,
                Strategy::Naive,
            ],
        }
    }
}

impl FallbackPolicy {
    /// Disable fallback: the requested strategy's error is returned as-is.
    pub fn none() -> FallbackPolicy {
        FallbackPolicy { chain: Vec::new() }
    }

    /// A custom chain.
    pub fn of(chain: impl IntoIterator<Item = Strategy>) -> FallbackPolicy {
        FallbackPolicy {
            chain: chain.into_iter().collect(),
        }
    }
}

/// Outcome of running a SQL statement.
#[derive(Debug, Clone)]
pub enum SqlOutcome {
    /// A view was created.
    ViewCreated(String),
    /// A query was answered (boxed: `Answer` carries the result relation,
    /// plan, and counters).
    Answer(Box<Answer>),
}

/// The engine facade: catalog + base relations + MPF views, held as an
/// atomically swappable [`Snapshot`] so many queries and writers can
/// share one database concurrently.
///
/// Every read path ([`Database::run`], [`Database::describe`], ...)
/// pins the current snapshot once at entry and uses it for the whole
/// call; every mutator ([`Database::run_sql`], [`Database::add_var`],
/// [`Database::insert_relation`], ...) takes `&self`, builds the next
/// snapshot privately, and installs it with one pointer swap
/// ([`Database::mutate`]). Long queries therefore never block writers,
/// writers never corrupt in-flight queries, and `Arc<Database>` is
/// `Send + Sync` — the shape the `mpf-serve` multi-tenant service runs.
#[derive(Debug)]
pub struct Database {
    /// The current snapshot. Readers hold the read lock only long enough
    /// to clone the `Arc`; writers hold the write lock only for the
    /// pointer swap.
    shared: RwLock<Arc<Snapshot>>,
    /// Serializes writers: the clone-modify-install sequence of
    /// [`Database::mutate`] must not interleave, or one writer's install
    /// would silently discard the other's changes.
    writer: Mutex<()>,
    cost_model: CostModel,
    /// Resource budgets enforced on every query execution.
    limits: ExecLimits,
    /// Strategy fallback chain for recoverable query failures.
    fallback: FallbackPolicy,
    /// Dense-kernel selection mode handed to physical planning
    /// (`MPF_DENSE` by default).
    dense: DenseMode,
    /// Sparse-tensor selection mode handed to physical planning
    /// (`MPF_REPR` by default).
    repr: ReprMode,
    /// Optional metrics sink fed by every [`Database::run`] call.
    metrics: Option<Arc<MetricsRegistry>>,
    /// The engine-owned view cache ([`crate::ViewCache`]), shared by
    /// clones (and, via [`Database::with_view_cache`], across
    /// databases). `None` or a zero budget disables transparent cache
    /// serving entirely.
    view_cache: Option<Arc<ViewCache>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Database {
    /// The clone shares the current snapshot (cheap `Arc` copy) but has
    /// its own swap cell: subsequent mutations of either database do not
    /// affect the other.
    fn clone(&self) -> Database {
        Database {
            shared: RwLock::new(self.snapshot()),
            writer: Mutex::new(()),
            cost_model: self.cost_model,
            limits: self.limits.clone(),
            fallback: self.fallback.clone(),
            dense: self.dense,
            repr: self.repr,
            metrics: self.metrics.clone(),
            view_cache: self.view_cache.clone(),
        }
    }
}

impl Database {
    /// An empty database (IO cost model, no resource limits, default
    /// fallback chain; the view cache sized leniently from
    /// `MPF_CACHE_BYTES`, disabled when unset or malformed).
    pub fn new() -> Database {
        let cache_bytes = mpf_algebra::config::cache_bytes_from_env();
        Database {
            shared: RwLock::new(Arc::new(Snapshot {
                version: fresh_version(),
                ..Snapshot::default()
            })),
            writer: Mutex::new(()),
            cost_model: CostModel::Io,
            limits: ExecLimits::none(),
            fallback: FallbackPolicy::default(),
            dense: DenseMode::from_env(),
            repr: ReprMode::from_env(),
            metrics: None,
            view_cache: (cache_bytes > 0).then(|| Arc::new(ViewCache::new(cache_bytes))),
        }
    }

    /// An empty database configured from the environment knobs
    /// (`MPF_THREADS`, `MPF_DENSE`, `MPF_REPR`, `MPF_KERNEL`,
    /// `MPF_CACHE_BYTES`) with *strict* parsing: a malformed
    /// value is a typed [`EngineError::Config`] instead of the silent
    /// fallback [`Database::new`] applies. Services should start here.
    pub fn from_env() -> Result<Database> {
        let knobs = mpf_algebra::config::validate_env().map_err(EngineError::Config)?;
        let mut db = Database::new();
        db.dense = knobs.dense.unwrap_or_default();
        db.repr = knobs.repr.unwrap_or_default();
        if let Some(threads) = knobs.threads {
            db.limits = db.limits.clone().with_threads(threads);
        }
        let cache_bytes = knobs.cache_bytes.unwrap_or(0);
        db.view_cache = (cache_bytes > 0).then(|| Arc::new(ViewCache::new(cache_bytes)));
        Ok(db)
    }

    /// The current snapshot, pinned: the returned `Arc` keeps this
    /// version of the catalog and data alive (and consistent) no matter
    /// how many mutations install newer versions after it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Run one atomic mutation: clone the current snapshot, let `f`
    /// modify the private copy, and — only if `f` succeeds — install the
    /// result as the new current snapshot with a single pointer swap.
    /// Writers serialize; readers are never blocked (in-flight queries
    /// keep the snapshot they pinned at entry, so they observe either
    /// entirely the old version or entirely the new one, never a mix).
    ///
    /// The `catalog::install` fault site fires between building and
    /// installing the new snapshot; an injected fault (or any error from
    /// `f`) leaves the current snapshot untouched.
    ///
    /// The closure can rewrite anything, so the view cache treats the
    /// install as [`CacheEvent::Unknown`] and evicts every tree built
    /// against the replaced version. The named mutators
    /// ([`Database::insert_relation`], [`Database::update_measure`], ...)
    /// report precise events and keep more of the cache alive.
    pub fn mutate<T>(&self, f: impl FnOnce(&mut Snapshot) -> Result<T>) -> Result<T> {
        self.mutate_with(CacheEvent::Unknown, f)
    }

    /// [`Database::mutate`] with a caller-supplied [`CacheEvent`]
    /// describing what the closure changed, so the view cache can patch
    /// or carry entries forward instead of evicting them. The event is
    /// applied only after a successful install; a failed mutation leaves
    /// both the snapshot and the cache untouched.
    fn mutate_with<T>(
        &self,
        event: CacheEvent,
        f: impl FnOnce(&mut Snapshot) -> Result<T>,
    ) -> Result<T> {
        self.mutate_with_late_event(|snap| f(snap).map(|out| (out, event)))
    }

    /// Use a different cost model for plan selection.
    pub fn with_cost_model(mut self, cm: CostModel) -> Database {
        self.cost_model = cm;
        self
    }

    /// Enforce resource budgets ([`ExecLimits`]) on every query this
    /// database executes. A configured deadline is measured per attempt,
    /// starting when execution of that attempt begins.
    pub fn with_limits(mut self, limits: ExecLimits) -> Database {
        self.limits = limits;
        self
    }

    /// Replace the strategy fallback chain ([`FallbackPolicy::none`]
    /// disables fallback entirely).
    pub fn with_fallback(mut self, fallback: FallbackPolicy) -> Database {
        self.fallback = fallback;
        self
    }

    /// Set the dense-kernel selection mode for physical planning,
    /// overriding the `MPF_DENSE` environment default.
    pub fn with_dense(mut self, mode: DenseMode) -> Database {
        self.dense = mode;
        self
    }

    /// The dense-kernel selection mode physical planning runs under.
    pub fn dense(&self) -> DenseMode {
        self.dense
    }

    /// Set the sparse-tensor selection mode for physical planning,
    /// overriding the `MPF_REPR` environment default.
    pub fn with_repr(mut self, mode: ReprMode) -> Database {
        self.repr = mode;
        self
    }

    /// The sparse-tensor selection mode physical planning runs under.
    pub fn repr(&self) -> ReprMode {
        self.repr
    }

    /// The resource budgets queries run under.
    pub fn limits(&self) -> &ExecLimits {
        &self.limits
    }

    /// The active fallback chain.
    pub fn fallback(&self) -> &FallbackPolicy {
        &self.fallback
    }

    /// Feed a [`MetricsRegistry`] from every [`Database::run`] call:
    /// query/error/fallback counters and optimize/execute latency
    /// histograms. Share the `Arc` to export with
    /// [`MetricsRegistry::to_json`].
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Database {
        self.metrics = Some(metrics);
        self
    }

    /// The registry passed to [`Database::with_metrics`], if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Attach a fresh [`ViewCache`] with the given byte budget,
    /// replacing whatever `MPF_CACHE_BYTES` configured (`0` detaches the
    /// cache entirely). Clones made *after* this call share the cache.
    pub fn with_cache_bytes(mut self, budget: u64) -> Database {
        self.view_cache = (budget > 0).then(|| Arc::new(ViewCache::new(budget)));
        self
    }

    /// Share an existing [`ViewCache`] — e.g. one cache across several
    /// independent databases, or across services. Snapshot versions are
    /// globally unique, so entries from different databases can never
    /// collide.
    pub fn with_view_cache(mut self, cache: Arc<ViewCache>) -> Database {
        self.view_cache = Some(cache);
        self
    }

    /// The attached view cache, if any (for inspection: counters,
    /// residency).
    pub fn view_cache(&self) -> Option<&Arc<ViewCache>> {
        self.view_cache.as_ref()
    }

    /// Build a database around an existing catalog and relation store (as
    /// produced by the `mpf-datagen` generators).
    pub fn from_parts(catalog: Catalog, store: RelationStore) -> Database {
        let db = Database::new();
        *db.shared.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(Snapshot {
            catalog,
            store,
            views: HashMap::new(),
            fds: HashMap::new(),
            version: fresh_version(),
        });
        db
    }

    /// The variable catalog (of the current snapshot, pinned by the
    /// returned guard).
    pub fn catalog(&self) -> CatalogRef {
        CatalogRef(self.snapshot())
    }

    /// Register a variable with its domain size.
    pub fn add_var(&self, name: &str, domain: u64) -> Result<VarId> {
        // A pure catalog addition: no existing relation or view changes,
        // so cached trees carry forward.
        self.mutate_with(CacheEvent::Touched(Vec::new()), |snap| {
            Ok(snap.catalog.add_var(name, domain)?)
        })
    }

    /// Insert a base relation, validating the functional dependency and the
    /// domain bounds.
    pub fn insert_relation(&self, rel: FunctionalRelation) -> Result<()> {
        let touched = CacheEvent::Touched(vec![rel.name().to_string()]);
        self.mutate_with(touched, |snap| {
            rel.validate_fd()?;
            rel.validate_domains(&snap.catalog)?;
            snap.store.insert(rel);
            Ok(())
        })
    }

    /// Load a base relation from CSV (see [`mpf_storage::csv_io`]): the
    /// header names the variables (trailing column `f` is the measure),
    /// string cells are dictionary-encoded into the catalog, numeric cells
    /// are value indices. Returns the row count.
    pub fn load_csv(&self, name: &str, mut reader: impl std::io::BufRead) -> Result<usize> {
        self.mutate_with(CacheEvent::Touched(vec![name.to_string()]), |snap| {
            let rel = mpf_storage::csv_io::read_csv(&mut snap.catalog, name, &mut reader)?;
            let n = rel.len();
            snap.store.insert(rel);
            Ok(n)
        })
    }

    /// Export a base relation as CSV, rendering dictionary labels.
    pub fn dump_csv(&self, name: &str, writer: impl std::io::Write) -> Result<()> {
        let snap = self.snapshot();
        let rel = snap.relation_of(name).ok_or_else(|| {
            EngineError::Storage(mpf_storage::StorageError::UnknownRelation(name.into()))
        })?;
        mpf_storage::csv_io::write_csv(rel, &snap.catalog, writer)
            .map_err(|e| EngineError::BadOverride(format!("csv write failed: {e}")))
    }

    /// Declare a narrow functional dependency `lhs -> f` for a base
    /// relation (e.g. a primary key), after validating it holds on the
    /// data. Declared FDs enable the Proposition 1 elimination pruning in
    /// extended Variable Elimination.
    pub fn declare_fd(&self, relation: &str, lhs: &[&str]) -> Result<()> {
        // Declaring an FD informs the optimizer but changes no data, so
        // cached trees remain valid.
        self.mutate_with(CacheEvent::Touched(Vec::new()), |snap| {
            let rel = snap.relation_of(relation).ok_or_else(|| {
                EngineError::Storage(mpf_storage::StorageError::UnknownRelation(
                    relation.to_string(),
                ))
            })?;
            let ids: Vec<VarId> = lhs
                .iter()
                .map(|n| snap.catalog.var(n).map_err(EngineError::Storage))
                .collect::<Result<_>>()?;
            if !mpf_optimizer::prop1::fd_holds(rel, &ids) {
                return Err(EngineError::Storage(
                    mpf_storage::StorageError::FdViolation {
                        first_row: 0,
                        second_row: 0,
                    },
                ));
            }
            snap.fds.insert(relation.to_string(), ids);
            Ok(())
        })
    }

    /// Look up a base relation (pinned by the returned guard).
    pub fn relation(&self, name: &str) -> Option<RelationRef> {
        let snap = self.snapshot();
        snap.relation_of(name)?;
        Some(RelationRef {
            snap,
            name: name.to_string(),
        })
    }

    /// The relation store (of the current snapshot, pinned by the
    /// returned guard; for direct executor use).
    pub fn store(&self) -> StoreRef {
        StoreRef(self.snapshot())
    }

    /// Define an MPF view over existing base relations.
    pub fn create_view(&self, name: &str, base: &[&str], combine: Combine) -> Result<()> {
        // A new view cannot invalidate trees cached for existing views.
        self.mutate_with(CacheEvent::Touched(Vec::new()), |snap| {
            create_view_in(snap, name, base, combine)
        })
    }

    /// Update the measure of one existing row of a base relation,
    /// returning the previous measure. This is the real (non-
    /// hypothetical) counterpart of [`Override::Measure`]: the change
    /// installs a new snapshot atomically, and cached view trees over
    /// the relation are patched forward with the paper's update
    /// semijoin where the semiring admits division (evicted where it
    /// does not), so a warm cache survives point updates.
    ///
    /// # Errors
    /// [`EngineError::InvalidUpdate`] when the relation or row does not
    /// exist.
    pub fn update_measure(&self, relation: &str, row: &[Value], measure: f64) -> Result<f64> {
        let old = self.mutate_with_late_event(|snap| {
            let rel = snap.store.relation_of(relation).ok_or_else(|| {
                EngineError::InvalidUpdate(format!("unknown relation `{relation}`"))
            })?;
            let (updated, old) = crate::delta::patch_measure(rel, row, measure).ok_or_else(|| {
                EngineError::InvalidUpdate(format!("no row {row:?} in `{relation}`"))
            })?;
            snap.store.insert(updated);
            Ok((
                old,
                CacheEvent::MeasureUpdate {
                    relation: relation.to_string(),
                    row: row.to_vec(),
                    old,
                    new: measure,
                },
            ))
        })?;
        Ok(old)
    }

    /// [`Database::mutate_with`] for mutators whose event depends on the
    /// snapshot contents (e.g. the old measure of the row being
    /// updated): the closure returns the event along with its output.
    fn mutate_with_late_event<T>(
        &self,
        f: impl FnOnce(&mut Snapshot) -> Result<(T, CacheEvent)>,
    ) -> Result<T> {
        let _serialize = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let mut next = (*self.snapshot()).clone();
        let old_version = next.version;
        let (out, event) = f(&mut next)?;
        next.version = fresh_version();
        let new_version = next.version;
        fault::check("catalog::install")?;
        *self.shared.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(next);
        if let Some(vc) = &self.view_cache {
            vc.on_mutation(old_version, new_version, &event);
        }
        Ok(out)
    }

    /// Look up a view definition (pinned by the returned guard).
    pub fn view(&self, name: &str) -> Result<ViewRef> {
        let snap = self.snapshot();
        if snap.view_of(name).is_none() {
            return Err(EngineError::UnknownView(name.to_string()));
        }
        Ok(ViewRef {
            snap,
            name: name.to_string(),
        })
    }

    /// Evaluate a query submission (Section 3.1 forms) and return the
    /// answer with plan, cost, counters, timings, and (when requested) a
    /// per-operator trace. This is the single entry point behind which
    /// the old `query` / `query_hypothetical` / `query_cached` method
    /// family is consolidated: a plain [`Query`] converts into a default
    /// [`QueryRequest`], so `db.run(&q)` is the common case.
    pub fn run<'a>(&self, req: impl Into<QueryRequest<'a>>) -> Result<Answer> {
        self.run_request(&req.into())
    }

    pub(crate) fn run_request(&self, req: &QueryRequest<'_>) -> Result<Answer> {
        let t0 = Instant::now();
        // One snapshot for the whole query: every name resolution, plan,
        // and scan below sees this version, no matter what writers
        // install concurrently.
        let snap = self.snapshot();
        let result = if let Some(cache) = req.cache {
            self.serve_from_cache(&snap, req, cache)
        } else if req.scenarios.is_empty() {
            self.run_with_view_cache(&snap, req)
        } else if req.scenarios.len() > 1 {
            // A multi-scenario set has no single Answer; it is a batch.
            Err(EngineError::ScenarioBatch {
                count: req.scenarios.len(),
            })
        } else {
            // One scenario: the classic hypothetical path — a patched
            // store copy, evidence folded into the query's predicates.
            let sc = &req.scenarios.items[0];
            let mut store = snap.store.clone();
            for ov in sc.overrides() {
                apply_override(&snap.catalog, &mut store, ov)?;
            }
            if sc.evidence_set().is_empty() {
                self.query_on_store(&snap, req, &store)
            } else {
                let mut req2 = req.clone();
                for (var, value) in sc.evidence_set() {
                    req2.query = req2.query.clone().filter(var.clone(), *value);
                }
                self.query_on_store(&snap, &req2, &store)
            }
        };
        if let Some(m) = &self.metrics {
            m.inc("engine.queries");
            m.observe("engine.query_us", t0.elapsed());
            match &result {
                Ok(a) => {
                    m.inc(&format!("engine.served_by.{}", a.served_by.label()));
                    m.add("engine.fallback_attempts", a.fallback.len() as u64);
                    m.add("engine.rows_out", a.relation.len() as u64);
                    m.add("engine.repr.sparse_ops", a.stats.sparse_joins + a.stats.sparse_group_bys);
                    m.add("engine.repr.dense_ops", a.stats.dense_joins + a.stats.dense_group_bys);
                    m.add("engine.repr.sparse_converts", a.stats.sparse_converts);
                    m.add("engine.repr.dense_converts", a.stats.dense_converts);
                    m.add("engine.kernel.chunked_ops", a.stats.kernel_chunked_ops);
                    m.add("engine.kernel.scalar_ops", a.stats.kernel_scalar_ops);
                    m.add("engine.kernel.fused_join_aggs", a.stats.fused_join_aggs);
                    m.observe("engine.optimize_us", a.optimize_time);
                    m.observe("engine.execute_us", a.execute_time);
                }
                Err(_) => m.inc("engine.errors"),
            }
            if let Some(vc) = &self.view_cache {
                vc.publish(m);
            }
        }
        result
    }

    /// Normal execution behind the transparent view cache: serve from a
    /// resident covering tree when one exists, derive a conditioned tree
    /// from a resident base tree for evidence queries, and otherwise run
    /// the query normally — recording the miss and building the view's
    /// tree once accumulated demand justifies the build.
    ///
    /// Error discipline: an injected fault consumed anywhere in cache
    /// work (serving, deriving, building) surfaces as *this* request's
    /// error, preserving the service's 1:1 fault accounting; a budget
    /// trip while serving falls back to normal execution (mirroring the
    /// strategy-fallback philosophy), and a failed admission build is
    /// skipped silently — the request already has its answer.
    fn run_with_view_cache(&self, snap: &Arc<Snapshot>, req: &QueryRequest<'_>) -> Result<Answer> {
        let Some(plan) = self.cache_plan(snap, req) else {
            return self.query_on_store(snap, req, &snap.store);
        };
        // `cache_plan` returned Some, so the cache is attached and enabled.
        let vc = Arc::clone(self.view_cache.as_ref().expect("cache plan implies cache"));
        if let Some(tree) = vc.lookup(&plan.key) {
            match tree.covering_table(&plan.vars) {
                Ok(idx) => match self.serve_from_tree(req, &tree, idx, &plan.vars) {
                    Ok(a) => return Ok(a),
                    Err(e) if is_fault(&e) || !e.fallback_may_cure() => return Err(e),
                    Err(_) => {} // budget trip: the normal path's fallback chain takes over
                },
                Err(_) => vc.note_uncovered(),
            }
        } else if !plan.key.evidence.is_empty() {
            if let Some(base_tree) = vc.lookup(&plan.key.base()) {
                match base_tree
                    .with_evidence_set(&plan.key.evidence)
                    .map_err(EngineError::from)
                {
                    Ok(derived) => {
                        if let Ok(idx) = derived.covering_table(&plan.vars) {
                            let derived = Arc::new(derived);
                            vc.note_derived();
                            vc.admit(plan.key.clone(), plan.base.clone(), Arc::clone(&derived));
                            match self.serve_from_tree(req, &derived, idx, &plan.vars) {
                                Ok(a) => return Ok(a),
                                Err(e) if is_fault(&e) || !e.fallback_may_cure() => return Err(e),
                                Err(_) => {}
                            }
                        } else {
                            vc.note_uncovered();
                        }
                    }
                    Err(e) if is_fault(&e) => return Err(e),
                    Err(_) => {} // e.g. a budget trip mid-derivation: recompute instead
                }
            }
        }
        // Miss: answer normally, then let demand decide whether to pay
        // for the (unconditioned) tree build.
        let t0 = Instant::now();
        let result = self.query_on_store(snap, req, &snap.store);
        if result.is_ok() {
            let cost_us = t0.elapsed().as_secs_f64() * 1e6;
            let base_key = plan.key.base();
            if vc.record_miss(&base_key, cost_us) {
                match self.build_tree(snap, &plan) {
                    Ok(tree) => {
                        vc.admit(base_key, plan.base, Arc::new(tree));
                    }
                    // The build consumed an injected fault: it must
                    // surface to exactly one request — this one.
                    Err(e) if is_fault(&e) => return Err(e),
                    Err(_) => {} // infeasible build (budget, no division): skip admission
                }
            }
        }
        result
    }

    /// Whether the transparent view cache can participate in a request,
    /// and under what identity. `None` means "run normally": cache
    /// detached/disabled, a `having` range predicate (post-filtered on
    /// the answer, not expressible as evidence), or any name that does
    /// not resolve (the normal path then produces the canonical error).
    fn cache_plan(&self, snap: &Snapshot, req: &QueryRequest<'_>) -> Option<CachePlan> {
        let vc = self.view_cache.as_ref()?;
        if !vc.enabled() {
            return None;
        }
        let q = &req.query;
        if q.having.is_some() {
            return None;
        }
        let view = snap.view_of(&q.view)?;
        let sr = resolve_semiring(view.combine, q.agg)?;
        let vars: Vec<VarId> = q
            .group_vars
            .iter()
            .map(|n| resolve_var(&snap.catalog, n).ok())
            .collect::<Option<_>>()?;
        let mut evidence: Vec<(VarId, Value)> = Vec::with_capacity(q.filters.len());
        for (n, v) in &q.filters {
            evidence.push((resolve_var(&snap.catalog, n).ok()?, *v));
        }
        evidence.sort_unstable();
        Some(CachePlan {
            key: CacheKey {
                version: snap.version,
                view: q.view.clone(),
                semiring: sr,
                evidence,
            },
            vars,
            base: view.base.clone(),
        })
    }

    /// Build the unconditioned elimination tree for a cache plan's view,
    /// under the database's own limits (the entry is shared, so one
    /// request's per-query limits must not shape it).
    fn build_tree(&self, snap: &Snapshot, plan: &CachePlan) -> Result<VeCache> {
        let rels: Vec<&FunctionalRelation> = plan
            .base
            .iter()
            .map(|n| {
                snap.relation_of(n).ok_or_else(|| {
                    EngineError::Algebra(mpf_algebra::AlgebraError::UnknownRelation(n.clone()))
                })
            })
            .collect::<Result<_>>()?;
        let mut cx = ExecContext::with_limits(plan.key.semiring, self.limits.clone())
            .with_dense(self.dense)
            .with_repr(self.repr);
        Ok(VeCache::build_in(&mut cx, &rels, None)?)
    }

    /// Serve a query by marginalizing table `idx` of a cached tree. The
    /// synthesized plan records the cache scan + group-by actually run;
    /// [`Answer::cache`] records the clique that answered.
    fn serve_from_tree(
        &self,
        req: &QueryRequest<'_>,
        tree: &VeCache,
        idx: usize,
        vars: &[VarId],
    ) -> Result<Answer> {
        let q = &req.query;
        let limits = req.limits.clone().unwrap_or_else(|| self.limits.clone());
        let mut cx = ExecContext::with_limits(tree.semiring(), limits)
            .with_dense(self.dense)
            .with_repr(self.repr)
            .with_trace(req.trace);
        let t1 = Instant::now();
        cx.span_phase("viewcache::answer");
        let result = tree.answer_set_in(&mut cx, vars);
        cx.span_close(|| result.as_ref().err().map(|e| e.to_string()));
        let execute_time = t1.elapsed();
        let stats = *cx.stats();
        let trace = (req.trace != TraceLevel::Off).then(|| cx.take_trace());
        let relation = result?;
        let table = &tree.tables()[idx];
        Ok(Answer {
            relation,
            served_by: q.strategy,
            fallback: Vec::new(),
            plan: Plan::group_by(Plan::scan("<view-cache>"), vars.to_vec()),
            physical: PhysicalPlan::GroupBy {
                input: Box::new(PhysicalPlan::Scan {
                    relation: "<view-cache>".into(),
                }),
                group_vars: vars.to_vec(),
                algo: AggAlgo::HashAgg,
            },
            est_cost: f64::NAN,
            stats,
            optimize_time: Duration::ZERO,
            execute_time,
            trace,
            cache: Some(CacheServed {
                clique: table.schema().vars().to_vec(),
                rows: table.len() as u64,
            }),
        })
    }

    /// Serve a cache-eligible request: a plain group-by answered by
    /// marginalizing the smallest covering cached table. The synthesized
    /// plan in the answer records the cache scan + group-by actually run.
    fn serve_from_cache(
        &self,
        snap: &Snapshot,
        req: &QueryRequest<'_>,
        cache: &VeCache,
    ) -> Result<Answer> {
        let q = &req.query;
        if !req.scenarios.is_empty() {
            return Err(EngineError::BadOverride(
                "hypothetical scenarios cannot be served from a VeCache; \
                 use VeCache::with_measure_update or rebuild the cache"
                    .into(),
            ));
        }
        if !q.filters.is_empty() || q.having.is_some() {
            return Err(EngineError::BadOverride(
                "cache-served queries support only plain group-by; \
                 condition the cache with VeCache::with_evidence instead"
                    .into(),
            ));
        }
        // The cache was built under one semiring; serving a query that
        // resolves to another would aggregate with the wrong operations.
        let view = snap
            .view_of(&q.view)
            .ok_or_else(|| EngineError::UnknownView(q.view.clone()))?;
        let sr =
            resolve_semiring(view.combine, q.agg).ok_or(EngineError::IncompatibleAggregate {
                combine: view.combine,
                aggregate: q.agg,
            })?;
        if sr != cache.semiring() {
            return Err(EngineError::CacheSemiringMismatch {
                expected: sr,
                cached: cache.semiring(),
            });
        }
        let vars: Vec<VarId> = q
            .group_vars
            .iter()
            .map(|n| resolve_var(&snap.catalog, n))
            .collect::<Result<_>>()?;
        let limits = req.limits.clone().unwrap_or_else(|| self.limits.clone());
        let mut cx = ExecContext::with_limits(cache.semiring(), limits)
            .with_dense(self.dense)
            .with_repr(self.repr)
            .with_trace(req.trace);
        let t1 = Instant::now();
        cx.span_phase("cache::answer");
        let result = cache.answer_set_in(&mut cx, &vars);
        cx.span_close(|| result.as_ref().err().map(|e| e.to_string()));
        let execute_time = t1.elapsed();
        let stats = *cx.stats();
        let trace = (req.trace != TraceLevel::Off).then(|| cx.take_trace());
        let relation = result?;
        let served = cache.covering_table(&vars).ok().map(|idx| {
            let table = &cache.tables()[idx];
            CacheServed {
                clique: table.schema().vars().to_vec(),
                rows: table.len() as u64,
            }
        });
        Ok(Answer {
            relation,
            served_by: q.strategy,
            fallback: Vec::new(),
            plan: Plan::group_by(Plan::scan("<ve-cache>"), vars.clone()),
            physical: PhysicalPlan::GroupBy {
                input: Box::new(PhysicalPlan::Scan {
                    relation: "<ve-cache>".into(),
                }),
                group_vars: vars,
                algo: AggAlgo::HashAgg,
            },
            est_cost: f64::NAN,
            stats,
            optimize_time: Duration::ZERO,
            execute_time,
            trace,
            cache: served,
        })
    }

    fn query_on_store(
        &self,
        snap: &Snapshot,
        req: &QueryRequest<'_>,
        store: &RelationStore,
    ) -> Result<Answer> {
        let q = &req.query;
        let view = snap
            .view_of(&q.view)
            .ok_or_else(|| EngineError::UnknownView(q.view.clone()))?;
        let sr =
            resolve_semiring(view.combine, q.agg).ok_or(EngineError::IncompatibleAggregate {
                combine: view.combine,
                aggregate: q.agg,
            })?;
        let spec = resolve_spec(snap, q)?;
        let ctx = self.opt_context(snap, view, store, spec)?;
        let limits = req.limits.as_ref().unwrap_or(&self.limits);

        // The requested strategy first, then the fallback chain, with
        // already-tried entries skipped.
        let mut attempts = vec![q.strategy];
        for s in &self.fallback.chain {
            if !attempts.contains(s) {
                attempts.push(*s);
            }
        }

        let mut failed: Vec<(Strategy, EngineError)> = Vec::new();
        // Work done by failed attempts still counts: the accumulator is
        // threaded through every attempt so the answer's stats report the
        // query's *total* cost, not just the winning strategy's.
        let mut total = ExecStats::default();
        let last = attempts.len() - 1;
        for (i, &strategy) in attempts.iter().enumerate() {
            match self.attempt(req, store, &ctx, sr, strategy, limits, &mut total) {
                Ok(mut answer) => {
                    answer.served_by = strategy;
                    answer.fallback = failed;
                    return Ok(answer);
                }
                Err(e) if i < last && e.fallback_may_cure() => failed.push((strategy, e)),
                Err(e) => return Err(e),
            }
        }
        // `attempts` is non-empty, so the loop always returns.
        Err(EngineError::EmptyView(q.view.clone()))
    }

    /// One optimize-and-execute attempt with a single strategy. The work
    /// it does — even when it fails — is merged into `total`.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        req: &QueryRequest<'_>,
        store: &RelationStore,
        ctx: &OptContext<'_>,
        sr: SemiringKind,
        strategy: Strategy,
        limits: &ExecLimits,
        total: &mut ExecStats,
    ) -> Result<Answer> {
        let q = &req.query;
        let t0 = Instant::now();
        let (plan, est_cost) = self.plan_for(&q.view, ctx, strategy)?;
        let physical = choose_physical(
            ctx,
            &plan,
            PhysicalConfig::default()
                .with_threads(limits.effective_threads())
                .with_dense(self.dense)
                .with_repr(self.repr),
        );
        let optimize_time = t0.elapsed();

        let exec = Executor::new(store, sr);
        let mut cx = ExecContext::with_limits(sr, limits.clone())
            .with_dense(self.dense)
            .with_repr(self.repr)
            .with_trace(req.trace);
        let t1 = Instant::now();
        let result = exec.execute_physical_in(&mut cx, &physical);
        let execute_time = t1.elapsed();
        total.merge(cx.stats());
        // Annotate the executed-plan spans with the optimizer's estimated
        // rows, so EXPLAIN ANALYZE prints est-vs-actual per node.
        let trace = (req.trace != TraceLevel::Off).then(|| {
            let mut tree = cx.take_trace();
            if let Some(root) = tree.roots.first_mut() {
                annotate_estimates(ctx, &physical, root);
            }
            tree
        });
        let mut relation = result?;

        // Constrained-range (`having f ⋈ c`) post-filter.
        if let Some((cmp, bound)) = q.having {
            let mut filtered =
                FunctionalRelation::new(relation.name().to_string(), relation.schema().clone());
            for (row, m) in relation.rows() {
                if cmp.matches(m, bound) {
                    filtered.push_row(row, m)?;
                }
            }
            relation = filtered;
        }

        Ok(Answer {
            relation,
            served_by: strategy,
            fallback: Vec::new(),
            plan,
            physical,
            est_cost,
            stats: *total,
            optimize_time,
            execute_time,
            trace,
            cache: None,
        })
    }

    /// Render the plan a strategy would choose, without executing it
    /// (the `EXPLAIN` half of the request API; overrides and per-request
    /// limits are honored, tracing is irrelevant).
    pub fn describe<'a>(&self, req: impl Into<QueryRequest<'a>>) -> Result<String> {
        let req = req.into();
        if req.scenarios.len() > 1 {
            return Err(EngineError::ScenarioBatch {
                count: req.scenarios.len(),
            });
        }
        // A single scenario's evidence folds into the query predicates,
        // exactly as `run` would evaluate it.
        let q_owned;
        let q = match req.scenarios.items.first() {
            Some(sc) if !sc.evidence_set().is_empty() => {
                let mut q = req.query.clone();
                for (var, value) in sc.evidence_set() {
                    q = q.filter(var.clone(), *value);
                }
                q_owned = q;
                &q_owned
            }
            _ => &req.query,
        };
        let limits = req.limits.as_ref().unwrap_or(&self.limits);
        let snap = self.snapshot();
        let view = snap
            .view_of(&q.view)
            .ok_or_else(|| EngineError::UnknownView(q.view.clone()))?;
        let spec = resolve_spec(&snap, q)?;
        // Overrides can change cardinalities (a domain remap merges rows),
        // so the explain plans against the hypothetical store.
        let store_owned;
        let store = match req.scenarios.items.first() {
            None => &snap.store,
            Some(sc) => {
                let mut s = snap.store.clone();
                for ov in sc.overrides() {
                    apply_override(&snap.catalog, &mut s, ov)?;
                }
                store_owned = s;
                &store_owned
            }
        };
        let ctx = self.opt_context(&snap, view, store, spec)?;
        let (plan, est_cost) = self.plan_for(&q.view, &ctx, q.strategy)?;
        let physical = choose_physical(
            &ctx,
            &plan,
            PhysicalConfig::default()
                .with_threads(limits.effective_threads())
                .with_dense(self.dense)
                .with_repr(self.repr),
        );
        let catalog = &snap.catalog;
        // Exact base-relation densities (rows over the schema's domain
        // grid) — the statistic the dense-path selection rule keys on.
        let densities: Vec<String> = view
            .base
            .iter()
            .filter_map(|n| store.relation_of(n).map(|rel| (n, rel)))
            .map(|(n, rel)| {
                let d = mpf_storage::density_of(
                    rel.len() as u64,
                    catalog.domain_product(rel.schema().iter()),
                );
                format!("{n}={d:.2}")
            })
            .collect();
        Ok(format!(
            "-- estimated cost: {est_cost:.2}\n-- base density: {}\n{}",
            densities.join(", "),
            physical.render(&|v| catalog.name(v).to_string())
        ))
    }

    /// Execute a request with span tracing forced on and render the
    /// executed plan with per-operator actuals (rows, cells, wall time,
    /// partition/worker counts) next to the optimizer's estimated rows —
    /// the paper's strategies differ exactly in these per-operator sizes,
    /// so this is where cost-model drift becomes visible.
    pub fn explain_analyze<'a>(&self, req: impl Into<QueryRequest<'a>>) -> Result<String> {
        let mut req = req.into();
        req.trace = TraceLevel::Spans;
        let answer = self.run_request(&req)?;
        let mut out = String::new();
        if answer.served_by == req.query.strategy {
            out.push_str(&format!("-- strategy: {}\n", answer.served_by.label()));
        } else {
            out.push_str(&format!(
                "-- strategy: {} (requested {})\n",
                answer.served_by.label(),
                req.query.strategy.label()
            ));
        }
        for (s, e) in &answer.fallback {
            out.push_str(&format!("-- failed attempt: {} ({e})\n", s.label()));
        }
        if let Some(cs) = &answer.cache {
            let snap = self.snapshot();
            let clique: Vec<&str> = cs.clique.iter().map(|&v| snap.catalog.name(v)).collect();
            out.push_str(&format!(
                "-- served from cache: clique {{{}}} ({} rows)\n",
                clique.join(", "),
                cs.rows
            ));
        }
        out.push_str(&format!("-- estimated cost: {:.2}\n", answer.est_cost));
        let limits = req.limits.as_ref().unwrap_or(&self.limits);
        out.push_str(&format!("-- workers: {}\n", limits.effective_threads()));
        let st = &answer.stats;
        out.push_str(&format!(
            "-- rows scanned={}, processed={}, peak intermediate={}, page io={}\n",
            st.rows_scanned, st.rows_processed, st.max_intermediate_rows, st.pages_io
        ));
        out.push_str(&format!(
            "-- optimize: {:.1?}, execute: {:.1?}\n",
            answer.optimize_time, answer.execute_time
        ));
        match &answer.trace {
            Some(tree) if !tree.is_empty() => out.push_str(&tree.render()),
            _ => {
                // Nothing traced (shouldn't happen with Spans forced on);
                // fall back to the physical plan without actuals.
                let snap = self.snapshot();
                out.push_str(
                    &answer
                        .physical
                        .render(&|v| snap.catalog.name(v).to_string()),
                );
            }
        }
        Ok(out)
    }

    /// Build the optimizer's context over any relation provider — the
    /// base store, a hypothetical copy, or a scenario [`Overlay`]
    /// ([`mpf_algebra::Overlay`]). [`BaseRel::of`] captures only
    /// measure-independent statistics (schema, cardinality), so
    /// measure-only hypotheticals yield the exact baseline context.
    pub(crate) fn opt_context<'a>(
        &self,
        snap: &'a Snapshot,
        view: &MpfView,
        provider: &impl RelationProvider,
        spec: QuerySpec,
    ) -> Result<OptContext<'a>> {
        let base: Vec<BaseRel> = view
            .base
            .iter()
            .map(|n| {
                provider
                    .relation_of(n)
                    .map(|rel| {
                        let mut b = BaseRel::of(rel);
                        b.fd_lhs = snap.fds.get(n).cloned();
                        b
                    })
                    .ok_or_else(|| {
                        EngineError::Algebra(mpf_algebra::AlgebraError::UnknownRelation(n.clone()))
                    })
            })
            .collect::<Result<_>>()?;
        // Every query variable must occur in some base relation; the
        // optimizer's linearity test and plan search assume it.
        for &v in spec
            .group_vars
            .iter()
            .chain(spec.predicates.iter().map(|(v, _)| v))
        {
            if !base.iter().any(|b| b.schema.contains(v)) {
                return Err(EngineError::UnknownVariable(format!(
                    "{} (not in any base relation of view `{}`)",
                    snap.catalog.name(v),
                    view.name
                )));
            }
        }
        Ok(OptContext::new(&snap.catalog, base, spec, self.cost_model))
    }

    pub(crate) fn plan_for(
        &self,
        view_name: &str,
        ctx: &OptContext<'_>,
        strategy: Strategy,
    ) -> Result<(Plan, f64)> {
        let algorithm = match strategy {
            Strategy::Naive => {
                // Join in definition order, selections pushed to scans,
                // single root group-by (Figure 3 shape). No plan search,
                // so this works on views `optimize` would reject.
                fault::check("optimize::naive")?;
                let mut iter = 0..ctx.rels.len();
                let Some(first) = iter.next() else {
                    return Err(EngineError::EmptyView(view_name.to_string()));
                };
                let mut plan = leaf_plan(ctx, first);
                for i in iter {
                    plan = Plan::join(plan, leaf_plan(ctx, i));
                }
                return Ok((
                    Plan::group_by(plan, ctx.query.group_vars.clone()),
                    f64::NAN,
                ));
            }
            Strategy::Cs => Algorithm::Cs,
            Strategy::CsPlusLinear => Algorithm::CsPlusLinear,
            Strategy::CsPlusNonlinear => Algorithm::CsPlusNonlinear,
            Strategy::Ve(h) => Algorithm::Ve(h),
            Strategy::VePlus(h) => Algorithm::VePlus(h),
            Strategy::Auto => {
                // Section 5.1: if Eq. 1 admits linear plans for every query
                // variable, linear CS+ suffices; otherwise search bushy.
                let linear_ok = ctx
                    .query
                    .group_vars
                    .iter()
                    .all(|&v| linearity_test(ctx, v).linear_admissible);
                if linear_ok {
                    Algorithm::CsPlusLinear
                } else {
                    Algorithm::CsPlusNonlinear
                }
            }
        };
        // `optimize` panics on these inputs; turn both into typed errors
        // (the second is curable by falling back to `Strategy::Naive`).
        if ctx.rels.is_empty() {
            return Err(EngineError::EmptyView(view_name.to_string()));
        }
        if ctx.rels.len() > MAX_DP_RELATIONS {
            return Err(EngineError::TooManyRelations {
                count: ctx.rels.len(),
                limit: MAX_DP_RELATIONS,
            });
        }
        fault::check(&format!("optimize::{}", algorithm.label()))?;
        let opt = optimize(ctx, algorithm);
        Ok((opt.plan, opt.est_cost))
    }

    /// Parse and run one SQL statement (view creation or query). Takes
    /// `&self`: a view creation installs a new snapshot atomically, a
    /// query runs against the snapshot current at call time — neither
    /// blocks concurrent queries.
    pub fn run_sql(&self, sql: &str) -> Result<SqlOutcome> {
        match parse(sql)? {
            Statement::CreateView {
                name,
                tables,
                combine,
                vars,
            } => {
                self.mutate_with(CacheEvent::Touched(Vec::new()), |snap| {
                    for v in &vars {
                        resolve_var(&snap.catalog, v)?;
                    }
                    let refs: Vec<&str> = tables.iter().map(String::as_str).collect();
                    create_view_in(snap, &name, &refs, combine)
                })?;
                Ok(SqlOutcome::ViewCreated(name))
            }
            Statement::Select(q) => Ok(SqlOutcome::Answer(Box::new(self.run(&q)?))),
        }
    }

    /// Materialize a [`VeCache`] for a view's workload (Section 6). `agg`
    /// picks the semiring together with the view's combine operation.
    pub fn build_cache(
        &self,
        view_name: &str,
        agg: Aggregate,
        order: Option<&[VarId]>,
    ) -> Result<VeCache> {
        let snap = self.snapshot();
        let view = snap
            .view_of(view_name)
            .ok_or_else(|| EngineError::UnknownView(view_name.to_string()))?;
        let sr =
            resolve_semiring(view.combine, agg).ok_or(EngineError::IncompatibleAggregate {
                combine: view.combine,
                aggregate: agg,
            })?;
        let rels: Vec<&FunctionalRelation> = view
            .base
            .iter()
            .map(|n| {
                snap.relation_of(n).ok_or_else(|| {
                    EngineError::Algebra(mpf_algebra::AlgebraError::UnknownRelation(n.clone()))
                })
            })
            .collect::<Result<_>>()?;
        let mut cx = ExecContext::with_limits(sr, self.limits.clone())
            .with_dense(self.dense)
            .with_repr(self.repr);
        Ok(VeCache::build_in(&mut cx, &rels, order)?)
    }

    /// Run the Section 5.1 plan-linearity test for a query variable of a
    /// view.
    pub fn linearity(&self, view_name: &str, var: &str) -> Result<LinearityTest> {
        let snap = self.snapshot();
        let view = snap
            .view_of(view_name)
            .ok_or_else(|| EngineError::UnknownView(view_name.to_string()))?;
        let ctx = self.opt_context(&snap, view, &snap.store, QuerySpec::default())?;
        Ok(linearity_test(&ctx, resolve_var(&snap.catalog, var)?))
    }

    /// The semiring a `(view, aggregate)` pair evaluates in.
    pub fn semiring_for(&self, view_name: &str, agg: Aggregate) -> Result<SemiringKind> {
        let snap = self.snapshot();
        let view = snap
            .view_of(view_name)
            .ok_or_else(|| EngineError::UnknownView(view_name.to_string()))?;
        resolve_semiring(view.combine, agg).ok_or(EngineError::IncompatibleAggregate {
            combine: view.combine,
            aggregate: agg,
        })
    }
}

/// The identity under which the transparent view cache participates in a
/// request: the entry key plus the resolved query variables and the
/// view's base relations (needed for admission bookkeeping and builds).
struct CachePlan {
    key: CacheKey,
    vars: Vec<VarId>,
    base: Vec<String>,
}

/// Whether an error is an injected fault (which must propagate to exactly
/// one request so the chaos suite's fault accounting stays 1:1), at
/// either of the layers cache work can consume one.
fn is_fault(e: &EngineError) -> bool {
    matches!(
        e,
        EngineError::Algebra(mpf_algebra::AlgebraError::FaultInjected(_))
            | EngineError::Infer(mpf_infer::InferError::Algebra(
                mpf_algebra::AlgebraError::FaultInjected(_)
            ))
    )
}

/// Resolve a variable name against a catalog.
fn resolve_var(catalog: &Catalog, name: &str) -> Result<VarId> {
    catalog
        .var(name)
        .map_err(|_| EngineError::UnknownVariable(name.to_string()))
}

/// Resolve a query's group-by/filter names into a [`QuerySpec`].
pub(crate) fn resolve_spec(snap: &Snapshot, q: &Query) -> Result<QuerySpec> {
    let mut spec = QuerySpec::group_by(
        q.group_vars
            .iter()
            .map(|n| resolve_var(&snap.catalog, n))
            .collect::<Result<Vec<_>>>()?,
    );
    for (n, v) in &q.filters {
        spec = spec.filter(resolve_var(&snap.catalog, n)?, *v);
    }
    Ok(spec)
}

/// Snapshot-level view creation, shared by [`Database::create_view`] and
/// the SQL path (which must not nest [`Database::mutate`] calls).
fn create_view_in(snap: &mut Snapshot, name: &str, base: &[&str], combine: Combine) -> Result<()> {
    if snap.views.contains_key(name) {
        return Err(EngineError::DuplicateView(name.to_string()));
    }
    if base.is_empty() {
        return Err(EngineError::EmptyView(name.to_string()));
    }
    for b in base {
        if !snap.store.contains(b) {
            return Err(EngineError::Storage(
                mpf_storage::StorageError::UnknownRelation(b.to_string()),
            ));
        }
    }
    snap.views.insert(
        name.to_string(),
        MpfView {
            name: name.to_string(),
            base: base.iter().map(|s| s.to_string()).collect(),
            combine,
        },
    );
    Ok(())
}

/// Apply one hypothetical override to a (cloned) store — a thin wrapper
/// over the unified [`crate::delta`] patching path, which the scenario
/// engine and real point updates share.
fn apply_override(catalog: &Catalog, store: &mut RelationStore, ov: &Override) -> Result<()> {
    let name = ov.relation();
    let patched = {
        let rel = store
            .relation_of(name)
            .ok_or_else(|| EngineError::BadOverride(format!("no relation `{name}`")))?;
        crate::delta::apply(catalog, rel, ov)?
    };
    store.insert(patched);
    Ok(())
}

fn leaf_plan(ctx: &OptContext<'_>, rel_idx: usize) -> Plan {
    let rel = &ctx.rels[rel_idx];
    let preds = ctx.applicable_predicates(&rel.schema);
    Plan::select(Plan::scan(rel.name.clone()), preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_semiring::approx_eq;
    use mpf_storage::Schema;

    /// A tiny two-relation database: r1(a, b), r2(b, c).
    fn tiny_db() -> Database {
        let db = Database::new();
        let a = db.add_var("a", 2).unwrap();
        let b = db.add_var("b", 2).unwrap();
        let c = db.add_var("c", 2).unwrap();
        db.insert_relation(
            FunctionalRelation::from_rows(
                "r1",
                Schema::new(vec![a, b]).unwrap(),
                [
                    (vec![0, 0], 1.0),
                    (vec![0, 1], 2.0),
                    (vec![1, 0], 3.0),
                    (vec![1, 1], 4.0),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert_relation(
            FunctionalRelation::from_rows(
                "r2",
                Schema::new(vec![b, c]).unwrap(),
                [
                    (vec![0, 0], 10.0),
                    (vec![0, 1], 20.0),
                    (vec![1, 0], 30.0),
                    (vec![1, 1], 40.0),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_view("v", &["r1", "r2"], Combine::Product).unwrap();
        db
    }

    #[test]
    fn query_all_strategies_agree() {
        let db = tiny_db();
        let strategies = [
            Strategy::Naive,
            Strategy::Cs,
            Strategy::CsPlusLinear,
            Strategy::CsPlusNonlinear,
            Strategy::Ve(mpf_optimizer::Heuristic::Degree),
            Strategy::VePlus(mpf_optimizer::Heuristic::Width),
            Strategy::Auto,
        ];
        let reference = db
            .run(Query::on("v").group_by(["c"]).strategy(Strategy::Naive))
            .unwrap();
        for s in strategies {
            let ans = db
                .run(Query::on("v").group_by(["c"]).strategy(s))
                .unwrap();
            assert!(
                reference.relation.function_eq(&ans.relation),
                "strategy {s:?} diverged"
            );
        }
        assert!(approx_eq(reference.relation.lookup(&[0]).unwrap(), 220.0));
        assert!(approx_eq(reference.relation.lookup(&[1]).unwrap(), 320.0));
    }

    #[test]
    fn sql_round_trip() {
        let db = tiny_db();
        let out = db
            .run_sql("select c, sum(f) from v where a = 0 group by c using ve(degree)")
            .unwrap();
        match out {
            SqlOutcome::Answer(ans) => {
                // a=0: c=0 -> 1*10+2*30=70; c=1 -> 1*20+2*40=100.
                assert!(approx_eq(ans.relation.lookup(&[0]).unwrap(), 70.0));
                assert!(approx_eq(ans.relation.lookup(&[1]).unwrap(), 100.0));
            }
            _ => panic!("expected answer"),
        }
    }

    #[test]
    fn sql_view_creation() {
        let db = tiny_db();
        let out = db
            .run_sql("create mpfview w as select a, c, measure = (* r1.f, r2.f) from r1, r2")
            .unwrap();
        assert!(matches!(out, SqlOutcome::ViewCreated(n) if n == "w"));
        let ans = db.run(Query::on("w").group_by(["a"])).unwrap();
        assert_eq!(ans.relation.len(), 2);
    }

    #[test]
    fn min_aggregate_resolves_min_product() {
        let db = tiny_db();
        assert_eq!(
            db.semiring_for("v", Aggregate::Min).unwrap(),
            SemiringKind::MinProduct
        );
        let ans = db
            .run(Query::on("v").group_by(["a"]).aggregate(Aggregate::Min))
            .unwrap();
        // min over b,c of r1(a,b)*r2(b,c): a=0 -> min(10,20,60,80)=10.
        assert!(approx_eq(ans.relation.lookup(&[0]).unwrap(), 10.0));
    }

    #[test]
    fn incompatible_aggregate_is_rejected() {
        let db = tiny_db();
        db.create_view("s", &["r1", "r2"], Combine::Sum).unwrap();
        let e = db
            .run(Query::on("s").group_by(["a"]).aggregate(Aggregate::Sum))
            .unwrap_err();
        assert!(matches!(e, EngineError::IncompatibleAggregate { .. }));
        // But MIN over SUM-combine is the min-sum semiring.
        let ans = db
            .run(Query::on("s").group_by(["a"]).aggregate(Aggregate::Min))
            .unwrap();
        // min over b,c of r1(a,b)+r2(b,c): a=0 -> min(11,21,32,42)=11.
        assert!(approx_eq(ans.relation.lookup(&[0]).unwrap(), 11.0));
    }

    #[test]
    fn having_filters_results() {
        let db = tiny_db();
        let ans = db
            .run(
                Query::on("v")
                    .group_by(["c"])
                    .having(crate::RangePredicate::Greater, 250.0),
            )
            .unwrap();
        assert_eq!(ans.relation.len(), 1);
        assert!(approx_eq(ans.relation.lookup(&[1]).unwrap(), 320.0));
    }

    #[test]
    fn hypothetical_measure_override() {
        let db = tiny_db();
        let q = Query::on("v").group_by(["c"]);
        let base = db.run(&q).unwrap();
        let hyp = db
            .run(QueryRequest::from(&q).scenario(
                crate::Scenario::named("shock").measure("r1", vec![0, 0], 100.0),
            ))
            .unwrap();
        // c=0 changes from 220 to (100+3)*10 + (2+4)*30 = 1030+... recompute:
        // c=0: b=0 (r1: a0=100, a1=3)*10 = 1030; b=1: (2+4)*30 = 180 -> 1210.
        assert!(approx_eq(hyp.relation.lookup(&[0]).unwrap(), 1210.0));
        // Original database untouched.
        assert!(base
            .relation
            .function_eq(&db.run(&q).unwrap().relation));
    }

    #[test]
    fn hypothetical_domain_override() {
        let db = tiny_db();
        // Remap r2's b=1 rows to b=0 (first occurrence wins on collision).
        let hyp = db
            .run(
                QueryRequest::on("v")
                    .group_by(["c"])
                    .scenario(crate::Scenario::named("remap").move_domain("r2", "b", 1, 0)),
            )
            .unwrap();
        // r2 now has only b=0 rows (10, 20 kept); r1's b=1 rows join them.
        // c=0: (1+3)*10 ... wait all four r1 rows join b=0: but r1 b=1 rows
        // need r2 b=1 rows -> none. So c=0: (1+3)*10 = 40, c=1: (1+3)*20 = 80.
        assert!(approx_eq(hyp.relation.lookup(&[0]).unwrap(), 40.0));
        assert!(approx_eq(hyp.relation.lookup(&[1]).unwrap(), 80.0));
    }

    #[test]
    fn cache_answers_match_queries() {
        let db = tiny_db();
        let cache = db.build_cache("v", Aggregate::Sum, None).unwrap();
        let cached = db
            .run(QueryRequest::on("v").group_by(["c"]).via_cache(&cache))
            .unwrap();
        let direct = db.run(Query::on("v").group_by(["c"])).unwrap();
        assert!(direct.relation.function_eq(&cached.relation));
        // The cache path synthesizes the plan it actually ran.
        assert!(matches!(cached.physical, PhysicalPlan::GroupBy { .. }));
    }

    #[test]
    fn cache_rejects_filters_and_overrides() {
        let db = tiny_db();
        let cache = db.build_cache("v", Aggregate::Sum, None).unwrap();
        let e = db
            .run(QueryRequest::on("v")
                .group_by(["c"])
                .filter("a", 0)
                .via_cache(&cache))
            .unwrap_err();
        assert!(matches!(e, EngineError::BadOverride(_)));
        let e = db
            .run(QueryRequest::on("v")
                .group_by(["c"])
                .via_cache(&cache)
                .scenario(crate::Scenario::named("shock").measure("r1", vec![0, 0], 9.0)))
            .unwrap_err();
        assert!(matches!(e, EngineError::BadOverride(_)));
    }

    #[test]
    fn run_traces_when_asked() {
        let db = tiny_db();
        let q = Query::on("v").group_by(["c"]);
        let plain = db.run(&q).unwrap();
        assert!(plain.trace.is_none());
        let traced = db
            .run(QueryRequest::from(&q).trace(TraceLevel::Spans))
            .unwrap();
        let tree = traced.trace.expect("trace requested");
        assert!(!tree.is_empty());
        // The root span mirrors the executed plan's root operator and
        // carries both an actual row count and an optimizer estimate.
        let root = &tree.roots[0];
        assert_eq!(root.rows_out, traced.relation.len() as u64);
        assert!(root.est_rows.is_some());
        assert_eq!(tree.span_count(), plan_nodes(&traced.physical));
    }

    fn plan_nodes(p: &PhysicalPlan) -> usize {
        match p {
            PhysicalPlan::Scan { .. } => 1,
            PhysicalPlan::Select { input, .. } | PhysicalPlan::GroupBy { input, .. } => {
                1 + plan_nodes(input)
            }
            PhysicalPlan::Join { left, right, .. }
            | PhysicalPlan::JoinAgg { left, right, .. } => {
                1 + plan_nodes(left) + plan_nodes(right)
            }
        }
    }

    #[test]
    fn explain_analyze_reports_actuals() {
        let db = tiny_db();
        let text = db
            .explain_analyze(QueryRequest::on("v").group_by(["c"]).strategy(Strategy::Cs))
            .unwrap();
        assert!(text.contains("-- strategy: cs"));
        assert!(text.contains("est rows="));
        assert!(text.contains("rows="));
        assert!(text.contains("Scan r1"));
        assert!(text.contains("time="));
    }

    #[test]
    fn metrics_registry_is_fed() {
        let metrics = Arc::new(MetricsRegistry::new());
        let db = tiny_db().with_metrics(Arc::clone(&metrics));
        db.run(Query::on("v").group_by(["c"])).unwrap();
        db.run(Query::on("nope").group_by(["c"])).unwrap_err();
        assert_eq!(metrics.counter("engine.queries"), 2);
        assert_eq!(metrics.counter("engine.errors"), 1);
        let json = metrics.to_json();
        assert!(json.contains("engine.query_us"));
    }

    #[test]
    fn errors_are_informative() {
        let db = tiny_db();
        assert!(matches!(
            db.run(Query::on("nope").group_by(["a"])),
            Err(EngineError::UnknownView(_))
        ));
        assert!(matches!(
            db.run(Query::on("v").group_by(["zz"])),
            Err(EngineError::UnknownVariable(_))
        ));
        let db2 = tiny_db();
        assert!(matches!(
            db2.run_sql("create mpfview v as select a, measure = (* r1.f) from r1"),
            Err(EngineError::DuplicateView(_))
        ));
    }

    #[test]
    fn declared_fds_validate_and_feed_prop1() {
        let db = Database::new();
        let a = db.add_var("a", 4).unwrap();
        let y = db.add_var("y", 4).unwrap();
        // y = f(a): the FD a -> f holds with y outside the key.
        db.insert_relation(
            FunctionalRelation::from_rows(
                "r",
                Schema::new(vec![a, y]).unwrap(),
                (0..4u32).map(|x| (vec![x, x % 2], (x + 1) as f64)),
            )
            .unwrap(),
        )
        .unwrap();
        db.create_view("w", &["r"], Combine::Product).unwrap();
        // A valid declaration is accepted; an invalid one is rejected.
        db.declare_fd("r", &["a"]).unwrap();
        assert!(db.declare_fd("r", &["y"]).is_err());
        assert!(db.declare_fd("missing", &["a"]).is_err());
        // Queries still answer correctly with the declaration in place
        // (Proposition 1 prunes y from VE+'s elimination candidates).
        let naive = db
            .run(Query::on("w").group_by(["a"]).strategy(Strategy::Naive))
            .unwrap();
        let vep = db
            .run(
                Query::on("w")
                    .group_by(["a"])
                    .strategy(Strategy::VePlus(mpf_optimizer::Heuristic::Degree)),
            )
            .unwrap();
        assert!(naive.relation.function_eq(&vep.relation));
    }

    #[test]
    fn sparse_repr_agrees_and_is_counted() {
        let reference = tiny_db()
            .with_dense(DenseMode::Off)
            .with_repr(ReprMode::Off)
            .run(Query::on("v").group_by(["c"]))
            .unwrap();
        let metrics = Arc::new(MetricsRegistry::new());
        let db = tiny_db()
            .with_dense(DenseMode::Off)
            .with_repr(ReprMode::Sparse)
            .with_metrics(Arc::clone(&metrics));
        let ans = db.run(Query::on("v").group_by(["c"])).unwrap();
        assert!(reference.relation.function_eq(&ans.relation));
        assert!(
            ans.physical.sparse_operator_count() > 0,
            "forced repr annotates sparse operators"
        );
        assert!(ans.stats.sparse_joins + ans.stats.sparse_group_bys > 0);
        assert!(metrics.counter("engine.repr.sparse_ops") > 0);
    }

    #[test]
    fn fused_dense_kernels_agree_and_are_counted() {
        let reference = tiny_db()
            .with_dense(DenseMode::Off)
            .with_repr(ReprMode::Off)
            .run(Query::on("v").group_by(["c"]))
            .unwrap();
        let metrics = Arc::new(MetricsRegistry::new());
        let db = tiny_db()
            .with_dense(DenseMode::On)
            .with_repr(ReprMode::Off)
            .with_metrics(Arc::clone(&metrics));
        let ans = db.run(Query::on("v").group_by(["c"])).unwrap();
        assert!(reference.relation.function_eq(&ans.relation));
        assert!(
            ans.stats.fused_join_aggs > 0,
            "dense join feeding dense agg runs the fused operator"
        );
        assert!(
            ans.stats.kernel_chunked_ops > 0,
            "chunked is the default kernel mode"
        );
        assert_eq!(ans.stats.kernel_scalar_ops, 0);
        assert!(metrics.counter("engine.kernel.fused_join_aggs") > 0);
        assert!(metrics.counter("engine.kernel.chunked_ops") > 0);
        assert_eq!(metrics.counter("engine.kernel.scalar_ops"), 0);
    }

    #[test]
    fn explain_analyze_shows_repr() {
        let db = tiny_db().with_dense(DenseMode::Off).with_repr(ReprMode::Sparse);
        let text = db
            .explain_analyze(QueryRequest::on("v").group_by(["c"]).strategy(Strategy::Cs))
            .unwrap();
        assert!(
            text.contains("repr=sparse"),
            "EXPLAIN ANALYZE reports the representation each operator ran on:\n{text}"
        );
    }

    #[test]
    fn explain_renders_plan() {
        let db = tiny_db();
        // tiny_db's relations are complete grids, so the dense operators
        // apply and the planner fuses the final join into the group-by.
        let text = db
            .describe(Query::on("v").group_by(["c"]).strategy(Strategy::CsPlusLinear))
            .unwrap();
        assert!(
            text.contains("JoinAgg [c] (Fused)"),
            "fused elimination step renders:\n{text}"
        );
        assert!(text.contains("Scan r1"));
        assert!(text.contains("estimated cost"));
        // With the dense kernels off the unfused pair renders as before.
        let unfused = tiny_db()
            .with_dense(DenseMode::Off)
            .with_repr(ReprMode::Off)
            .describe(Query::on("v").group_by(["c"]).strategy(Strategy::CsPlusLinear))
            .unwrap();
        assert!(unfused.contains("GroupBy [c]"), "{unfused}");
    }
}
