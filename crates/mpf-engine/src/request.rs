//! The consolidated query-submission API.
//!
//! [`QueryRequest`] bundles everything a query run can carry — the
//! [`Query`] itself, hypothetical [`Override`]s, per-request resource
//! limits, a [`TraceLevel`], and an optional [`VeCache`] to serve from —
//! behind one builder, so [`Database::run`](crate::Database::run) replaces
//! the old `query` / `query_hypothetical` / `query_cached` / `explain`
//! method family. A plain [`Query`] converts into a request with
//! database-default limits, no overrides, and tracing off, so
//! `db.run(&q)` stays as short as the old `db.query(&q)`.

use mpf_algebra::{ExecLimits, TraceLevel};
use mpf_infer::VeCache;
use mpf_semiring::Aggregate;
use mpf_storage::Value;

use crate::{Override, Query, RangePredicate, Strategy};

/// A fully-specified query submission: the query plus the run options the
/// old `Database` method family passed as separate arguments.
///
/// ```
/// use mpf_engine::{Query, QueryRequest, TraceLevel};
///
/// let req = QueryRequest::on("invest")
///     .group_by(["cid"])
///     .filter("tid", 1)
///     .trace(TraceLevel::Spans);
/// assert_eq!(req.query().view, "invest");
/// ```
#[derive(Debug, Clone)]
pub struct QueryRequest<'a> {
    pub(crate) query: Query,
    pub(crate) overrides: Vec<Override>,
    pub(crate) limits: Option<ExecLimits>,
    pub(crate) trace: TraceLevel,
    pub(crate) cache: Option<&'a VeCache>,
}

impl<'a> QueryRequest<'a> {
    /// Start a request on a view (same defaults as [`Query::on`]).
    pub fn on(view: impl Into<String>) -> QueryRequest<'a> {
        QueryRequest::from(Query::on(view))
    }

    /// The wrapped query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Set the group-by variables (see [`Query::group_by`]).
    pub fn group_by<S: Into<String>>(mut self, vars: impl IntoIterator<Item = S>) -> Self {
        self.query = self.query.group_by(vars);
        self
    }

    /// Set the aggregate (see [`Query::aggregate`]).
    pub fn aggregate(mut self, agg: Aggregate) -> Self {
        self.query = self.query.aggregate(agg);
        self
    }

    /// Add an equality predicate (see [`Query::filter`]).
    pub fn filter(mut self, var: impl Into<String>, value: Value) -> Self {
        self.query = self.query.filter(var, value);
        self
    }

    /// Add a constrained-range predicate (see [`Query::having`]).
    pub fn having(mut self, cmp: RangePredicate, bound: f64) -> Self {
        self.query = self.query.having(cmp, bound);
        self
    }

    /// Set the evaluation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.query = self.query.strategy(strategy);
        self
    }

    /// Apply hypothetical overrides to copies of the affected base
    /// relations before evaluation (the Section 3.1 alternate-measure /
    /// alternate-domain what-if forms). Appends to earlier calls.
    pub fn overrides(mut self, overrides: impl IntoIterator<Item = Override>) -> Self {
        self.overrides.extend(overrides);
        self
    }

    /// Apply one hypothetical override (see [`Self::overrides`]).
    pub fn hypothetical(mut self, ov: Override) -> Self {
        self.overrides.push(ov);
        self
    }

    /// Run under these resource budgets instead of the database's
    /// defaults.
    pub fn limits(mut self, limits: ExecLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Record per-operator execution traces at this level; the tree is
    /// returned on [`Answer::trace`](crate::Answer::trace).
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Serve the answer from a materialized [`VeCache`] instead of
    /// planning and executing against the base relations. Only plain
    /// group-by queries qualify (no filters, `having`, or overrides —
    /// condition the cache with [`VeCache::with_evidence`] instead).
    /// The cache must have been built under the semiring the query's
    /// view/aggregate pair resolves to; a mismatch is rejected with
    /// [`crate::EngineError::CacheSemiringMismatch`] rather than
    /// silently aggregating with the wrong operations.
    pub fn via_cache(mut self, cache: &'a VeCache) -> Self {
        self.cache = Some(cache);
        self
    }
}

impl<'a> From<Query> for QueryRequest<'a> {
    fn from(query: Query) -> QueryRequest<'a> {
        QueryRequest {
            query,
            overrides: Vec::new(),
            limits: None,
            trace: TraceLevel::Off,
            cache: None,
        }
    }
}

impl<'a> From<&Query> for QueryRequest<'a> {
    fn from(query: &Query) -> QueryRequest<'a> {
        QueryRequest::from(query.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_accumulates() {
        let req = QueryRequest::on("v")
            .group_by(["a"])
            .filter("b", 1)
            .strategy(Strategy::Naive)
            .trace(TraceLevel::Spans)
            .limits(ExecLimits::none().with_max_output_rows(10))
            .hypothetical(Override::Measure {
                relation: "r".into(),
                row: vec![0],
                measure: 2.0,
            });
        assert_eq!(req.query().view, "v");
        assert_eq!(req.query().strategy, Strategy::Naive);
        assert_eq!(req.trace, TraceLevel::Spans);
        assert_eq!(req.overrides.len(), 1);
        assert!(req.limits.is_some());
        assert!(req.cache.is_none());
    }

    #[test]
    fn query_converts_with_defaults() {
        let q = Query::on("v").group_by(["a"]);
        let req: QueryRequest<'_> = (&q).into();
        assert_eq!(req.query(), &q);
        assert_eq!(req.trace, TraceLevel::Off);
        assert!(req.overrides.is_empty() && req.limits.is_none());
    }
}
