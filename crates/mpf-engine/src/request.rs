//! The consolidated query-submission API.
//!
//! [`QueryRequest`] bundles everything a query run can carry — the
//! [`Query`] itself, hypothetical [`Scenario`]s, per-request resource
//! limits, a [`TraceLevel`], and an optional [`VeCache`] to serve from —
//! behind one builder, so [`Database::run`](crate::Database::run) replaces
//! the old `query` / `query_hypothetical` / `query_cached` / `explain`
//! method family. A plain [`Query`] converts into a request with
//! database-default limits, no scenarios, and tracing off, so
//! `db.run(&q)` stays as short as the old `db.query(&q)`.
//!
//! The what-if unit is the named [`Scenario`] (any number of
//! [`Override`]s plus optional evidence). A request carrying **one**
//! scenario still flows through [`Database::run`](crate::Database::run);
//! a request carrying a whole [`ScenarioSet`] goes to
//! [`Database::run_scenarios`](crate::Database::run_scenarios), which
//! evaluates the set as one batch with shared-subplan fan-out. The old
//! bare-`Override` builders ([`QueryRequest::hypothetical`],
//! [`QueryRequest::overrides`]) remain as deprecated shims that
//! accumulate into a single ad-hoc scenario.

use mpf_algebra::{ExecLimits, TraceLevel};
use mpf_infer::VeCache;
use mpf_semiring::Aggregate;
use mpf_storage::Value;

use crate::{Override, Query, RangePredicate, Scenario, ScenarioSet, Strategy};

/// The name under which the deprecated bare-`Override` builders
/// accumulate their implicit scenario.
pub(crate) const ADHOC_SCENARIO: &str = "hypothetical";

/// A fully-specified query submission: the query plus the run options the
/// old `Database` method family passed as separate arguments.
///
/// ```
/// use mpf_engine::{Query, QueryRequest, Scenario, TraceLevel};
///
/// let req = QueryRequest::on("invest")
///     .group_by(["cid"])
///     .filter("tid", 1)
///     .scenario(Scenario::named("shock").measure("contracts", vec![0, 1], 9.0))
///     .trace(TraceLevel::Spans);
/// assert_eq!(req.query().view, "invest");
/// assert_eq!(req.scenarios().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QueryRequest<'a> {
    pub(crate) query: Query,
    pub(crate) scenarios: ScenarioSet,
    pub(crate) limits: Option<ExecLimits>,
    pub(crate) trace: TraceLevel,
    pub(crate) cache: Option<&'a VeCache>,
}

impl<'a> QueryRequest<'a> {
    /// Start a request on a view (same defaults as [`Query::on`]).
    pub fn on(view: impl Into<String>) -> QueryRequest<'a> {
        QueryRequest::from(Query::on(view))
    }

    /// The wrapped query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The scenarios attached to this request.
    pub fn scenarios(&self) -> &ScenarioSet {
        &self.scenarios
    }

    /// Set the group-by variables (see [`Query::group_by`]).
    pub fn group_by<S: Into<String>>(mut self, vars: impl IntoIterator<Item = S>) -> Self {
        self.query = self.query.group_by(vars);
        self
    }

    /// Set the aggregate (see [`Query::aggregate`]).
    pub fn aggregate(mut self, agg: Aggregate) -> Self {
        self.query = self.query.aggregate(agg);
        self
    }

    /// Add an equality predicate (see [`Query::filter`]).
    pub fn filter(mut self, var: impl Into<String>, value: Value) -> Self {
        self.query = self.query.filter(var, value);
        self
    }

    /// Add a constrained-range predicate (see [`Query::having`]).
    pub fn having(mut self, cmp: RangePredicate, bound: f64) -> Self {
        self.query = self.query.having(cmp, bound);
        self
    }

    /// Set the evaluation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.query = self.query.strategy(strategy);
        self
    }

    /// Attach one named what-if [`Scenario`] (appends to earlier calls).
    /// A request with exactly one scenario runs through
    /// [`Database::run`](crate::Database::run); with several, through
    /// [`Database::run_scenarios`](crate::Database::run_scenarios).
    pub fn scenario(mut self, sc: Scenario) -> Self {
        self.scenarios.push(sc);
        self
    }

    /// Attach a whole [`ScenarioSet`] (appends to earlier calls).
    pub fn scenario_set(mut self, set: impl Into<ScenarioSet>) -> Self {
        self.scenarios.items.extend(set.into().items);
        self
    }

    /// Apply hypothetical overrides to copies of the affected base
    /// relations before evaluation (the Section 3.1 alternate-measure /
    /// alternate-domain what-if forms). Appends to earlier calls.
    #[deprecated(
        since = "0.1.0",
        note = "overrides now live on named scenarios: use `scenario(Scenario::named(..).with(..))`"
    )]
    pub fn overrides(mut self, overrides: impl IntoIterator<Item = Override>) -> Self {
        for ov in overrides {
            self.push_adhoc(ov);
        }
        self
    }

    /// Apply one hypothetical override.
    #[deprecated(
        since = "0.1.0",
        note = "overrides now live on named scenarios: use `scenario(Scenario::named(..).with(..))`"
    )]
    pub fn hypothetical(mut self, ov: Override) -> Self {
        self.push_adhoc(ov);
        self
    }

    /// Append an override to the single ad-hoc scenario the deprecated
    /// builders share, creating it on first use — so chained
    /// `hypothetical` calls compose into one scenario exactly as they
    /// composed into one override list.
    fn push_adhoc(&mut self, ov: Override) {
        match self
            .scenarios
            .items
            .iter_mut()
            .find(|sc| sc.name() == ADHOC_SCENARIO)
        {
            Some(sc) => sc.push_override(ov),
            None => self.scenarios.push(Scenario::named(ADHOC_SCENARIO).with(ov)),
        }
    }

    /// Run under these resource budgets instead of the database's
    /// defaults.
    pub fn limits(mut self, limits: ExecLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Record per-operator execution traces at this level; the tree is
    /// returned on [`Answer::trace`](crate::Answer::trace).
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Serve the answer from a materialized [`VeCache`] instead of
    /// planning and executing against the base relations. Only plain
    /// group-by queries qualify (no filters, `having`, or scenarios —
    /// condition the cache with [`VeCache::with_evidence`] instead).
    /// The cache must have been built under the semiring the query's
    /// view/aggregate pair resolves to; a mismatch is rejected with
    /// [`crate::EngineError::CacheSemiringMismatch`] rather than
    /// silently aggregating with the wrong operations.
    pub fn via_cache(mut self, cache: &'a VeCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// This request with its scenarios stripped — the baseline the
    /// scenario engine compares every outcome against.
    pub(crate) fn baseline(&self) -> QueryRequest<'a> {
        QueryRequest {
            query: self.query.clone(),
            scenarios: ScenarioSet::new(),
            limits: self.limits.clone(),
            trace: self.trace,
            cache: None,
        }
    }
}

impl<'a> From<Query> for QueryRequest<'a> {
    fn from(query: Query) -> QueryRequest<'a> {
        QueryRequest {
            query,
            scenarios: ScenarioSet::new(),
            limits: None,
            trace: TraceLevel::Off,
            cache: None,
        }
    }
}

impl<'a> From<&Query> for QueryRequest<'a> {
    fn from(query: &Query) -> QueryRequest<'a> {
        QueryRequest::from(query.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_accumulates() {
        let req = QueryRequest::on("v")
            .group_by(["a"])
            .filter("b", 1)
            .strategy(Strategy::Naive)
            .trace(TraceLevel::Spans)
            .limits(ExecLimits::none().with_max_output_rows(10))
            .scenario(Scenario::named("s").measure("r", vec![0], 2.0));
        assert_eq!(req.query().view, "v");
        assert_eq!(req.query().strategy, Strategy::Naive);
        assert_eq!(req.trace, TraceLevel::Spans);
        assert_eq!(req.scenarios().len(), 1);
        assert!(req.limits.is_some());
        assert!(req.cache.is_none());
    }

    #[test]
    fn query_converts_with_defaults() {
        let q = Query::on("v").group_by(["a"]);
        let req: QueryRequest<'_> = (&q).into();
        assert_eq!(req.query(), &q);
        assert_eq!(req.trace, TraceLevel::Off);
        assert!(req.scenarios.is_empty() && req.limits.is_none());
    }

    /// Pins the deprecated shims' delegation: chained `hypothetical` /
    /// `overrides` calls accumulate into ONE ad-hoc scenario (so a
    /// migrated caller sees identical single-scenario semantics), and
    /// they compose with explicitly named scenarios without touching
    /// them.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_one_adhoc_scenario() {
        let ov = |m: f64| Override::Measure {
            relation: "r".into(),
            row: vec![0],
            measure: m,
        };
        let req = QueryRequest::on("v")
            .group_by(["a"])
            .hypothetical(ov(1.0))
            .overrides([ov(2.0), ov(3.0)])
            .hypothetical(ov(4.0));
        assert_eq!(req.scenarios().len(), 1);
        let sc = &req.scenarios().as_slice()[0];
        assert_eq!(sc.name(), ADHOC_SCENARIO);
        assert_eq!(sc.overrides().len(), 4);
        assert!(sc.evidence_set().is_empty());

        let req = QueryRequest::on("v")
            .scenario(Scenario::named("explicit").with(ov(9.0)))
            .hypothetical(ov(1.0));
        assert_eq!(req.scenarios().len(), 2);
        assert_eq!(req.scenarios().as_slice()[0].name(), "explicit");
        assert_eq!(req.scenarios().as_slice()[1].overrides().len(), 1);
    }
}
