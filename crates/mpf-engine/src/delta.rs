//! The single base-relation patching path behind every what-if mechanism.
//!
//! Three callers apply "change one base relation" deltas: hypothetical
//! scenario evaluation ([`crate::Scenario`] overrides, applied to copies),
//! the legacy per-request override path ([`crate::Database::run`] with a
//! one-scenario set), and real point updates
//! ([`crate::Database::update_measure`], whose [`crate::CacheEvent`] drives
//! the view cache's Section 6 update-semijoin patching). They all route
//! through this module so the semantics — exact row matching, measure
//! replacement in place, first-occurrence-wins domain merges — cannot
//! drift between the hypothetical and the real paths.

use mpf_storage::{Catalog, FunctionalRelation, Value};

use crate::{EngineError, Override, Result};

/// Replace the measure of the row equal to `row`, returning the patched
/// relation and the previous measure. `None` when no row matches.
///
/// The patch is a clone + in-place [`FunctionalRelation::set_measure`]:
/// row order and representation are preserved exactly, so a patched
/// relation scans bit-identically to the original everywhere but the one
/// measure.
pub(crate) fn patch_measure(
    rel: &FunctionalRelation,
    row: &[Value],
    measure: f64,
) -> Option<(FunctionalRelation, f64)> {
    let idx = (0..rel.len()).find(|&i| rel.row(i) == row)?;
    let old = rel.measure(idx);
    let mut updated = rel.clone();
    updated.set_measure(idx, measure);
    Some((updated, old))
}

/// Remap one variable's value `from → to` across a relation. The remap
/// may merge rows that become equal; the first occurrence wins (the
/// Section 3.1 alternate-domain convention).
pub(crate) fn remap_domain(
    catalog: &Catalog,
    rel: &FunctionalRelation,
    var: &str,
    from: Value,
    to: Value,
) -> Result<FunctionalRelation> {
    let vid = catalog
        .var(var)
        .map_err(|_| EngineError::UnknownVariable(var.to_string()))?;
    let pos = rel.schema().position(vid).map_err(|_| {
        EngineError::BadOverride(format!("`{}` has no variable `{var}`", rel.name()))
    })?;
    let mut updated = FunctionalRelation::new(rel.name().to_string(), rel.schema().clone());
    let mut seen = std::collections::HashSet::new();
    for (r, m) in rel.rows() {
        let mut r = r.to_vec();
        if r[pos] == from {
            r[pos] = to;
        }
        if seen.insert(r.clone()) {
            updated.push_row(&r, m)?;
        }
    }
    Ok(updated)
}

/// Apply one [`Override`] to a relation, producing the patched copy.
///
/// # Errors
/// [`EngineError::BadOverride`] when a measure override names a missing
/// row, or a domain override names a variable outside the relation's
/// schema.
pub(crate) fn apply(
    catalog: &Catalog,
    rel: &FunctionalRelation,
    ov: &Override,
) -> Result<FunctionalRelation> {
    match ov {
        Override::Measure { relation, row, measure } => patch_measure(rel, row, *measure)
            .map(|(updated, _)| updated)
            .ok_or_else(|| {
                EngineError::BadOverride(format!("row {row:?} not found in `{relation}`"))
            }),
        Override::Domain { var, from, to, .. } => remap_domain(catalog, rel, var, *from, *to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_storage::Schema;

    fn catalog_and_rel() -> (Catalog, FunctionalRelation) {
        let mut catalog = Catalog::new();
        let a = catalog.add_var("a", 3).unwrap();
        let b = catalog.add_var("b", 3).unwrap();
        let rel = FunctionalRelation::from_rows(
            "r",
            Schema::new(vec![a, b]).unwrap(),
            [
                (vec![0, 0], 1.0),
                (vec![0, 1], 2.0),
                (vec![1, 0], 3.0),
                (vec![1, 1], 4.0),
            ],
        )
        .unwrap();
        (catalog, rel)
    }

    #[test]
    fn patch_measure_preserves_row_order() {
        let (_, rel) = catalog_and_rel();
        let (updated, old) = patch_measure(&rel, &[1, 0], 30.0).unwrap();
        assert_eq!(old, 3.0);
        assert_eq!(updated.len(), rel.len());
        for i in 0..rel.len() {
            assert_eq!(updated.row(i), rel.row(i), "row {i} moved");
        }
        assert_eq!(updated.measure(2), 30.0);
        assert!(patch_measure(&rel, &[2, 2], 1.0).is_none());
    }

    #[test]
    fn remap_merges_first_occurrence_wins() {
        let (catalog, rel) = catalog_and_rel();
        // b: 1 -> 0 merges (0,1) into (0,0) and (1,1) into (1,0); the
        // earlier rows' measures win.
        let updated = remap_domain(&catalog, &rel, "b", 1, 0).unwrap();
        assert_eq!(updated.len(), 2);
        assert_eq!(updated.lookup(&[0, 0]), Some(1.0));
        assert_eq!(updated.lookup(&[1, 0]), Some(3.0));
    }

    #[test]
    fn apply_reports_typed_errors() {
        let (catalog, rel) = catalog_and_rel();
        let e = apply(
            &catalog,
            &rel,
            &Override::Measure {
                relation: "r".into(),
                row: vec![9, 9],
                measure: 1.0,
            },
        )
        .unwrap_err();
        assert!(matches!(e, EngineError::BadOverride(_)));
        let e = apply(
            &catalog,
            &rel,
            &Override::Domain {
                relation: "r".into(),
                var: "zz".into(),
                from: 0,
                to: 1,
            },
        )
        .unwrap_err();
        assert!(matches!(e, EngineError::UnknownVariable(_)));
    }
}
