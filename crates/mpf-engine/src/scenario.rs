//! Batch what-if evaluation: named [`Scenario`]s evaluated as one set
//! with shared-subplan fan-out.
//!
//! The paper's decision-support workload (Section 3) is comparative —
//! "what happens to each contractor's utility if supplier costs shock by
//! 10%?" — which makes single-`Override` hypothetical queries wasteful:
//! each variant replans and re-executes the entire view even though most
//! of the plan never looks at the overridden relation. Viewing the view
//! product as a tensor contraction (the FAQ line of work) makes the
//! sharing explicit: every plan subtree whose scans are disjoint from a
//! scenario's touched relations is *invariant across the whole set* and
//! can be computed once.
//!
//! [`Database::run_scenarios`] therefore evaluates a [`ScenarioSet`] as:
//!
//! 1. **baseline** — the unmodified query through the normal path (the
//!    transparent [`crate::ViewCache`] serves it when resident);
//! 2. **plan** — each scenario is planned exactly as a sequential
//!    single-scenario run would be (measure-only scenarios reuse one
//!    plan per strategy: [`mpf_optimizer::BaseRel`] statistics are
//!    measure-independent, so the optimizer input is identical);
//! 3. **partition** — the physical plan splits into a *shared trunk*
//!    (maximal subtrees scanning only untouched relations, memoized by
//!    structural identity and computed once per batch) and a
//!    *per-scenario frontier* (the residual plan, executed against an
//!    [`Overlay`] holding the scenario's patched relations plus the
//!    memoized trunk outputs under synthetic scan names);
//! 4. **fan-out** — scenarios are chunked across scoped worker threads,
//!    every execution context forked from one root so the whole batch
//!    runs under a single shared budget and scan ledger.
//!
//! Execution is deterministic at any thread count (the PR 3 contract),
//! and a memoized trunk output is bit-identical to what the inline
//! subtree would have produced against the same data, so batch answers
//! are **bit-identical** to a sequential loop of single-scenario runs —
//! the property the `scenario_set` proptest pins. Frontiers are always
//! recomputed rather than ratio-patched: the Section 6 update-semijoin
//! division trick (which the view cache uses for *cache* maintenance,
//! where it is pinned by its own bit-exactness tests) would reassociate
//! floating-point products and break that guarantee here.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mpf_algebra::{ExecContext, ExecLimits, ExecStats, Executor, Overlay, PhysicalPlan, Plan,
    RelationProvider};
use mpf_optimizer::{choose_physical, PhysicalConfig};
use mpf_semiring::{resolve_semiring, SemiringKind};
use mpf_storage::{FunctionalRelation, Value};

use crate::database::{resolve_spec, MpfView};
use crate::snapshot::Snapshot;
use crate::{
    delta, Answer, Database, EngineError, Override, Query, QueryRequest, Result, Strategy,
};

/// A named what-if variant: the single unit of hypothetical evaluation.
///
/// A scenario bundles any number of [`Override`]s (alternate measures,
/// alternate domains) with optional *evidence* assignments (`var = value`
/// conditions, the constrained-domain query form), under a name the
/// report keys results by.
///
/// ```
/// use mpf_engine::Scenario;
///
/// let sc = Scenario::named("t1-offline")
///     .measure("transporters", vec![1, 0], 0.0)
///     .evidence("wid", 2);
/// assert_eq!(sc.name(), "t1-offline");
/// assert_eq!(sc.overrides().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    overrides: Vec<Override>,
    evidence: Vec<(String, Value)>,
}

impl Scenario {
    /// Start an empty scenario with a name (names must be unique within
    /// a set).
    pub fn named(name: impl Into<String>) -> Scenario {
        Scenario {
            name: name.into(),
            overrides: Vec::new(),
            evidence: Vec::new(),
        }
    }

    /// Add an [`Override`] (appends to earlier ones; overrides of one
    /// relation compose in order).
    pub fn with(mut self, ov: Override) -> Scenario {
        self.overrides.push(ov);
        self
    }

    /// Sugar for a measure override: "what if this row of `relation` had
    /// measure `measure`?"
    pub fn measure(self, relation: impl Into<String>, row: Vec<Value>, measure: f64) -> Scenario {
        self.with(Override::Measure {
            relation: relation.into(),
            row,
            measure,
        })
    }

    /// Sugar for a domain override: "what if `var = from` rows of
    /// `relation` moved to `var = to`?"
    pub fn move_domain(
        self,
        relation: impl Into<String>,
        var: impl Into<String>,
        from: Value,
        to: Value,
    ) -> Scenario {
        self.with(Override::Domain {
            relation: relation.into(),
            var: var.into(),
            from,
            to,
        })
    }

    /// Condition this scenario on `var = value` (merged into the query's
    /// equality predicates for this scenario only).
    pub fn evidence(mut self, var: impl Into<String>, value: Value) -> Scenario {
        self.evidence.push((var.into(), value));
        self
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The overrides, in application order.
    pub fn overrides(&self) -> &[Override] {
        &self.overrides
    }

    /// The evidence assignments.
    pub fn evidence_set(&self) -> &[(String, Value)] {
        &self.evidence
    }

    /// Append an override in place (the deprecated-shim accumulation
    /// path).
    pub(crate) fn push_override(&mut self, ov: Override) {
        self.overrides.push(ov);
    }

    /// Whether this scenario's optimizer input is identical to the
    /// baseline's: measure overrides change neither schema nor
    /// cardinality (the only [`mpf_optimizer::BaseRel`] statistics), and
    /// there is no evidence to fold into the query spec — so one plan
    /// per strategy serves every such scenario.
    fn plan_reusable(&self) -> bool {
        self.evidence.is_empty()
            && self
                .overrides
                .iter()
                .all(|ov| matches!(ov, Override::Measure { .. }))
    }
}

/// An ordered set of [`Scenario`]s submitted as one batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioSet {
    pub(crate) items: Vec<Scenario>,
}

impl ScenarioSet {
    /// An empty set.
    pub fn new() -> ScenarioSet {
        ScenarioSet::default()
    }

    /// Append a scenario.
    pub fn push(&mut self, sc: Scenario) {
        self.items.push(sc);
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate the scenarios in submission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Scenario> {
        self.items.iter()
    }

    /// The scenarios as a slice.
    pub fn as_slice(&self) -> &[Scenario] {
        &self.items
    }
}

impl From<Vec<Scenario>> for ScenarioSet {
    fn from(items: Vec<Scenario>) -> ScenarioSet {
        ScenarioSet { items }
    }
}

impl From<Scenario> for ScenarioSet {
    fn from(sc: Scenario) -> ScenarioSet {
        ScenarioSet { items: vec![sc] }
    }
}

impl FromIterator<Scenario> for ScenarioSet {
    fn from_iter<T: IntoIterator<Item = Scenario>>(iter: T) -> ScenarioSet {
        ScenarioSet {
            items: iter.into_iter().collect(),
        }
    }
}

impl<'s> IntoIterator for &'s ScenarioSet {
    type Item = &'s Scenario;
    type IntoIter = std::slice::Iter<'s, Scenario>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// One output group whose measure moved between the baseline and a
/// scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDelta {
    /// The group's variable values (in the answer schema's order).
    pub row: Vec<Value>,
    /// The baseline measure (`None` when the group only exists under the
    /// scenario).
    pub baseline: Option<f64>,
    /// The scenario measure (`None` when the group vanished under the
    /// scenario).
    pub scenario: Option<f64>,
    /// Ranking key: `|scenario − baseline|` when both exist and the
    /// difference is finite; infinite for groups that appeared,
    /// vanished, or moved between non-finite measures.
    pub shift: f64,
}

/// The invariant-vs-divergent summary of one scenario against the
/// baseline answer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Divergence {
    /// Groups that moved, ranked by [`GroupDelta::shift`] descending
    /// (appearances/disappearances first), ties broken by row. Empty for
    /// an invariant scenario.
    pub deltas: Vec<GroupDelta>,
}

impl Divergence {
    /// Compare two answers row-by-row. Measures are compared by bit
    /// pattern: "invariant" means *exactly* the baseline answer.
    pub fn between(baseline: &FunctionalRelation, scenario: &FunctionalRelation) -> Divergence {
        let mut base: HashMap<Vec<Value>, f64> = baseline
            .rows()
            .map(|(row, m)| (row.to_vec(), m))
            .collect();
        let mut deltas = Vec::new();
        for (row, m) in scenario.rows() {
            match base.remove(row) {
                Some(old) if old.to_bits() == m.to_bits() => {}
                Some(old) => deltas.push(GroupDelta {
                    row: row.to_vec(),
                    baseline: Some(old),
                    scenario: Some(m),
                    shift: shift_of(old, m),
                }),
                None => deltas.push(GroupDelta {
                    row: row.to_vec(),
                    baseline: None,
                    scenario: Some(m),
                    shift: f64::INFINITY,
                }),
            }
        }
        for (row, old) in base {
            deltas.push(GroupDelta {
                row,
                baseline: Some(old),
                scenario: None,
                shift: f64::INFINITY,
            });
        }
        deltas.sort_by(|a, b| b.shift.total_cmp(&a.shift).then_with(|| a.row.cmp(&b.row)));
        Divergence { deltas }
    }

    /// Whether the scenario's answer is bit-identical to the baseline.
    pub fn is_invariant(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Number of groups that moved.
    pub fn moved(&self) -> usize {
        self.deltas.len()
    }

    /// The largest shift (0 for an invariant scenario; infinite when a
    /// group appeared or vanished).
    pub fn max_shift(&self) -> f64 {
        self.deltas.first().map_or(0.0, |d| d.shift)
    }
}

fn shift_of(old: f64, new: f64) -> f64 {
    let d = (new - old).abs();
    if d.is_nan() {
        f64::INFINITY
    } else {
        d
    }
}

/// One scenario's result within a [`ScenarioReport`].
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario's name.
    pub name: String,
    /// The scenario's full answer (stats include this scenario's share
    /// of trunk work; traces are not recorded on the batch path).
    pub answer: Answer,
    /// How the answer moved relative to the baseline.
    pub divergence: Divergence,
}

/// The result of a batch what-if evaluation
/// ([`Database::run_scenarios`]): the baseline answer, per-scenario
/// answers in submission order, and the batch's sharing counters.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The unmodified query's answer (served through the normal path,
    /// including the transparent view cache).
    pub baseline: Answer,
    /// Per-scenario outcomes, in submission order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Distinct shared-trunk subtrees materialized once for the batch.
    pub trunk_builds: u64,
    /// Frontier executions that reused a memoized trunk output.
    pub trunk_hits: u64,
    /// Wall time for the whole batch (baseline + fan-out).
    pub elapsed: Duration,
}

impl ScenarioReport {
    /// The outcome of a named scenario, if present.
    pub fn outcome(&self, name: &str) -> Option<&ScenarioOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }

    /// Outcomes whose answers moved, ranked by their largest group
    /// shift descending (ties: submission order).
    pub fn divergent(&self) -> Vec<&ScenarioOutcome> {
        let mut out: Vec<&ScenarioOutcome> = self
            .outcomes
            .iter()
            .filter(|o| !o.divergence.is_invariant())
            .collect();
        out.sort_by(|a, b| b.divergence.max_shift().total_cmp(&a.divergence.max_shift()));
        out
    }

    /// Scenarios whose answers are bit-identical to the baseline.
    pub fn invariant(&self) -> Vec<&ScenarioOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.divergence.is_invariant())
            .collect()
    }
}

/// A planned (strategy → plan) entry shared by plan-reusable scenarios.
struct Planned {
    plan: Plan,
    est_cost: f64,
    physical: PhysicalPlan,
}

/// Per-batch plan memo: measure-only scenarios produce optimizer input
/// identical to the baseline's, so each strategy is planned once.
#[derive(Default)]
struct PlanCache {
    inner: Mutex<Vec<(Strategy, Arc<Planned>)>>,
}

impl PlanCache {
    fn get(&self, strategy: Strategy) -> Option<Arc<Planned>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|(s, _)| *s == strategy)
            .map(|(_, p)| Arc::clone(p))
    }

    fn put(&self, strategy: Strategy, planned: Arc<Planned>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if !inner.iter().any(|(s, _)| *s == strategy) {
            inner.push((strategy, planned));
        }
    }
}

/// One shared-trunk subtree: the synthetic scan name the residual plans
/// reference it by, and its compute-once output cell. The first scenario
/// to need the trunk builds it under the cell lock; concurrent scenarios
/// needing the same trunk block until the output (or its error) is
/// available.
struct TrunkSlot {
    scan_name: String,
    cell: Mutex<Option<Result<Arc<FunctionalRelation>>>>,
}

impl TrunkSlot {
    /// Returns the trunk output and whether *this* call built it.
    fn get_or_build(
        &self,
        f: impl FnOnce() -> Result<Arc<FunctionalRelation>>,
    ) -> (Result<Arc<FunctionalRelation>>, bool) {
        let mut cell = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        match &*cell {
            Some(r) => (r.clone(), false),
            None => {
                let r = f();
                *cell = Some(r.clone());
                (r, true)
            }
        }
    }
}

/// Batch-wide trunk memo keyed by the subtree's full `Debug` rendering —
/// a faithful structural key (relation names, predicates, algorithms),
/// so structurally identical subtrees across scenarios and strategies
/// share one slot, and evidence-specific subtrees (whose `Select`
/// predicates differ) get their own.
#[derive(Default)]
struct TrunkMemo {
    slots: Mutex<HashMap<String, Arc<TrunkSlot>>>,
}

impl TrunkMemo {
    fn slot(&self, sub: &PhysicalPlan) -> Arc<TrunkSlot> {
        let key = format!("{sub:?}");
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let next = slots.len();
        Arc::clone(slots.entry(key).or_insert_with(|| {
            Arc::new(TrunkSlot {
                scan_name: format!("__trunk:{next}"),
                cell: Mutex::new(None),
            })
        }))
    }
}

impl Database {
    /// Evaluate a [`ScenarioSet`] in one batch and return a
    /// [`ScenarioReport`]: the baseline answer plus, per scenario, the
    /// full answer and an invariant-vs-divergent summary ranked by group
    /// shift.
    ///
    /// Answers are bit-identical to running each scenario alone through
    /// [`Database::run`]; the batch is faster because plan subtrees
    /// untouched by any scenario's overrides are computed once and
    /// shared, measure-only scenarios share one plan per strategy, and
    /// scenarios fan out across the worker threads the effective
    /// [`ExecLimits::threads`] allows — all under one shared execution
    /// budget (a batch that trips a budget mid-way fails where the
    /// equivalent sequential loop might squeak through; budgets bound
    /// *total* work either way).
    ///
    /// # Errors
    /// [`EngineError::DuplicateScenario`] for repeated names;
    /// [`EngineError::BadOverride`] when a request carries
    /// [`QueryRequest::via_cache`]; the first failing scenario's error
    /// (in submission order) otherwise, matching the sequential loop.
    pub fn run_scenarios<'a>(&self, req: impl Into<QueryRequest<'a>>) -> Result<ScenarioReport> {
        let req = req.into();
        let t0 = Instant::now();
        let result = self.run_scenario_set(&req);
        if let Some(m) = self.metrics() {
            m.inc("engine.scenario.batches");
            m.observe("engine.scenario.batch_us", t0.elapsed());
            match &result {
                Ok(report) => {
                    m.add("engine.scenario.evaluated", report.outcomes.len() as u64);
                    m.add("engine.scenario.trunk_builds", report.trunk_builds);
                    m.add("engine.scenario.trunk_hits", report.trunk_hits);
                }
                Err(_) => m.inc("engine.scenario.errors"),
            }
        }
        result
    }

    fn run_scenario_set(&self, req: &QueryRequest<'_>) -> Result<ScenarioReport> {
        let t0 = Instant::now();
        if req.cache.is_some() {
            return Err(EngineError::BadOverride(
                "scenario sets cannot be served from a caller-supplied VeCache; \
                 the batch engine plans against the base relations"
                    .into(),
            ));
        }
        let mut names = HashSet::new();
        for sc in req.scenarios.iter() {
            if !names.insert(sc.name()) {
                return Err(EngineError::DuplicateScenario(sc.name().to_string()));
            }
        }
        // One snapshot for the whole batch: baseline, trunks, and every
        // scenario see the same version.
        let snap = self.snapshot();
        let baseline = self.run_request(&req.baseline())?;

        let q = &req.query;
        let view = snap
            .view_of(&q.view)
            .ok_or_else(|| EngineError::UnknownView(q.view.clone()))?;
        let sr =
            resolve_semiring(view.combine, q.agg).ok_or(EngineError::IncompatibleAggregate {
                combine: view.combine,
                aggregate: q.agg,
            })?;
        let limits = req.limits.clone().unwrap_or_else(|| self.limits().clone());
        // One root context: forks share its budget, scan ledger, and
        // worker-token pool, so intra-scenario parallel operators and the
        // cross-scenario fan-out draw from the same allowance.
        let root = ExecContext::with_limits(sr, limits.clone())
            .with_dense(self.dense())
            .with_repr(self.repr());
        let memo = TrunkMemo::default();
        let plans = PlanCache::default();

        let scenarios = req.scenarios.as_slice();
        let n = scenarios.len();
        let slots: Vec<Mutex<Option<Result<Answer>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = limits.effective_threads().max(1).min(n.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let worker_cx = root.fork();
                let (slots, next, snap, limits, memo, plans) =
                    (&slots, &next, &snap, &limits, &memo, &plans);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = self.eval_scenario(
                        snap.as_ref(),
                        req,
                        &scenarios[i],
                        view,
                        sr,
                        limits,
                        &worker_cx,
                        memo,
                        plans,
                    );
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                });
            }
        });

        let mut outcomes = Vec::with_capacity(n);
        let (mut trunk_builds, mut trunk_hits) = (0u64, 0u64);
        for (i, slot) in slots.into_iter().enumerate() {
            let answer = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every claimed scenario index is filled before its worker exits")?;
            trunk_builds += answer.stats.trunk_builds;
            trunk_hits += answer.stats.trunk_hits;
            let divergence = Divergence::between(&baseline.relation, &answer.relation);
            outcomes.push(ScenarioOutcome {
                name: scenarios[i].name().to_string(),
                answer,
                divergence,
            });
        }
        Ok(ScenarioReport {
            baseline,
            outcomes,
            trunk_builds,
            trunk_hits,
            elapsed: t0.elapsed(),
        })
    }

    /// Evaluate one scenario inside the batch: overlay its patched
    /// relations, plan it exactly as a sequential run would, and walk
    /// the same strategy-fallback chain — with trunk substitution and
    /// plan reuse as the only (bit-preserving) differences.
    #[allow(clippy::too_many_arguments)]
    fn eval_scenario(
        &self,
        snap: &Snapshot,
        req: &QueryRequest<'_>,
        sc: &Scenario,
        view: &MpfView,
        sr: SemiringKind,
        limits: &ExecLimits,
        worker_cx: &ExecContext<'_>,
        memo: &TrunkMemo,
        plans: &PlanCache,
    ) -> Result<Answer> {
        // Evidence merges into the query's equality predicates — the
        // constrained-domain form a sequential run would use.
        let mut q = req.query.clone();
        for (var, value) in sc.evidence_set() {
            q = q.filter(var.clone(), *value);
        }
        let spec = resolve_spec(snap, &q)?;
        let mut overlay = Overlay::new(&snap.store);
        let mut touched: HashSet<String> = HashSet::new();
        for ov in sc.overrides() {
            let name = ov.relation();
            let patched = {
                let current = overlay.relation_of(name).ok_or_else(|| {
                    EngineError::BadOverride(format!("no relation `{name}`"))
                })?;
                delta::apply(&snap.catalog, current, ov)?
            };
            overlay.insert_as(name, Arc::new(patched));
            touched.insert(name.to_string());
        }
        let ctx = self.opt_context(snap, view, &overlay, spec)?;

        let mut attempts = vec![q.strategy];
        for s in &self.fallback().chain {
            if !attempts.contains(s) {
                attempts.push(*s);
            }
        }
        let mut failed: Vec<(Strategy, EngineError)> = Vec::new();
        let mut total = ExecStats::default();
        let last = attempts.len() - 1;
        for (i, &strategy) in attempts.iter().enumerate() {
            match self.scenario_attempt(
                &q, sc, snap, &overlay, &ctx, sr, strategy, limits, &mut total, worker_cx, memo,
                plans, &touched,
            ) {
                Ok(mut answer) => {
                    answer.served_by = strategy;
                    answer.fallback = failed;
                    return Ok(answer);
                }
                Err(e) if i < last && e.fallback_may_cure() => failed.push((strategy, e)),
                Err(e) => return Err(e),
            }
        }
        Err(EngineError::EmptyView(q.view.clone()))
    }

    /// One strategy attempt for one scenario: plan (or reuse), partition
    /// into trunk + frontier, materialize missing trunks against the
    /// pristine base data, execute the residual against the overlay.
    #[allow(clippy::too_many_arguments)]
    fn scenario_attempt(
        &self,
        q: &Query,
        sc: &Scenario,
        snap: &Snapshot,
        overlay: &Overlay<'_, mpf_algebra::RelationStore>,
        ctx: &mpf_optimizer::OptContext<'_>,
        sr: SemiringKind,
        strategy: Strategy,
        limits: &ExecLimits,
        total: &mut ExecStats,
        worker_cx: &ExecContext<'_>,
        memo: &TrunkMemo,
        plans: &PlanCache,
        touched: &HashSet<String>,
    ) -> Result<Answer> {
        let t0 = Instant::now();
        let reusable = sc.plan_reusable();
        let planned = match reusable.then(|| plans.get(strategy)).flatten() {
            Some(p) => p,
            None => {
                let (plan, est_cost) = self.plan_for(&q.view, ctx, strategy)?;
                let physical = choose_physical(
                    ctx,
                    &plan,
                    PhysicalConfig::default()
                        .with_threads(limits.effective_threads())
                        .with_dense(self.dense())
                        .with_repr(self.repr()),
                );
                let p = Arc::new(Planned {
                    plan,
                    est_cost,
                    physical,
                });
                if reusable {
                    plans.put(strategy, Arc::clone(&p));
                }
                p
            }
        };
        let optimize_time = t0.elapsed();

        let mut pieces: Vec<(Arc<TrunkSlot>, PhysicalPlan)> = Vec::new();
        let residual = planned.physical.extract_shared(
            &|name| touched.contains(name),
            &mut |sub| {
                let slot = memo.slot(sub);
                let name = slot.scan_name.clone();
                pieces.push((slot, sub.clone()));
                name
            },
        );
        let mut exec_overlay = overlay.clone();
        for (slot, sub) in pieces {
            let mut build_stats = ExecStats::default();
            let (rel, built) = slot.get_or_build(|| {
                // Trunks scan only untouched relations, so they execute
                // against the pristine base store — once per batch.
                let exec = Executor::new(&snap.store, sr);
                let mut cx = worker_cx.fork();
                let out = exec.execute_physical_in(&mut cx, &sub);
                build_stats.merge(cx.stats());
                out.map(Arc::new).map_err(EngineError::from)
            });
            total.merge(&build_stats);
            if built {
                total.trunk_builds += 1;
            } else {
                total.trunk_hits += 1;
            }
            exec_overlay.insert_as(slot.scan_name.clone(), rel?);
        }

        let exec = Executor::new(&exec_overlay, sr);
        let mut cx = worker_cx.fork();
        let t1 = Instant::now();
        let result = exec.execute_physical_in(&mut cx, &residual);
        let execute_time = t1.elapsed();
        total.merge(cx.stats());
        let mut relation = result.map_err(EngineError::from)?;

        // Identical constrained-range post-filter to the sequential path.
        if let Some((cmp, bound)) = q.having {
            let mut filtered =
                FunctionalRelation::new(relation.name().to_string(), relation.schema().clone());
            for (row, m) in relation.rows() {
                if cmp.matches(m, bound) {
                    filtered.push_row(row, m)?;
                }
            }
            relation = filtered;
        }

        Ok(Answer {
            relation,
            served_by: strategy,
            fallback: Vec::new(),
            plan: planned.plan.clone(),
            physical: planned.physical.clone(),
            est_cost: planned.est_cost,
            stats: *total,
            optimize_time,
            execute_time,
            trace: None,
            cache: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builder_accumulates() {
        let sc = Scenario::named("s")
            .measure("r", vec![0, 1], 2.0)
            .move_domain("r", "a", 1, 0)
            .evidence("b", 1);
        assert_eq!(sc.name(), "s");
        assert_eq!(sc.overrides().len(), 2);
        assert_eq!(sc.evidence_set(), &[("b".to_string(), 1)]);
        assert!(!sc.plan_reusable(), "domain moves change cardinality");
        assert!(Scenario::named("m")
            .measure("r", vec![0], 1.0)
            .plan_reusable());
    }

    #[test]
    fn scenario_set_collects() {
        let set: ScenarioSet = (0..3).map(|i| Scenario::named(format!("s{i}"))).collect();
        assert_eq!(set.len(), 3);
        assert_eq!(set.iter().count(), 3);
        assert!(!set.is_empty());
        let single: ScenarioSet = Scenario::named("one").into();
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn divergence_ranks_and_detects_invariance() {
        use mpf_storage::{Catalog, Schema};
        let mut catalog = Catalog::new();
        let a = catalog.add_var("a", 4).unwrap();
        let schema = Schema::new(vec![a]).unwrap();
        let base = FunctionalRelation::from_rows(
            "g",
            schema.clone(),
            [(vec![0], 1.0), (vec![1], 2.0), (vec![2], 3.0)],
        )
        .unwrap();
        assert!(Divergence::between(&base, &base).is_invariant());
        // 0 moves a little, 1 moves a lot, 2 vanishes, 3 appears.
        let changed = FunctionalRelation::from_rows(
            "g",
            schema,
            [(vec![0], 1.5), (vec![1], 10.0), (vec![3], 7.0)],
        )
        .unwrap();
        let d = Divergence::between(&base, &changed);
        assert_eq!(d.moved(), 4);
        assert!(d.max_shift().is_infinite());
        // Appear/vanish rank first (row order breaks the tie), then the
        // finite shifts descending.
        assert_eq!(d.deltas[0].row, vec![2]);
        assert_eq!(d.deltas[1].row, vec![3]);
        assert_eq!(d.deltas[2].row, vec![1]);
        assert_eq!(d.deltas[3].row, vec![0]);
        assert_eq!(d.deltas[2].shift, 8.0);
    }
}
