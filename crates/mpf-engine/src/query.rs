use std::time::Duration;

use mpf_algebra::{ExecStats, PhysicalPlan, Plan, TraceTree};
use mpf_optimizer::Heuristic;
use mpf_semiring::Aggregate;
use mpf_storage::{FunctionalRelation, Value, VarId};

/// The evaluation strategy for a query — the paper's PostgreSQL language
/// extension "that specifies the evaluation strategy" (Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Strategy {
    /// Join all base relations, then one root group-by (the Figure 3 plan).
    Naive,
    /// Unmodified Chaudhuri–Shim (best join order, root group-by).
    Cs,
    /// CS+ over linear plans (Algorithm 1).
    CsPlusLinear,
    /// CS+ over nonlinear (bushy) plans.
    CsPlusNonlinear,
    /// Variable Elimination with a heuristic order.
    Ve(Heuristic),
    /// Extended-space Variable Elimination.
    VePlus(Heuristic),
    /// Pick automatically: run the Section 5.1 plan-linearity test on the
    /// query variables and choose linear CS+ when admissible, nonlinear
    /// CS+ otherwise.
    #[default]
    Auto,
}

impl Strategy {
    /// Short lower-case label (used by `EXPLAIN ANALYZE` headers and
    /// metrics names).
    pub fn label(&self) -> String {
        match self {
            Strategy::Naive => "naive".into(),
            Strategy::Cs => "cs".into(),
            Strategy::CsPlusLinear => "cs+linear".into(),
            Strategy::CsPlusNonlinear => "cs+nonlinear".into(),
            Strategy::Ve(h) => format!("ve({})", heuristic_sql(*h)),
            Strategy::VePlus(h) => format!("ve+({})", heuristic_sql(*h)),
            Strategy::Auto => "auto".into(),
        }
    }
}

/// Comparison operator of a constrained-range (`having`) predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangePredicate {
    /// `having f < c`
    Less,
    /// `having f > c`
    Greater,
    /// `having f <= c`
    LessEq,
    /// `having f >= c`
    GreaterEq,
}

impl RangePredicate {
    /// Apply the predicate.
    pub fn matches(self, measure: f64, bound: f64) -> bool {
        match self {
            RangePredicate::Less => measure < bound,
            RangePredicate::Greater => measure > bound,
            RangePredicate::LessEq => measure <= bound,
            RangePredicate::GreaterEq => measure >= bound,
        }
    }
}

/// An MPF query against a named view, built with a fluent API:
///
/// ```
/// use mpf_engine::Query;
/// use mpf_semiring::Aggregate;
///
/// // "How much money would each contractor lose if transporter 1 went
/// // off-line?" (constrained-domain form)
/// let q = Query::on("invest")
///     .group_by(["cid"])
///     .aggregate(Aggregate::Sum)
///     .filter("tid", 1);
/// assert_eq!(q.view, "invest");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The MPF view queried.
    pub view: String,
    /// Query variables (names; resolved against the catalog).
    pub group_vars: Vec<String>,
    /// The additive aggregate.
    pub agg: Aggregate,
    /// Equality predicates (`where Y = c`).
    pub filters: Vec<(String, Value)>,
    /// Optional constrained-range (`having f ⋈ c`) predicate.
    pub having: Option<(RangePredicate, f64)>,
    /// Evaluation strategy.
    pub strategy: Strategy,
}

impl Query {
    /// Start a query on a view (defaults: `SUM`, no filters, [`Strategy::Auto`]).
    pub fn on(view: impl Into<String>) -> Query {
        Query {
            view: view.into(),
            group_vars: Vec::new(),
            agg: Aggregate::Sum,
            filters: Vec::new(),
            having: None,
            strategy: Strategy::Auto,
        }
    }

    /// Set the group-by variables.
    pub fn group_by<S: Into<String>>(mut self, vars: impl IntoIterator<Item = S>) -> Query {
        self.group_vars = vars.into_iter().map(Into::into).collect();
        self
    }

    /// Set the aggregate.
    pub fn aggregate(mut self, agg: Aggregate) -> Query {
        self.agg = agg;
        self
    }

    /// Add an equality predicate.
    pub fn filter(mut self, var: impl Into<String>, value: Value) -> Query {
        self.filters.push((var.into(), value));
        self
    }

    /// Add a constrained-range predicate on the result measure.
    pub fn having(mut self, cmp: RangePredicate, bound: f64) -> Query {
        self.having = Some((cmp, bound));
        self
    }

    /// Set the evaluation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Query {
        self.strategy = strategy;
        self
    }
}

impl std::fmt::Display for Query {
    /// Render the query in the paper's SQL extension syntax; the output
    /// parses back to an equal `Query` (round-trip property-tested).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let agg = match self.agg {
            Aggregate::Sum => "sum",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
            Aggregate::Or => "or_agg",
        };
        write!(f, "select ")?;
        for v in &self.group_vars {
            write!(f, "{v}, ")?;
        }
        write!(f, "{agg}(f) from {}", self.view)?;
        for (i, (var, val)) in self.filters.iter().enumerate() {
            write!(
                f,
                "{} {var} = {val}",
                if i == 0 { " where" } else { " and" }
            )?;
        }
        if !self.group_vars.is_empty() {
            write!(f, " group by {}", self.group_vars.join(", "))?;
        }
        if let Some((cmp, bound)) = self.having {
            let op = match cmp {
                RangePredicate::Less => "<",
                RangePredicate::Greater => ">",
                RangePredicate::LessEq => "<=",
                RangePredicate::GreaterEq => ">=",
            };
            write!(f, " having f {op} {bound}")?;
        }
        match self.strategy {
            Strategy::Auto => {}
            Strategy::Naive => write!(f, " using naive")?,
            Strategy::Cs => write!(f, " using cs")?,
            Strategy::CsPlusLinear => write!(f, " using csplus")?,
            Strategy::CsPlusNonlinear => write!(f, " using csplus_nonlinear")?,
            Strategy::Ve(h) => write!(f, " using ve({})", heuristic_sql(h))?,
            Strategy::VePlus(h) => write!(f, " using veplus({})", heuristic_sql(h))?,
        }
        Ok(())
    }
}

fn heuristic_sql(h: Heuristic) -> String {
    match h {
        Heuristic::Degree => "degree".into(),
        Heuristic::Width => "width".into(),
        Heuristic::ElimCost => "elim_cost".into(),
        Heuristic::DegreeWidth => "deg_width".into(),
        Heuristic::DegreeElimCost => "deg_elim_cost".into(),
        Heuristic::Random(seed) => format!("random:{seed}"),
    }
}

/// A query result: the answer relation plus everything the experiments
/// measure (plan, estimated cost, execution counters, timings).
#[derive(Debug, Clone)]
pub struct Answer {
    /// The result functional relation.
    pub relation: FunctionalRelation,
    /// The strategy that actually produced the answer. Equal to the
    /// query's requested strategy unless the engine's fallback chain
    /// (see [`crate::FallbackPolicy`]) had to step in.
    pub served_by: Strategy,
    /// Strategies that were attempted and failed before [`Self::served_by`]
    /// succeeded, with the error each one died on. Empty on the happy path.
    pub fallback: Vec<(Strategy, crate::EngineError)>,
    /// The logical plan the optimizer chose.
    pub plan: Plan,
    /// The physical plan actually executed (cost-chosen operator
    /// algorithms per node).
    pub physical: PhysicalPlan,
    /// Optimizer-estimated plan cost.
    pub est_cost: f64,
    /// Execution work counters, aggregated across *every* attempt the
    /// fallback chain made — a query that failed over reports the work of
    /// the failed strategies too, not just the one that served the answer.
    pub stats: ExecStats,
    /// Time spent optimizing.
    pub optimize_time: Duration,
    /// Time spent executing.
    pub execute_time: Duration,
    /// Per-operator execution trace of the serving attempt, recorded when
    /// the request asked for [`mpf_algebra::TraceLevel::Spans`] (`None`
    /// otherwise). Spans carry actual row counts, cells, and wall time
    /// next to the optimizer's estimated rows.
    pub trace: Option<TraceTree>,
    /// Set when the answer was served from a cached elimination tree —
    /// the engine-owned [`crate::ViewCache`] (transparent) or a caller's
    /// [`crate::QueryRequest::via_cache`] tree — instead of executing
    /// the physical plan. `None` for normally executed answers.
    pub cache: Option<CacheServed>,
}

/// How a cache-served [`Answer`] was produced: which cached clique table
/// was marginalized, and how big it was — the work the cache replaced a
/// full plan execution with. Rendered by
/// [`crate::Database::explain_analyze`] as
/// `-- served from cache: clique {A, B} (n rows)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheServed {
    /// Variables of the cached table that answered the query (the
    /// clique of the elimination tree).
    pub clique: Vec<VarId>,
    /// Rows of that table — the marginalization input size.
    pub rows: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let q = Query::on("invest")
            .group_by(["wid"])
            .aggregate(Aggregate::Min)
            .filter("tid", 1)
            .having(RangePredicate::Less, 100.0)
            .strategy(Strategy::CsPlusNonlinear);
        assert_eq!(q.view, "invest");
        assert_eq!(q.group_vars, vec!["wid"]);
        assert_eq!(q.agg, Aggregate::Min);
        assert_eq!(q.filters, vec![("tid".to_string(), 1)]);
        assert_eq!(q.having, Some((RangePredicate::Less, 100.0)));
        assert_eq!(q.strategy, Strategy::CsPlusNonlinear);
    }

    #[test]
    fn range_predicates() {
        assert!(RangePredicate::Less.matches(1.0, 2.0));
        assert!(!RangePredicate::Less.matches(2.0, 2.0));
        assert!(RangePredicate::LessEq.matches(2.0, 2.0));
        assert!(RangePredicate::Greater.matches(3.0, 2.0));
        assert!(RangePredicate::GreaterEq.matches(2.0, 2.0));
    }
}
