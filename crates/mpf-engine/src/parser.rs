//! Lexer and recursive-descent parser for the paper's SQL extension.
//!
//! Two statement forms are supported, matching Sections 2 and 3 of the
//! paper (keywords are case-insensitive):
//!
//! ```sql
//! create mpfview invest as (
//!   select pid, sid, wid, cid, tid,
//!          measure = (* c.price, l.quantity, w.overhead, ct.discount, t.overhead)
//!   from contracts c, location l, warehouses w, ctdeals ct, transporters t
//!   where c.pid = l.pid and l.wid = w.wid and w.cid = ct.cid and ct.tid = t.tid)
//! ```
//!
//! ```sql
//! select wid, sum(inv) from invest where tid = 1 group by wid
//!   having inv < 100 using ve(degree)
//! ```
//!
//! Join qualifications in a view definition are parsed and checked to be
//! variable-to-variable equalities; since the product join is a natural
//! join on shared variable names, they are informational (the paper's
//! `joinquals` equate identically-named attributes).
//!
//! The `using <strategy>` clause is the paper's evaluation-strategy
//! language extension (Section 7).

use mpf_optimizer::Heuristic;
use mpf_semiring::{Aggregate, Combine};
use mpf_storage::Value;

use crate::{EngineError, Query, RangePredicate, Result, Strategy};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `create mpfview <name> as (select <vars>, measure = (<op> ...) from <tables> [where ...])`
    CreateView {
        /// View name.
        name: String,
        /// Base tables, in `from` order.
        tables: Vec<String>,
        /// The combine operation from the measure expression.
        combine: Combine,
        /// The declared output variables.
        vars: Vec<String>,
    },
    /// An MPF select query.
    Select(Query),
}

/// Strategy names accepted by the `using` clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategySpec(pub Strategy);

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Sym(char),
}

struct Lexer<'a> {
    src: &'a str,
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

fn err(position: usize, message: impl Into<String>) -> EngineError {
    EngineError::Parse {
        position,
        message: message.into(),
    }
}

/// Maximum parenthesis nesting depth accepted by the lexer. The grammar
/// never needs more than a handful of levels; the cap turns adversarial
/// inputs like ten thousand nested parentheses into a typed parse error
/// instead of letting a recursive grammar extension overflow the stack.
pub const MAX_NESTING_DEPTH: usize = 128;

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Result<Self> {
        let bytes = src.as_bytes();
        let mut toks = Vec::new();
        let mut i = 0;
        let mut depth = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_ascii_lowercase()), start));
            } else if c.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let v: f64 = src[start..i]
                        .parse()
                        .map_err(|_| err(start, "bad float literal"))?;
                    toks.push((Tok::Float(v), start));
                } else {
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| err(start, "bad integer literal"))?;
                    toks.push((Tok::Int(v), start));
                }
            } else if "(),.=*+<>:".contains(c) {
                if c == '(' {
                    depth += 1;
                    if depth > MAX_NESTING_DEPTH {
                        return Err(err(
                            i,
                            format!("nesting deeper than {MAX_NESTING_DEPTH} parentheses"),
                        ));
                    }
                } else if c == ')' {
                    depth = depth.saturating_sub(1);
                }
                toks.push((Tok::Sym(c), i));
                i += 1;
            } else {
                return Err(err(i, format!("unexpected character `{c}`")));
            }
        }
        Ok(Lexer { src, toks, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn position(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, p)| p)
            .unwrap_or(self.src.len())
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let p = self.position();
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            _ => Err(err(p, format!("expected keyword `{kw}`"))),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        let p = self.position();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(err(p, "expected identifier")),
        }
    }

    fn sym(&mut self, c: char) -> Result<()> {
        let p = self.position();
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            _ => Err(err(p, format!("expected `{c}`"))),
        }
    }

    fn try_sym(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn int(&mut self) -> Result<i64> {
        let p = self.position();
        match self.next() {
            Some(Tok::Int(v)) => Ok(v),
            _ => Err(err(p, "expected integer literal")),
        }
    }

    fn number(&mut self) -> Result<f64> {
        let p = self.position();
        match self.next() {
            Some(Tok::Int(v)) => Ok(v as f64),
            Some(Tok::Float(v)) => Ok(v),
            _ => Err(err(p, "expected numeric literal")),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

/// Parse a single statement.
pub fn parse(src: &str) -> Result<Statement> {
    let mut lx = Lexer::new(src)?;
    let stmt = if lx.try_keyword("create") {
        parse_create(&mut lx)?
    } else {
        Statement::Select(parse_select(&mut lx)?)
    };
    if !lx.at_end() {
        return Err(err(lx.position(), "trailing input after statement"));
    }
    Ok(stmt)
}

fn parse_create(lx: &mut Lexer<'_>) -> Result<Statement> {
    lx.keyword("mpfview")?;
    let name = lx.ident()?;
    lx.keyword("as")?;
    let parenthesized = lx.try_sym('(');
    lx.keyword("select")?;

    // Select list: variable names and exactly one measure item.
    let mut vars = Vec::new();
    let mut combine: Option<Combine> = None;
    loop {
        if lx.try_keyword("measure") {
            lx.sym('=')?;
            lx.sym('(')?;
            let p = lx.position();
            combine = Some(match lx.next() {
                Some(Tok::Sym('*')) => Combine::Product,
                Some(Tok::Sym('+')) => Combine::Sum,
                Some(Tok::Ident(s)) if s == "and" => Combine::And,
                _ => return Err(err(p, "expected combine operation `*`, `+`, or `and`")),
            });
            // List of measure references: `alias.field` (or bare field).
            loop {
                lx.ident()?;
                if lx.try_sym('.') {
                    lx.ident()?;
                }
                if !lx.try_sym(',') {
                    break;
                }
            }
            lx.sym(')')?;
        } else {
            vars.push(lx.ident()?);
        }
        if !lx.try_sym(',') {
            break;
        }
    }
    let combine = combine.ok_or_else(|| {
        err(
            lx.position(),
            "view definition requires a `measure = (<op> ...)` item",
        )
    })?;

    lx.keyword("from")?;
    let mut tables = Vec::new();
    loop {
        let table = lx.ident()?;
        // Optional alias (an identifier that is not a clause keyword).
        if matches!(lx.peek(), Some(Tok::Ident(s)) if s != "where" && s != "and") {
            lx.ident()?;
        }
        tables.push(table);
        if !lx.try_sym(',') {
            break;
        }
    }

    // Optional joinquals: column = column, informational only.
    if lx.try_keyword("where") {
        loop {
            parse_colref(lx)?;
            lx.sym('=')?;
            parse_colref(lx)?;
            if !lx.try_keyword("and") {
                break;
            }
        }
    }
    if parenthesized {
        lx.sym(')')?;
    }
    Ok(Statement::CreateView {
        name,
        tables,
        combine,
        vars,
    })
}

fn parse_colref(lx: &mut Lexer<'_>) -> Result<String> {
    let first = lx.ident()?;
    if lx.try_sym('.') {
        Ok(lx.ident()?)
    } else {
        Ok(first)
    }
}

fn parse_select(lx: &mut Lexer<'_>) -> Result<Query> {
    lx.keyword("select")?;
    let mut select_vars: Vec<String> = Vec::new();
    let mut agg: Option<Aggregate> = None;
    loop {
        let p = lx.position();
        let name = lx.ident()?;
        match name.as_str() {
            "sum" | "min" | "max" | "or_agg" => {
                if agg.is_some() {
                    return Err(err(p, "multiple aggregates in select list"));
                }
                agg = Some(match name.as_str() {
                    "sum" => Aggregate::Sum,
                    "min" => Aggregate::Min,
                    "max" => Aggregate::Max,
                    _ => Aggregate::Or,
                });
                lx.sym('(')?;
                lx.ident()?; // measure field name, e.g. `inv`, `p`, `f`
                lx.sym(')')?;
            }
            _ => select_vars.push(name),
        }
        if !lx.try_sym(',') {
            break;
        }
    }
    let agg = agg.ok_or_else(|| err(lx.position(), "select list requires an aggregate"))?;

    lx.keyword("from")?;
    let view = lx.ident()?;

    let mut filters: Vec<(String, Value)> = Vec::new();
    if lx.try_keyword("where") {
        loop {
            let var = lx.ident()?;
            lx.sym('=')?;
            let p = lx.position();
            let v = lx.int()?;
            if v < 0 || v > u32::MAX as i64 {
                return Err(err(p, "predicate constant out of range"));
            }
            filters.push((var, v as Value));
            if !lx.try_keyword("and") {
                break;
            }
        }
    }

    let mut group_vars: Vec<String> = Vec::new();
    if lx.try_keyword("group") {
        lx.keyword("by")?;
        loop {
            group_vars.push(lx.ident()?);
            if !lx.try_sym(',') {
                break;
            }
        }
    }
    // The select list must agree with the group-by list (SQL semantics).
    for v in &select_vars {
        if !group_vars.contains(v) {
            return Err(err(
                0,
                format!("select variable `{v}` does not appear in group by"),
            ));
        }
    }

    let mut having = None;
    if lx.try_keyword("having") {
        lx.ident()?; // measure field name
        let p = lx.position();
        let cmp = match (lx.next(), lx.try_sym('=')) {
            (Some(Tok::Sym('<')), true) => RangePredicate::LessEq,
            (Some(Tok::Sym('<')), false) => RangePredicate::Less,
            (Some(Tok::Sym('>')), true) => RangePredicate::GreaterEq,
            (Some(Tok::Sym('>')), false) => RangePredicate::Greater,
            _ => return Err(err(p, "expected comparison `<`, `>`, `<=`, or `>=`")),
        };
        let bound = lx.number()?;
        having = Some((cmp, bound));
    }

    let mut strategy = Strategy::Auto;
    if lx.try_keyword("using") {
        strategy = parse_strategy(lx)?;
    }

    let mut q = Query::on(view)
        .group_by(group_vars)
        .aggregate(agg)
        .strategy(strategy);
    for (var, val) in filters {
        q = q.filter(var, val);
    }
    if let Some((cmp, bound)) = having {
        q = q.having(cmp, bound);
    }
    Ok(q)
}

fn parse_strategy(lx: &mut Lexer<'_>) -> Result<Strategy> {
    let p = lx.position();
    let name = lx.ident()?;
    Ok(match name.as_str() {
        "naive" => Strategy::Naive,
        "auto" => Strategy::Auto,
        "cs" => Strategy::Cs,
        "csplus" | "cs_plus" => Strategy::CsPlusLinear,
        "csplus_nonlinear" | "nonlinear" => Strategy::CsPlusNonlinear,
        "ve" => Strategy::Ve(parse_heuristic(lx)?),
        "veplus" | "ve_ext" => Strategy::VePlus(parse_heuristic(lx)?),
        other => return Err(err(p, format!("unknown strategy `{other}`"))),
    })
}

fn parse_heuristic(lx: &mut Lexer<'_>) -> Result<Heuristic> {
    lx.sym('(')?;
    let p = lx.position();
    let name = lx.ident()?;
    let h = match name.as_str() {
        "deg" | "degree" => Heuristic::Degree,
        "width" => Heuristic::Width,
        "elim_cost" | "elimcost" => Heuristic::ElimCost,
        "deg_width" => Heuristic::DegreeWidth,
        "deg_elim_cost" => Heuristic::DegreeElimCost,
        "random" => {
            let seed = if lx.try_sym(':') { lx.int()? as u64 } else { 0 };
            lx.sym(')')?;
            return Ok(Heuristic::Random(seed));
        }
        other => return Err(err(p, format!("unknown heuristic `{other}`"))),
    };
    lx.sym(')')?;
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_view_definition() {
        let stmt = parse(
            "create mpfview invest as (select pid, sid, wid, cid, tid, \
             measure = (* c.price, l.quantity, w.overhead, ct.discount, t.overhead) \
             from contracts c, location l, warehouses w, ctdeals ct, transporters t \
             where c.pid = l.pid and l.wid = w.wid and w.cid = ct.cid and ct.tid = t.tid)",
        )
        .unwrap();
        match stmt {
            Statement::CreateView {
                name,
                tables,
                combine,
                vars,
            } => {
                assert_eq!(name, "invest");
                assert_eq!(
                    tables,
                    vec!["contracts", "location", "warehouses", "ctdeals", "transporters"]
                );
                assert_eq!(combine, Combine::Product);
                assert_eq!(vars, vec!["pid", "sid", "wid", "cid", "tid"]);
            }
            _ => panic!("expected create view"),
        }
    }

    #[test]
    fn parses_paper_queries() {
        // Q1 of Section 5.
        let q = match parse("select wid, sum(inv) from invest group by wid").unwrap() {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        assert_eq!(q.view, "invest");
        assert_eq!(q.group_vars, vec!["wid"]);
        assert_eq!(q.agg, Aggregate::Sum);
        assert!(q.filters.is_empty());

        // Constrained-domain example.
        let q = match parse("select cid, sum(inv) from invest where tid = 1 group by cid")
            .unwrap()
        {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        assert_eq!(q.filters, vec![("tid".to_string(), 1)]);

        // Min aggregate.
        let q = match parse("select pid, min(inv) from invest group by pid").unwrap() {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        assert_eq!(q.agg, Aggregate::Min);
    }

    #[test]
    fn parses_strategies() {
        for (src, want) in [
            ("using naive", Strategy::Naive),
            ("using cs", Strategy::Cs),
            ("using csplus", Strategy::CsPlusLinear),
            ("using csplus_nonlinear", Strategy::CsPlusNonlinear),
            ("using ve(degree)", Strategy::Ve(Heuristic::Degree)),
            ("using ve(width)", Strategy::Ve(Heuristic::Width)),
            ("using ve(random:7)", Strategy::Ve(Heuristic::Random(7))),
            (
                "using veplus(deg_elim_cost)",
                Strategy::VePlus(Heuristic::DegreeElimCost),
            ),
        ] {
            let q = match parse(&format!(
                "select wid, sum(f) from invest group by wid {src}"
            ))
            .unwrap()
            {
                Statement::Select(q) => q,
                _ => panic!(),
            };
            assert_eq!(q.strategy, want, "{src}");
        }
    }

    #[test]
    fn parses_having() {
        let q = match parse("select wid, sum(f) from v group by wid having f < 100").unwrap() {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        assert_eq!(q.having, Some((RangePredicate::Less, 100.0)));
        let q = match parse("select wid, sum(f) from v group by wid having f >= 2.5").unwrap() {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        assert_eq!(q.having, Some((RangePredicate::GreaterEq, 2.5)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("select from v").is_err());
        assert!(parse("select wid from v group by wid").is_err()); // no aggregate
        assert!(parse("select wid, sum(f) from v group by cid").is_err()); // mismatch
        assert!(parse("select wid, sum(f) from v group by wid using bogus").is_err());
        assert!(parse("create mpfview x as select a from t").is_err()); // no measure
        assert!(parse("select wid, sum(f) from v group by wid extra").is_err());
        assert!(parse("select wid, sum(f) from v where tid = abc group by wid").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Ten thousand nested parentheses must produce a typed parse
        // error, not exhaust the stack.
        let bomb = format!(
            "create mpfview v as {}select a, measure = (* r.f) from r{}",
            "(".repeat(10_000),
            ")".repeat(10_000)
        );
        match parse(&bomb) {
            Err(EngineError::Parse { message, .. }) => {
                assert!(message.contains("nesting"), "{message}")
            }
            other => panic!("expected nesting error, got {other:?}"),
        }
        // The cap leaves ordinary parenthesized statements untouched.
        assert!(parse(
            "create mpfview v as (select a, measure = (* r.f) from r)"
        )
        .is_ok());
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse("SELECT wid, SUM(inv) FROM invest GROUP BY wid").unwrap();
        assert!(matches!(q, Statement::Select(_)));
    }

    #[test]
    fn boolean_semiring_view() {
        let stmt = parse(
            "create mpfview reach as select a, b, measure = (and r.f, s.f) from r, s",
        )
        .unwrap();
        match stmt {
            Statement::CreateView { combine, .. } => assert_eq!(combine, Combine::And),
            _ => panic!(),
        }
    }
}
