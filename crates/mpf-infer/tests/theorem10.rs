//! Theorem 10: the set of tables cached by VE-cache is exactly the schema
//! that results from triangulating the variable graph with the same
//! elimination order — i.e. VE-cache implements the GDL all-vertex
//! algorithm. Checked structurally on random orders over random schemas.

use std::collections::BTreeSet;

use mpf_algebra::ExecContext;
use mpf_infer::{triangulate, VariableGraph, VeCache};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

/// Random connected-ish schema: relations over windows of a variable chain
/// plus optional extra edges via wider windows.
fn instance() -> impl Strategy<Value = (Vec<u64>, Vec<(usize, usize)>, u64)> {
    (3usize..=6, 2usize..=5, 0u64..500).prop_flat_map(|(nvars, nrels, seed)| {
        let domains = proptest::collection::vec(2u64..=3, nvars);
        let window = (0..nvars, 1usize..=3).prop_map(move |(s, l)| {
            let start = s.min(nvars - 1);
            (start, l.min(nvars - start))
        });
        let windows = proptest::collection::vec(window, nrels);
        (domains, windows, Just(seed))
    })
}

fn build(
    domains: &[u64],
    windows: &[(usize, usize)],
    seed: u64,
) -> (Catalog, Vec<FunctionalRelation>) {
    let mut cat = Catalog::new();
    let ids: Vec<VarId> = domains
        .iter()
        .enumerate()
        .map(|(i, &d)| cat.add_var(&format!("x{i}"), d).unwrap())
        .collect();
    let rels = windows
        .iter()
        .enumerate()
        .map(|(ri, &(s, l))| {
            FunctionalRelation::complete(
                format!("r{ri}"),
                Schema::new(ids[s..s + l].to_vec()).unwrap(),
                &cat,
                |row| ((row.iter().sum::<u32>() + ri as u32 + seed as u32) % 5 + 1) as f64,
            )
        })
        .collect();
    (cat, rels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_schemas_are_triangulation_cliques((domains, windows, seed) in instance()) {
        let (_, rels) = build(&domains, &windows, seed);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();

        // Build the cache with its default (min-fill) order, then
        // triangulate the variable graph with the *same* order.
        let cache = VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &refs, None).unwrap();
        let graph = VariableGraph::from_schemas(rels.iter().map(|r| r.schema()));
        let tri = triangulate::triangulate(&graph, cache.order());

        // Claim 1 of Theorem 10: every cached table's schema is an
        // elimination clique of the triangulation, and every *maximal*
        // clique appears among the cached tables.
        let cached: Vec<BTreeSet<VarId>> = cache
            .tables()
            .iter()
            .map(|t| t.schema().iter().collect())
            .collect();
        for c in &cached {
            prop_assert!(
                tri.cliques.iter().any(|k| c == k),
                "cached schema {c:?} is not an elimination clique"
            );
        }
        for m in tri.maximal_cliques() {
            prop_assert!(
                cached.contains(&m),
                "maximal clique {m:?} not cached"
            );
        }

        // Claim 2: the cached tables form an acyclic schema (join tree with
        // the running-intersection property exists over the producer edges).
        prop_assert!(cache.verify_tree_rip());
    }
}
