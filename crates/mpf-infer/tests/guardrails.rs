//! Budget and fault coverage of the inference entry points: VE-cache
//! construction, BP calibration, junction-tree population, and Bayesian
//! marginals all run inside an [`ExecContext`], so cell budgets, deadlines,
//! and injected faults trip with typed errors instead of unbounded work.
//!
//! Fault arms additionally need `--features fault-injection`.

use mpf_algebra::{AlgebraError, ExecContext, ExecLimits, ResourceKind};
use mpf_infer::{bp, BayesNet, InferError, JunctionTree, VeCache};
use mpf_optimizer::{Algorithm, Heuristic};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};

/// r0(x0, x1), r1(x1, x2), ... — an acyclic chain of complete relations.
fn chain(cat: &mut Catalog, n: usize, dom: u64) -> Vec<FunctionalRelation> {
    let vars: Vec<VarId> = (0..=n)
        .map(|i| cat.add_var(&format!("x{i}"), dom).unwrap())
        .collect();
    (0..n)
        .map(|i| {
            FunctionalRelation::complete(
                format!("r{i}"),
                Schema::new(vec![vars[i], vars[i + 1]]).unwrap(),
                cat,
                |row| ((row[0] * 3 + row[1] * 7 + i as u32) % 5 + 1) as f64 / 2.0,
            )
        })
        .collect()
}

/// The Figure 12 cyclic supply chain — forces multi-relation cliques, so
/// junction-tree population actually joins.
fn cyclic_family(cat: &mut Catalog) -> Vec<FunctionalRelation> {
    let pid = cat.add_var("pid", 2).unwrap();
    let sid = cat.add_var("sid", 2).unwrap();
    let wid = cat.add_var("wid", 2).unwrap();
    let cid = cat.add_var("cid", 2).unwrap();
    let tid = cat.add_var("tid", 2).unwrap();
    let mk = |name: &str, vars: Vec<VarId>, salt: u32| {
        FunctionalRelation::complete(name, Schema::new(vars).unwrap(), cat, move |row| {
            ((row.iter().sum::<u32>() + salt) % 3 + 1) as f64 / 2.0
        })
    };
    vec![
        mk("contracts", vec![pid, sid], 0),
        mk("warehouses", vec![wid, cid], 1),
        mk("transporters", vec![tid], 2),
        mk("location", vec![pid, wid], 3),
        mk("ctdeals", vec![cid, tid], 4),
        mk("stdeals", vec![sid, tid], 5),
    ]
}

fn tripped_on_cells(err: InferError) -> bool {
    matches!(
        err,
        InferError::Algebra(AlgebraError::ResourceExhausted {
            resource: ResourceKind::TotalCells,
            ..
        })
    )
}

fn tiny_cells(sr: SemiringKind) -> ExecContext<'static> {
    ExecContext::with_limits(sr, ExecLimits::none().with_max_total_cells(4))
}

#[test]
fn vecache_build_respects_cell_budget() {
    let mut cat = Catalog::new();
    let rels = chain(&mut cat, 4, 3);
    let refs: Vec<&FunctionalRelation> = rels.iter().collect();
    let sr = SemiringKind::SumProduct;

    let mut cx = tiny_cells(sr);
    assert!(tripped_on_cells(
        VeCache::build_in(&mut cx, &refs, None).unwrap_err()
    ));

    // The same construction under no limits succeeds and reports its work
    // in the caller's context.
    let mut cx = ExecContext::new(sr);
    let cache = VeCache::build_in(&mut cx, &refs, None).unwrap();
    assert!(!cache.tables().is_empty());
    assert!(cx.stats().group_bys > 0, "forward-pass eliminations recorded");
    assert!(cx.stats().rows_processed > 0);
}

#[test]
fn bp_calibration_respects_cell_budget() {
    let mut cat = Catalog::new();
    let rels = chain(&mut cat, 4, 3);
    let refs: Vec<&FunctionalRelation> = rels.iter().collect();
    let sr = SemiringKind::SumProduct;

    let mut cx = tiny_cells(sr);
    assert!(tripped_on_cells(
        bp::bp_acyclic_in(&mut cx, &refs).unwrap_err()
    ));

    let mut cx = ExecContext::new(sr);
    let (tables, program) = bp::bp_acyclic_in(&mut cx, &refs).unwrap();
    assert_eq!(tables.len(), refs.len());
    assert!(!program.is_empty());
    // Semijoins decompose into joins + group-bys, all on the context.
    assert!(cx.stats().joins > 0);
    assert!(cx.stats().group_bys > 0);
}

#[test]
fn junction_population_respects_cell_budget() {
    let mut cat = Catalog::new();
    let rels = cyclic_family(&mut cat);
    let schemas: Vec<Schema> = rels.iter().map(|r| r.schema().clone()).collect();
    let jt = JunctionTree::from_schemas(&schemas, None).unwrap();
    let refs: Vec<&FunctionalRelation> = rels.iter().collect();
    let sr = SemiringKind::SumProduct;

    let mut cx = tiny_cells(sr);
    assert!(tripped_on_cells(
        jt.populate_in(&mut cx, &refs, &cat).unwrap_err()
    ));

    let mut cx = ExecContext::new(sr);
    let tables = jt.populate_in(&mut cx, &refs, &cat).unwrap();
    assert_eq!(tables.len(), jt.cliques.len());
    assert!(cx.stats().joins > 0, "clique population joins recorded");
}

#[test]
fn bayes_marginal_respects_cell_budget() {
    let bn = BayesNet::sprinkler();
    let wet = bn.catalog().var("wet").unwrap();
    let algo = Algorithm::Ve(Heuristic::Degree);

    let err = bn
        .marginal(&[wet], &[], algo, ExecLimits::none().with_max_total_cells(2))
        .unwrap_err();
    assert!(tripped_on_cells(err));

    let (rel, stats) = bn.marginal(&[wet], &[], algo, ExecLimits::none()).unwrap();
    assert_eq!(rel.len(), 2);
    assert!(stats.rows_scanned > 0);
    assert!(stats.joins > 0);
    assert!(stats.group_bys > 0);
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use std::sync::Mutex;

    use mpf_algebra::fault;

    /// The fault registry is process-global; serialize the tests that arm it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn injected(err: InferError) -> bool {
        matches!(err, InferError::Algebra(AlgebraError::FaultInjected(_)))
    }

    /// Every inference entry point has its own fault site: arming it fails
    /// exactly that call, and the arm disarms after firing so a retry
    /// succeeds (the engine's fallback-chain contract).
    #[test]
    fn inference_entry_sites_fire_and_disarm() {
        let _g = lock();
        fault::clear_all();
        let mut cat = Catalog::new();
        let rels = chain(&mut cat, 3, 2);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let sr = SemiringKind::SumProduct;

        fault::inject("vecache::build", 1);
        assert!(injected(VeCache::build_in(&mut ExecContext::new(sr), &refs, None).unwrap_err()));
        assert!(VeCache::build_in(&mut ExecContext::new(sr), &refs, None).is_ok());

        fault::inject("bp::calibrate", 1);
        assert!(injected(bp::bp_acyclic(sr, &refs).unwrap_err()));
        assert!(bp::bp_acyclic(sr, &refs).is_ok());

        let schemas: Vec<Schema> = rels.iter().map(|r| r.schema().clone()).collect();
        let jt = JunctionTree::from_schemas(&schemas, None).unwrap();
        fault::inject("junction::populate", 1);
        assert!(injected(jt.populate_in(&mut ExecContext::new(sr), &refs, &cat).unwrap_err()));
        assert!(jt.populate_in(&mut ExecContext::new(sr), &refs, &cat).is_ok());

        let bn = BayesNet::sprinkler();
        let wet = bn.catalog().var("wet").unwrap();
        let algo = Algorithm::Ve(Heuristic::Degree);
        fault::inject("bayes::marginal", 1);
        assert!(injected(
            bn.marginal(&[wet], &[], algo, ExecLimits::none()).unwrap_err()
        ));
        assert!(bn.marginal(&[wet], &[], algo, ExecLimits::none()).is_ok());
        fault::clear_all();
    }

    /// A fault deep inside a construction does not lose the work already
    /// recorded on the caller's context.
    #[test]
    fn fault_mid_build_keeps_accumulated_stats() {
        let _g = lock();
        fault::clear_all();
        let mut cat = Catalog::new();
        let rels = chain(&mut cat, 3, 2);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();

        // Fail the backward pass's first update semijoin: by then the
        // forward pass has already run its eliminations.
        fault::inject("update_semijoin", 1);
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        assert!(injected(VeCache::build_in(&mut cx, &refs, None).unwrap_err()));
        assert!(
            cx.stats().group_bys > 0,
            "forward-pass work survives the fault"
        );
        fault::clear_all();
    }
}
