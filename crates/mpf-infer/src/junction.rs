//! Join trees and the Junction Tree algorithm (Algorithm 5, Theorem 7).
//!
//! A **join tree** over a family of variable sets is a spanning forest with
//! the *running-intersection property* (RIP): for any two nodes, their
//! shared variables appear in every node on the path between them. By
//! Theorem 7 (Maier) a schema is acyclic iff such a tree exists; the
//! classical construction is a maximum-weight spanning forest where edge
//! weights are intersection cardinalities, followed by a RIP check.
//!
//! The **Junction Tree algorithm** (Algorithm 5) turns a *cyclic* schema
//! into an acyclic one: triangulate the variable graph, take the maximal
//! elimination cliques as the new schema, assign each original relation to
//! a clique containing its variables, and populate each clique by product
//! join (padding with identity measures where a clique variable is covered
//! by no assigned relation).

use std::collections::BTreeSet;

use mpf_algebra::ExecContext;
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};

use crate::triangulate::{min_fill_order, triangulate};
use crate::{InferError, Result, VariableGraph};

/// A spanning forest over a family of variable sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    /// Number of nodes.
    pub n: usize,
    /// Undirected tree edges (node index pairs).
    pub edges: Vec<(usize, usize)>,
}

impl JoinTree {
    /// Build a maximum-weight spanning forest over `sets`, where the weight
    /// of `(i, j)` is `|sets[i] ∩ sets[j]|` and zero-weight edges are never
    /// added (disconnected families yield a forest).
    pub fn build(sets: &[BTreeSet<VarId>]) -> JoinTree {
        let n = sets.len();
        let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let w = sets[i].intersection(&sets[j]).count();
                if w > 0 {
                    candidates.push((w, i, j));
                }
            }
        }
        // Kruskal, heaviest first; deterministic tie-break on indices.
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut dsu: Vec<usize> = (0..n).collect();
        fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
            if dsu[x] != x {
                let r = find(dsu, dsu[x]);
                dsu[x] = r;
            }
            dsu[x]
        }
        let mut edges = Vec::new();
        for (_, i, j) in candidates {
            let (ri, rj) = (find(&mut dsu, i), find(&mut dsu, j));
            if ri != rj {
                dsu[ri] = rj;
                edges.push((i, j));
            }
        }
        JoinTree { n, edges }
    }

    /// Neighbours of node `i`.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == i {
                    Some(b)
                } else if b == i {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Connected components (each a list of node indices).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                for v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        comp.push(v);
                        stack.push(v);
                    }
                }
            }
            out.push(comp);
        }
        out
    }

    /// BFS traversal of `root`'s component: `(node, parent)` pairs with the
    /// root first (`parent = None`).
    pub fn bfs_from(&self, root: usize) -> Vec<(usize, Option<usize>)> {
        let mut seen = vec![false; self.n];
        seen[root] = true;
        let mut order = vec![(root, None)];
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    order.push((v, Some(u)));
                    queue.push_back(v);
                }
            }
        }
        order
    }

    /// Verify the running-intersection property: for every pair of nodes in
    /// the same component, their intersection is contained in every node on
    /// the tree path between them. Quadratic; intended for construction-time
    /// validation and tests.
    pub fn verify_rip(&self, sets: &[BTreeSet<VarId>]) -> bool {
        for i in 0..self.n {
            // Single BFS from i recording paths.
            let mut parent: Vec<Option<usize>> = vec![None; self.n];
            let mut seen = vec![false; self.n];
            seen[i] = true;
            let mut queue = std::collections::VecDeque::from([i]);
            while let Some(u) = queue.pop_front() {
                for v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        parent[v] = Some(u);
                        queue.push_back(v);
                    }
                }
            }
            for j in 0..self.n {
                if i == j || !seen[j] {
                    continue;
                }
                let shared: BTreeSet<VarId> =
                    sets[i].intersection(&sets[j]).copied().collect();
                if shared.is_empty() {
                    continue;
                }
                // Walk j -> i.
                let mut node = j;
                while let Some(p) = parent[node] {
                    if !shared.is_subset(&sets[node]) {
                        return false;
                    }
                    node = p;
                }
            }
        }
        true
    }
}

/// The result of the Junction Tree algorithm over a set of base relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JunctionTree {
    /// The new schema: maximal cliques of the triangulated variable graph.
    pub cliques: Vec<BTreeSet<VarId>>,
    /// Join tree over the cliques (guaranteed to satisfy RIP).
    pub tree: JoinTree,
    /// For each base relation, the clique it was assigned to.
    pub assignment: Vec<usize>,
    /// The elimination order used for triangulation.
    pub order: Vec<VarId>,
}

impl JunctionTree {
    /// Steps 1–4 of Algorithm 5: build the variable graph, triangulate with
    /// `order` (min-fill by default), form the maximal-clique schema, and
    /// assign every base relation to a clique containing its variables.
    pub fn from_schemas(schemas: &[Schema], order: Option<&[VarId]>) -> Result<JunctionTree> {
        let graph = VariableGraph::from_schemas(schemas.iter());
        let order: Vec<VarId> = match order {
            Some(o) => o.to_vec(),
            None => min_fill_order(&graph),
        };
        let tri = triangulate(&graph, &order);
        let cliques = tri.maximal_cliques();
        debug_assert!(tri.filled.is_chordal());

        let mut assignment = Vec::with_capacity(schemas.len());
        for s in schemas {
            let vars: BTreeSet<VarId> = s.iter().collect();
            let clique = cliques
                .iter()
                .position(|c| vars.is_subset(c))
                .expect("every relation schema is a clique of the filled graph");
            assignment.push(clique);
        }

        let tree = JoinTree::build(&cliques);
        if !tree.verify_rip(&cliques) {
            // Cannot happen for maximal cliques of a chordal graph; guards
            // against future regressions.
            return Err(InferError::CyclicSchema);
        }
        Ok(JunctionTree {
            cliques,
            tree,
            assignment,
            order,
        })
    }

    /// Step 5 of Algorithm 5: populate each clique table as the product
    /// join of its assigned base relations, inside a caller-owned
    /// [`ExecContext`] — the clique-building joins run under the context's
    /// budget, deadline, cancellation, tracing, and fault hooks. Clique
    /// variables covered by no assigned relation are padded with a
    /// complete identity relation (measure `one`), so each clique table
    /// spans its full variable set.
    ///
    /// With more than one worker thread (`cx.threads()`), independent
    /// clique tables are built concurrently: contiguous chunks of cliques
    /// go to scoped workers, each with a forked context charging the same
    /// shared budget. Tables come back in clique order, worker stats are
    /// merged into `cx` (the merge is commutative, so totals equal the
    /// sequential run), and on failure the reported error is the one from
    /// the lowest-numbered failing clique — identical to what the
    /// sequential path would surface.
    pub fn populate_in(
        &self,
        cx: &mut ExecContext<'_>,
        rels: &[&FunctionalRelation],
        catalog: &Catalog,
    ) -> Result<Vec<FunctionalRelation>> {
        cx.span_phase("junction::populate");
        let result = self.populate_inner(cx, rels, catalog);
        cx.span_close(|| result.as_ref().err().map(|e| e.to_string()));
        result
    }

    fn populate_inner(
        &self,
        cx: &mut ExecContext<'_>,
        rels: &[&FunctionalRelation],
        catalog: &Catalog,
    ) -> Result<Vec<FunctionalRelation>> {
        cx.fault("junction::populate")?;
        assert_eq!(rels.len(), self.assignment.len());
        let mut buckets: Vec<Vec<&FunctionalRelation>> = vec![Vec::new(); self.cliques.len()];
        for (r, &c) in rels.iter().zip(&self.assignment) {
            buckets[c].push(r);
        }

        let workers = cx.threads().min(self.cliques.len());
        if workers <= 1 {
            let mut out = Vec::with_capacity(self.cliques.len());
            for (c, parts) in buckets.iter().enumerate() {
                out.push(self.build_clique(cx, c, parts, catalog)?);
            }
            return Ok(out);
        }

        // Per worker: the built (clique index, table) pairs of its chunk,
        // plus the stats and trace its forked context accumulated.
        type WorkerOut = (
            Vec<(usize, Result<FunctionalRelation>)>,
            mpf_algebra::ExecStats,
            mpf_algebra::TraceTree,
        );
        let chunk = self.cliques.len().div_ceil(workers);
        let worker_out: Vec<WorkerOut> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for start in (0..buckets.len()).step_by(chunk) {
                    let end = (start + chunk).min(buckets.len());
                    let slice = &buckets[start..end];
                    let mut wcx = cx.fork();
                    handles.push((
                        start,
                        scope.spawn(move || {
                            let mut built = Vec::with_capacity(slice.len());
                            for (off, parts) in slice.iter().enumerate() {
                                built.push((
                                    start + off,
                                    self.build_clique(&mut wcx, start + off, parts, catalog),
                                ));
                            }
                            (built, wcx.take_stats(), wcx.take_trace())
                        }),
                    ));
                }
                handles
                    .into_iter()
                    .map(|(start, h)| {
                        h.join().unwrap_or_else(|_| {
                            (
                                vec![(start, Err(worker_panicked()))],
                                mpf_algebra::ExecStats::default(),
                                mpf_algebra::TraceTree::default(),
                            )
                        })
                    })
                    .collect()
            });

        let mut slots: Vec<Option<Result<FunctionalRelation>>> =
            (0..self.cliques.len()).map(|_| None).collect();
        // Workers come back in chunk (clique) order, so grafted trace
        // spans land deterministically regardless of thread count.
        for (built, stats, trace) in worker_out {
            cx.absorb(stats);
            cx.absorb_trace(trace);
            for (idx, res) in built {
                slots[idx] = Some(res);
            }
        }
        let mut out = Vec::with_capacity(self.cliques.len());
        for slot in slots {
            // A `None` slot means the chunk's worker stopped early (its
            // own error sits at a lower clique index, so `?` fires there
            // first) or panicked before reaching this clique.
            out.push(slot.unwrap_or_else(|| Err(worker_panicked()))?);
        }
        Ok(out)
    }

    /// Build one clique table: fold the assigned relations with product
    /// join, then pad uncovered clique variables with an identity relation.
    fn build_clique(
        &self,
        cx: &mut ExecContext<'_>,
        c: usize,
        parts: &[&FunctionalRelation],
        catalog: &Catalog,
    ) -> Result<FunctionalRelation> {
        let sr = cx.semiring();
        let mut table: Option<FunctionalRelation> = None;
        for r in parts {
            table = Some(match table.take() {
                None => (*r).clone(),
                Some(t) => mpf_algebra::sparse::join_auto(cx, &t, r)?,
            });
        }
        let clique_vars: Vec<VarId> = self.cliques[c].iter().copied().collect();
        let rel = match table {
            Some(t) => {
                let missing: Vec<VarId> = clique_vars
                    .iter()
                    .copied()
                    .filter(|&v| !t.schema().contains(v))
                    .collect();
                if missing.is_empty() {
                    t
                } else {
                    let pad = identity_relation(sr, &missing, catalog);
                    mpf_algebra::sparse::join_auto(cx, &t, &pad)?
                }
            }
            None => identity_relation(sr, &clique_vars, catalog),
        };
        Ok(rel.with_name(format!("clique{c}")))
    }
}

fn worker_panicked() -> InferError {
    InferError::Algebra(mpf_algebra::AlgebraError::Internal(
        "clique population worker panicked".into(),
    ))
}

/// A complete relation over `vars` whose every measure is the semiring's
/// multiplicative identity — the "implicit measure 1" of Section 2.
pub fn identity_relation(
    sr: SemiringKind,
    vars: &[VarId],
    catalog: &Catalog,
) -> FunctionalRelation {
    let schema = Schema::new(vars.to_vec()).expect("identity vars unique");
    FunctionalRelation::complete("identity", schema, catalog, |_| sr.one())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn set(vars: &[u32]) -> BTreeSet<VarId> {
        vars.iter().map(|&i| v(i)).collect()
    }

    #[test]
    fn chain_join_tree_has_rip() {
        let sets = vec![set(&[0, 1]), set(&[1, 2]), set(&[2, 3])];
        let tree = JoinTree::build(&sets);
        assert_eq!(tree.edges.len(), 2);
        assert!(tree.verify_rip(&sets));
    }

    #[test]
    fn cyclic_family_fails_rip() {
        // Triangle of binary relations: any spanning tree breaks RIP.
        let sets = vec![set(&[0, 1]), set(&[1, 2]), set(&[0, 2])];
        let tree = JoinTree::build(&sets);
        assert!(!tree.verify_rip(&sets));
    }

    #[test]
    fn disconnected_components() {
        let sets = vec![set(&[0, 1]), set(&[1, 2]), set(&[5, 6])];
        let tree = JoinTree::build(&sets);
        assert_eq!(tree.edges.len(), 1);
        let comps = tree.components();
        assert_eq!(comps.len(), 2);
        assert!(tree.verify_rip(&sets));
    }

    #[test]
    fn bfs_parents() {
        let sets = vec![set(&[0, 1]), set(&[1, 2]), set(&[2, 3])];
        let tree = JoinTree::build(&sets);
        let order = tree.bfs_from(0);
        assert_eq!(order[0], (0, None));
        assert_eq!(order.len(), 3);
        // Every non-root has a parent already visited.
        let mut seen = std::collections::HashSet::new();
        for (node, parent) in order {
            if let Some(p) = parent {
                assert!(seen.contains(&p));
            }
            seen.insert(node);
        }
    }

    #[test]
    fn figure_15_junction_tree() {
        // Cyclic supply chain + stdeals; pid=0, sid=1, wid=2, cid=3, tid=4.
        let schemas = vec![
            Schema::new(vec![v(0), v(1)]).unwrap(), // contracts
            Schema::new(vec![v(2), v(3)]).unwrap(), // warehouses
            Schema::new(vec![v(4)]).unwrap(),       // transporters
            Schema::new(vec![v(0), v(2)]).unwrap(), // location
            Schema::new(vec![v(3), v(4)]).unwrap(), // ctdeals
            Schema::new(vec![v(1), v(4)]).unwrap(), // stdeals
        ];
        let jt = JunctionTree::from_schemas(&schemas, Some(&[v(4), v(1)])).unwrap();
        // Figure 15: three cliques {tid,cid,sid}, {sid,cid,pid}, {pid,wid,cid}.
        assert_eq!(jt.cliques.len(), 3);
        assert!(jt.cliques.contains(&set(&[4, 3, 1])));
        assert!(jt.cliques.contains(&set(&[1, 3, 0])));
        assert!(jt.cliques.contains(&set(&[0, 3, 2])));
        assert!(jt.tree.verify_rip(&jt.cliques));
        assert_eq!(jt.tree.edges.len(), 2);
        // Every relation's variables live inside its assigned clique.
        for (s, &c) in schemas.iter().zip(&jt.assignment) {
            let vars: BTreeSet<VarId> = s.iter().collect();
            assert!(vars.is_subset(&jt.cliques[c]));
        }
    }

    #[test]
    fn populate_pads_missing_vars() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 2).unwrap();
        let b = cat.add_var("b", 2).unwrap();
        let c = cat.add_var("c", 2).unwrap();
        let r1 = FunctionalRelation::complete(
            "r1",
            Schema::new(vec![a, b]).unwrap(),
            &cat,
            |row| (row[0] + 2 * row[1] + 1) as f64,
        );
        let r2 = FunctionalRelation::complete(
            "r2",
            Schema::new(vec![b, c]).unwrap(),
            &cat,
            |row| (row[0] + row[1] + 1) as f64,
        );
        let jt = JunctionTree::from_schemas(
            &[r1.schema().clone(), r2.schema().clone()],
            None,
        )
        .unwrap();
        let tables = jt
            .populate_in(&mut ExecContext::new(SemiringKind::SumProduct), &[&r1, &r2], &cat)
            .unwrap();
        assert_eq!(tables.len(), jt.cliques.len());
        for (t, c) in tables.iter().zip(&jt.cliques) {
            let tv: BTreeSet<VarId> = t.schema().iter().collect();
            assert_eq!(&tv, c);
            // Complete inputs -> complete clique tables.
            assert!(t.is_complete(&cat));
        }
    }

    #[test]
    fn identity_relation_spans_domain() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 3).unwrap();
        let id = identity_relation(SemiringKind::MinSum, &[a], &cat);
        assert_eq!(id.len(), 3);
        assert!(id.measures().iter().all(|&m| m == 0.0)); // MinSum one = 0
    }
}
