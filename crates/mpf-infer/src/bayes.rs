//! Bayesian networks as MPF views (Section 4).
//!
//! A Bayesian network factors a joint distribution into local conditional
//! distributions `Pr(node | parents)`, each stored as a *complete*
//! functional relation over `{parents..., node}` with the probability as
//! measure. The joint distribution is then exactly the MPF view
//! `cpt_1 ⨝* cpt_2 ⨝* ... ⨝* cpt_n` in the sum-product semiring, and
//! inference queries are MPF queries:
//!
//! ```sql
//! select C, SUM(p) from joint where A = 0 group by C   -- Pr(C | A = 0)
//! ```
//!
//! [`BayesNet::posterior`] compiles such a query, evaluates it with a
//! cost-based plan from `mpf-optimizer`, and normalizes;
//! [`BayesNet::joint`] provides the brute-force enumeration oracle used to
//! validate exactness.

use mpf_algebra::{ExecContext, ExecLimits, ExecStats, Executor, Plan, RelationStore};
use mpf_optimizer::physical::{choose_physical, PhysicalConfig};
use mpf_optimizer::{optimize, Algorithm, BaseRel, CostModel, OptContext, QuerySpec};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, Value, VarId};
use rand::Rng;
use rand::SeedableRng;

use crate::{InferError, Result};

/// A discrete Bayesian network over variables registered in its own catalog.
#[derive(Debug, Clone)]
pub struct BayesNet {
    catalog: Catalog,
    nodes: Vec<VarId>,
    parents: Vec<Vec<VarId>>,
    cpts: Vec<FunctionalRelation>,
}

/// Incremental builder for [`BayesNet`].
#[derive(Debug, Clone, Default)]
pub struct BayesNetBuilder {
    catalog: Catalog,
    nodes: Vec<VarId>,
    parents: Vec<Vec<VarId>>,
    tables: Vec<Option<Vec<f64>>>,
}

impl BayesNetBuilder {
    /// Start an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a variable with the given domain size. Returns its id.
    pub fn variable(&mut self, name: &str, domain: u64) -> Result<VarId> {
        let id = self.catalog.add_var(name, domain)?;
        self.nodes.push(id);
        self.parents.push(Vec::new());
        self.tables.push(None);
        Ok(id)
    }

    /// Attach a CPT to `node`. `probs` is indexed in odometer order over
    /// `(parents..., node)` — i.e. the probabilities of the node's values
    /// for one parent configuration are contiguous and must sum to 1.
    pub fn cpt(&mut self, node: VarId, parents: &[VarId], probs: Vec<f64>) -> Result<()> {
        let idx = self
            .nodes
            .iter()
            .position(|&n| n == node)
            .ok_or_else(|| InferError::MissingCpt(format!("{node}")))?;
        self.parents[idx] = parents.to_vec();
        self.tables[idx] = Some(probs);
        Ok(())
    }

    /// Validate and build the network.
    pub fn build(self) -> Result<BayesNet> {
        // Check topological consistency (parents declared before use is NOT
        // required, but the parent graph must be acyclic).
        let order = topo_order(&self.nodes, &self.parents).ok_or(InferError::CyclicNetwork)?;

        let mut cpts = Vec::with_capacity(self.nodes.len());
        for (i, &node) in self.nodes.iter().enumerate() {
            let name = self.catalog.name(node).to_string();
            let probs = self.tables[i]
                .clone()
                .ok_or_else(|| InferError::MissingCpt(name.clone()))?;
            let parents = &self.parents[i];
            let mut schema_vars = parents.clone();
            schema_vars.push(node);
            let schema = Schema::new(schema_vars)?;
            let expected: u64 = schema
                .iter()
                .map(|v| self.catalog.domain_size(v))
                .product();
            if probs.len() as u64 != expected {
                return Err(InferError::InvalidCpt(name));
            }
            let node_dom = self.catalog.domain_size(node) as usize;
            for chunk in probs.chunks(node_dom) {
                let sum: f64 = chunk.iter().sum();
                if chunk.iter().any(|&p| !(0.0..=1.0 + 1e-9).contains(&p))
                    || (sum - 1.0).abs() > 1e-6
                {
                    return Err(InferError::InvalidCpt(name));
                }
            }
            let mut iter = probs.into_iter();
            let cpt = FunctionalRelation::complete(
                format!("cpt_{name}"),
                schema,
                &self.catalog,
                |_| iter.next().expect("length validated"),
            );
            cpts.push(cpt);
        }
        let _ = order;
        Ok(BayesNet {
            catalog: self.catalog,
            nodes: self.nodes,
            parents: self.parents,
            cpts,
        })
    }
}

fn topo_order(nodes: &[VarId], parents: &[Vec<VarId>]) -> Option<Vec<VarId>> {
    let idx_of = |v: VarId| nodes.iter().position(|&n| n == v);
    let n = nodes.len();
    let mut indegree = vec![0usize; n];
    for (i, ps) in parents.iter().enumerate() {
        let _ = i;
        for &p in ps {
            idx_of(p)?;
        }
        indegree[i] = ps.len();
    }
    let mut order = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut removed = vec![false; n];
    while let Some(i) = ready.pop() {
        removed[i] = true;
        order.push(nodes[i]);
        for (j, ps) in parents.iter().enumerate() {
            if !removed[j] && ps.contains(&nodes[i]) {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
    }
    (order.len() == n).then_some(order)
}

impl BayesNet {
    /// The network's variable catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The network's variables in declaration order.
    pub fn nodes(&self) -> &[VarId] {
        &self.nodes
    }

    /// The parents of each node, parallel to [`BayesNet::nodes`].
    pub fn parents(&self) -> &[Vec<VarId>] {
        &self.parents
    }

    /// The CPTs — the base functional relations of the joint MPF view.
    pub fn cpts(&self) -> &[FunctionalRelation] {
        &self.cpts
    }

    /// Brute-force joint distribution (product join of every CPT) — the
    /// exponential-size oracle the MPF machinery is designed to avoid.
    pub fn joint(&self) -> Result<FunctionalRelation> {
        let cx = &mut ExecContext::new(SemiringKind::SumProduct);
        let mut acc = self.cpts[0].clone();
        for cpt in &self.cpts[1..] {
            acc = mpf_algebra::ops::product_join(cx, &acc, cpt)?;
        }
        Ok(acc.with_name("joint"))
    }

    /// Exact posterior `Pr(target | evidence)` computed as an MPF query
    /// (`select target, SUM(p) from joint where evidence group by target`)
    /// optimized with `algorithm` and normalized. Returns the distribution
    /// indexed by the target's domain values.
    pub fn posterior(
        &self,
        target: VarId,
        evidence: &[(VarId, Value)],
        algorithm: Algorithm,
    ) -> Result<Vec<f64>> {
        let (marginal, _) = self.marginal(&[target], evidence, algorithm, ExecLimits::none())?;
        let dom = self.catalog.domain_size(target) as usize;
        let mut out = vec![0.0; dom];
        for (row, m) in marginal.rows() {
            out[row[0] as usize] = m;
        }
        let z: f64 = out.iter().sum();
        if z > 0.0 {
            for p in &mut out {
                *p /= z;
            }
        }
        Ok(out)
    }

    /// Run an arbitrary (unnormalized) MPF query against the joint view
    /// under explicit [`ExecLimits`] (pass [`ExecLimits::none`] for an
    /// unbounded run): the optimized plan is lowered and interpreted
    /// inside one [`ExecContext`], so row and cell budgets, deadlines,
    /// and cancellation bound the inference work, and the returned
    /// [`ExecStats`] report it.
    pub fn marginal(
        &self,
        group_vars: &[VarId],
        evidence: &[(VarId, Value)],
        algorithm: Algorithm,
        limits: ExecLimits,
    ) -> Result<(FunctionalRelation, ExecStats)> {
        let sr = SemiringKind::SumProduct;
        let mut cx = ExecContext::with_limits(sr, limits);
        cx.fault("bayes::marginal")?;
        let store: RelationStore = self.cpts.iter().cloned().collect();
        let base: Vec<BaseRel> = self.cpts.iter().map(BaseRel::of).collect();
        let mut spec = QuerySpec::group_by(group_vars.iter().copied());
        for &(v, c) in evidence {
            spec = spec.filter(v, c);
        }
        let ctx = OptContext::new(&self.catalog, base, spec, CostModel::Io);
        let plan = optimize(&ctx, algorithm);
        let exec = Executor::new(&store, sr);
        // Cost-based physical selection (instead of the executor's default
        // hash lowering) so elimination steps over dense CPT grids run the
        // fused join→marginalize kernel and the sparse/parallel operators
        // apply where their estimates say they pay off.
        let physical = choose_physical(&ctx, &plan.plan, PhysicalConfig::default());
        let rel = exec.execute_physical_in(&mut cx, &physical)?;
        Ok((rel, cx.take_stats()))
    }

    /// The optimized plan for a posterior query (for inspection/EXPLAIN).
    pub fn plan(
        &self,
        group_vars: &[VarId],
        evidence: &[(VarId, Value)],
        algorithm: Algorithm,
    ) -> Plan {
        let base: Vec<BaseRel> = self.cpts.iter().map(BaseRel::of).collect();
        let mut spec = QuerySpec::group_by(group_vars.iter().copied());
        for &(v, c) in evidence {
            spec = spec.filter(v, c);
        }
        let ctx = OptContext::new(&self.catalog, base, spec, CostModel::Io);
        optimize(&ctx, algorithm).plan
    }

    /// Draw `n` ancestral samples. Returns rows in node declaration order.
    pub fn sample(&self, n: usize, seed: u64) -> Result<Vec<Vec<Value>>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let order = topo_order(&self.nodes, &self.parents).ok_or(InferError::CyclicNetwork)?;
        let cx = &mut ExecContext::new(SemiringKind::SumProduct);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut assignment: std::collections::HashMap<VarId, Value> = Default::default();
            for &node in &order {
                let i = self.nodes.iter().position(|&x| x == node).unwrap();
                let cpt = &self.cpts[i];
                // Filter CPT rows matching the sampled parent values.
                let preds: Vec<(VarId, Value)> = self.parents[i]
                    .iter()
                    .map(|&p| (p, assignment[&p]))
                    .collect();
                let cond = mpf_algebra::ops::select_eq(cx, cpt, &preds)?;
                let node_pos = cond.schema().position(node)?;
                let u: f64 = rng.random();
                let mut acc = 0.0;
                let mut chosen = 0;
                for (row, m) in cond.rows() {
                    acc += m;
                    chosen = row[node_pos];
                    if u <= acc {
                        break;
                    }
                }
                assignment.insert(node, chosen);
            }
            out.push(self.nodes.iter().map(|v| assignment[v]).collect());
        }
        Ok(out)
    }

    /// Estimate a network with the same structure as `structure` from
    /// complete-data samples (rows in node declaration order), by maximum
    /// likelihood with Laplace smoothing `alpha`.
    ///
    /// Section 4 of the paper observes that both structure scoring and
    /// parameter estimation need *counts from data*, and that "the MPF
    /// setting can be used to compute the required counts": the samples are
    /// loaded as one functional relation whose measure is the occurrence
    /// count, and each CPT's sufficient statistics are MPF `SUM` queries
    /// (group-bys) against it in the sum-product semiring.
    pub fn fit(structure: &BayesNet, samples: &[Vec<Value>], alpha: f64) -> Result<BayesNet> {
        assert!(alpha >= 0.0);
        let cx = &mut ExecContext::new(SemiringKind::SumProduct);
        // Aggregate duplicate samples: the data relation is functional with
        // the count as measure.
        let all_vars = Schema::new(structure.nodes.to_vec())?;
        let mut counts: std::collections::HashMap<Vec<Value>, f64> = Default::default();
        for s in samples {
            *counts.entry(s.clone()).or_insert(0.0) += 1.0;
        }
        let data = FunctionalRelation::from_rows("data", all_vars, counts)?;

        let mut cpts = Vec::with_capacity(structure.nodes.len());
        for (i, &node) in structure.nodes.iter().enumerate() {
            let parents = &structure.parents[i];
            let mut family = parents.clone();
            family.push(node);
            // MPF count queries: joint family counts and parent counts.
            let family_counts = mpf_algebra::ops::group_by(cx, &data, &family)?;
            let parent_counts = mpf_algebra::ops::group_by(cx, &data, parents)?;
            let node_dom = structure.catalog.domain_size(node) as f64;

            let schema = Schema::new(family.clone())?;
            let cpt = FunctionalRelation::complete(
                format!("cpt_{}", structure.catalog.name(node)),
                schema,
                &structure.catalog,
                |row| {
                    let fam = family_counts.lookup(row).unwrap_or(0.0);
                    let par = parent_counts
                        .lookup(&row[..row.len() - 1])
                        .unwrap_or(0.0);
                    (fam + alpha) / (par + alpha * node_dom)
                },
            );
            cpts.push(cpt);
        }
        Ok(BayesNet {
            catalog: structure.catalog.clone(),
            nodes: structure.nodes.clone(),
            parents: structure.parents.clone(),
            cpts,
        })
    }

    /// Log-likelihood of complete-data `samples` under this network,
    /// computed from family counts (each an MPF `SUM` query against the
    /// aggregated sample relation).
    pub fn log_likelihood(&self, samples: &[Vec<Value>]) -> Result<f64> {
        let mut ll = 0.0;
        'sample: for s in samples {
            let mut lp = 0.0;
            for (i, cpt) in self.cpts.iter().enumerate() {
                let mut family_row: Vec<Value> = self.parents[i]
                    .iter()
                    .map(|p| {
                        let idx = self.nodes.iter().position(|&n| n == *p).unwrap();
                        s[idx]
                    })
                    .collect();
                family_row.push(s[i]);
                let p = cpt.lookup(&family_row).unwrap_or(0.0);
                if p <= 0.0 {
                    ll += f64::NEG_INFINITY;
                    continue 'sample;
                }
                lp += p.ln();
            }
            ll += lp;
        }
        Ok(ll)
    }

    /// BIC score of a candidate structure on `samples`: the maximized
    /// log-likelihood minus `(ln N / 2) · k`, where `k` is the number of
    /// free CPT parameters. Higher is better.
    pub fn bic_score(structure: &BayesNet, samples: &[Vec<Value>]) -> Result<f64> {
        let fitted = BayesNet::fit(structure, samples, 1e-4)?;
        let ll = fitted.log_likelihood(samples)?;
        let n = samples.len().max(1) as f64;
        let mut params = 0.0;
        for (i, &node) in structure.nodes.iter().enumerate() {
            let node_dom = structure.catalog.domain_size(node) as f64;
            let parent_dom: f64 = structure.parents[i]
                .iter()
                .map(|&p| structure.catalog.domain_size(p) as f64)
                .product();
            params += parent_dom * (node_dom - 1.0);
        }
        Ok(ll - 0.5 * n.ln() * params)
    }

    /// Greedy structure learning under a fixed variable ordering (the
    /// classical K2-style search): each node independently selects the
    /// parent subset (among its predecessors in `order`, at most
    /// `max_parents` wide) that maximizes the family's BIC contribution.
    ///
    /// This makes Section 4's remark operational: the conditional
    /// independencies that license the MPF factorization are themselves
    /// *estimated from data*, and every sufficient statistic involved is an
    /// MPF count query.
    pub fn learn_structure(
        catalog: &Catalog,
        order: &[VarId],
        samples: &[Vec<Value>],
        max_parents: usize,
    ) -> Result<BayesNet> {
        assert!(!order.is_empty());
        // `samples` rows follow `order`.
        let mut b = BayesNetBuilder::new();
        let mut ids = Vec::with_capacity(order.len());
        for &v in order {
            ids.push(b.variable(catalog.name(v), catalog.domain_size(v))?);
        }
        // Placeholder CPTs; real ones are fitted after parents are chosen.
        let mut chosen_parents: Vec<Vec<VarId>> = Vec::with_capacity(order.len());
        for (i, &node) in ids.iter().enumerate() {
            let mut best: Option<(f64, Vec<VarId>)> = None;
            for subset in subsets_up_to(&ids[..i], max_parents) {
                let score =
                    family_bic(&b.catalog, node, &subset, &ids, samples)?;
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    best = Some((score, subset));
                }
            }
            chosen_parents.push(best.expect("empty subset always scored").1);
        }
        for (i, &node) in ids.iter().enumerate() {
            // Uniform placeholder; replaced by the final fit.
            let dom = b.catalog.domain_size(node);
            let rows: u64 = chosen_parents[i]
                .iter()
                .map(|&p| b.catalog.domain_size(p))
                .product();
            let uniform = vec![1.0 / dom as f64; (rows * dom) as usize];
            let parents = chosen_parents[i].clone();
            b.cpt(node, &parents, uniform)?;
        }
        let skeleton = b.build()?;
        BayesNet::fit(&skeleton, samples, 1.0)
    }

    /// The classic two-parent "sprinkler" network
    /// (cloudy → sprinkler, cloudy → rain, {sprinkler, rain} → wet grass).
    pub fn sprinkler() -> BayesNet {
        let mut b = BayesNetBuilder::new();
        let cloudy = b.variable("cloudy", 2).unwrap();
        let sprinkler = b.variable("sprinkler", 2).unwrap();
        let rain = b.variable("rain", 2).unwrap();
        let wet = b.variable("wet", 2).unwrap();
        b.cpt(cloudy, &[], vec![0.5, 0.5]).unwrap();
        // Pr(sprinkler | cloudy): cloudy=0 -> (0.5, 0.5); cloudy=1 -> (0.9, 0.1).
        b.cpt(sprinkler, &[cloudy], vec![0.5, 0.5, 0.9, 0.1])
            .unwrap();
        // Pr(rain | cloudy): cloudy=0 -> (0.8, 0.2); cloudy=1 -> (0.2, 0.8).
        b.cpt(rain, &[cloudy], vec![0.8, 0.2, 0.2, 0.8]).unwrap();
        // Pr(wet | sprinkler, rain).
        b.cpt(
            wet,
            &[sprinkler, rain],
            vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99],
        )
        .unwrap();
        b.build().unwrap()
    }

    /// A random network: `n` nodes with the given domain size, each with at
    /// most `max_parents` parents among earlier nodes, CPT rows drawn
    /// uniformly and normalized. Deterministic in `seed`.
    pub fn random(n: usize, domain: u64, max_parents: usize, seed: u64) -> BayesNet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = BayesNetBuilder::new();
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            ids.push(b.variable(&format!("n{i}"), domain).unwrap());
        }
        for i in 0..n {
            let k = if i == 0 {
                0
            } else {
                rng.random_range(0..=max_parents.min(i))
            };
            // Choose k distinct earlier nodes.
            let mut parents: Vec<VarId> = Vec::new();
            while parents.len() < k {
                let p = ids[rng.random_range(0..i)];
                if !parents.contains(&p) {
                    parents.push(p);
                }
            }
            let rows: u64 = parents.iter().map(|&p| domain_of(&b, p)).product::<u64>();
            let mut probs = Vec::with_capacity((rows * domain) as usize);
            for _ in 0..rows {
                let raw: Vec<f64> = (0..domain).map(|_| rng.random_range(0.05..1.0)).collect();
                let z: f64 = raw.iter().sum();
                probs.extend(raw.into_iter().map(|p| p / z));
            }
            b.cpt(ids[i], &parents, probs).unwrap();
        }
        b.build().unwrap()
    }
}

fn domain_of(b: &BayesNetBuilder, v: VarId) -> u64 {
    b.catalog.domain_size(v)
}

/// All subsets of `pool` with at most `k` elements (including the empty
/// set). `pool` is small (predecessor lists in K2 search).
fn subsets_up_to(pool: &[VarId], k: usize) -> Vec<Vec<VarId>> {
    let mut out = vec![vec![]];
    for &v in pool {
        let mut extra = Vec::new();
        for s in &out {
            if s.len() < k {
                let mut t = s.clone();
                t.push(v);
                extra.push(t);
            }
        }
        out.extend(extra);
    }
    out
}

/// BIC contribution of one family `parents -> node`, from sample counts:
/// `Σ_config N(config) · ln θ̂(config) − (ln N / 2) · |params|`.
fn family_bic(
    catalog: &Catalog,
    node: VarId,
    parents: &[VarId],
    all_nodes: &[VarId],
    samples: &[Vec<Value>],
) -> crate::Result<f64> {
    let cx = &mut ExecContext::new(SemiringKind::SumProduct);
    // Aggregate samples into a count relation (MPF counting view).
    let schema = Schema::new(all_nodes.to_vec())?;
    let mut counts: std::collections::HashMap<Vec<Value>, f64> = Default::default();
    for s in samples {
        *counts.entry(s.clone()).or_insert(0.0) += 1.0;
    }
    let data = FunctionalRelation::from_rows("data", schema, counts)?;

    let mut family = parents.to_vec();
    family.push(node);
    let fam_counts = mpf_algebra::ops::group_by(cx, &data, &family)?;
    let par_counts = mpf_algebra::ops::group_by(cx, &data, parents)?;

    let mut ll = 0.0;
    for (row, n_fam) in fam_counts.rows() {
        let n_par = par_counts
            .lookup(&row[..row.len() - 1])
            .expect("family count implies parent count");
        if n_fam > 0.0 {
            ll += n_fam * (n_fam / n_par).ln();
        }
    }
    let n = samples.len().max(1) as f64;
    let node_dom = catalog.domain_size(node) as f64;
    let parent_dom: f64 = parents
        .iter()
        .map(|&p| catalog.domain_size(p) as f64)
        .product();
    Ok(ll - 0.5 * n.ln() * parent_dom * (node_dom - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_optimizer::Heuristic;
    use mpf_semiring::approx_eq;

    #[test]
    fn sprinkler_joint_sums_to_one() {
        let bn = BayesNet::sprinkler();
        let joint = bn.joint().unwrap();
        assert_eq!(joint.len(), 16);
        let total: f64 = joint.measures().iter().sum();
        assert!(approx_eq(total, 1.0));
    }

    #[test]
    fn paper_figure_2_network() {
        // Figure 2: Pr(A)Pr(B|A)Pr(C|A)Pr(D|B,C) over binary variables,
        // with the inference task `select C, SUM(p) from joint where A=0
        // group by C`.
        let mut b = BayesNetBuilder::new();
        let a = b.variable("A", 2).unwrap();
        let bb = b.variable("B", 2).unwrap();
        let c = b.variable("C", 2).unwrap();
        let d = b.variable("D", 2).unwrap();
        b.cpt(a, &[], vec![0.3, 0.7]).unwrap();
        b.cpt(bb, &[a], vec![0.6, 0.4, 0.1, 0.9]).unwrap();
        b.cpt(c, &[a], vec![0.2, 0.8, 0.5, 0.5]).unwrap();
        b.cpt(d, &[bb, c], vec![0.9, 0.1, 0.4, 0.6, 0.3, 0.7, 0.05, 0.95])
            .unwrap();
        let bn = b.build().unwrap();

        let post = bn
            .posterior(c, &[(a, 0)], Algorithm::Ve(Heuristic::Degree))
            .unwrap();
        // Pr(C | A=0) = CPT row directly: (0.2, 0.8).
        assert!(approx_eq(post[0], 0.2));
        assert!(approx_eq(post[1], 0.8));
    }

    #[test]
    fn posterior_matches_enumeration() {
        let bn = BayesNet::sprinkler();
        let wet = bn.catalog().var("wet").unwrap();
        let rain = bn.catalog().var("rain").unwrap();

        // Enumeration: Pr(rain | wet = 1).
        let cx = &mut ExecContext::new(SemiringKind::SumProduct);
        let joint = bn.joint().unwrap();
        let cond = mpf_algebra::ops::select_eq(cx, &joint, &[(wet, 1)]).unwrap();
        let marg = mpf_algebra::ops::group_by(cx, &cond, &[rain]).unwrap();
        let z: f64 = marg.measures().iter().sum();
        let want: Vec<f64> = (0..2).map(|v| marg.lookup(&[v]).unwrap() / z).collect();

        for algo in [
            Algorithm::Cs,
            Algorithm::CsPlusNonlinear,
            Algorithm::Ve(Heuristic::Degree),
            Algorithm::VePlus(Heuristic::Width),
        ] {
            let got = bn.posterior(rain, &[(wet, 1)], algo).unwrap();
            assert!(approx_eq(got[0], want[0]), "{}: {got:?} vs {want:?}", algo.label());
            assert!(approx_eq(got[1], want[1]));
        }
    }

    #[test]
    fn random_networks_are_valid_distributions() {
        for seed in 0..5 {
            let bn = BayesNet::random(6, 2, 2, seed);
            let joint = bn.joint().unwrap();
            let total: f64 = joint.measures().iter().sum();
            assert!(approx_eq(total, 1.0), "seed {seed}: total {total}");
        }
    }

    #[test]
    fn sampling_tracks_marginals() {
        let bn = BayesNet::sprinkler();
        let cloudy = bn.catalog().var("cloudy").unwrap();
        let samples = bn.sample(4000, 7).unwrap();
        let idx = bn.nodes().iter().position(|&v| v == cloudy).unwrap();
        let freq = samples.iter().filter(|s| s[idx] == 1).count() as f64 / 4000.0;
        assert!((freq - 0.5).abs() < 0.05, "cloudy frequency {freq}");
    }

    #[test]
    fn fitting_recovers_distribution_from_samples() {
        let truth = BayesNet::sprinkler();
        let samples = truth.sample(30_000, 11).unwrap();
        let fitted = BayesNet::fit(&truth, &samples, 1.0).unwrap();

        // Fitted CPT rows are valid conditional distributions.
        for (i, cpt) in fitted.cpts().iter().enumerate() {
            let node = fitted.nodes()[i];
            let parents = &fitted.parents()[i];
            let totals = mpf_algebra::ops::group_by(
                &mut ExecContext::new(SemiringKind::SumProduct),
                cpt,
                parents,
            )
            .unwrap();
            for (_, total) in totals.rows() {
                assert!(approx_eq(total, 1.0), "node {node}: rows sum to {total}");
            }
        }

        // Posteriors agree with the true network within sampling error.
        let rain = truth.catalog().var("rain").unwrap();
        let wet = truth.catalog().var("wet").unwrap();
        let algo = Algorithm::Ve(Heuristic::Degree);
        let want = truth.posterior(rain, &[(wet, 1)], algo).unwrap();
        let got = fitted.posterior(rain, &[(wet, 1)], algo).unwrap();
        assert!(
            (want[1] - got[1]).abs() < 0.03,
            "true {} vs fitted {}",
            want[1],
            got[1]
        );
    }

    #[test]
    fn structure_learning_recovers_sprinkler_edges() {
        let truth = BayesNet::sprinkler();
        // Samples follow node declaration order, which is a topological
        // order for the sprinkler net.
        let samples = truth.sample(25_000, 3).unwrap();
        let learned = BayesNet::learn_structure(
            truth.catalog(),
            truth.nodes(),
            &samples,
            2,
        )
        .unwrap();
        // Compare parent sets (learned catalog ids are fresh but names and
        // order match).
        let name = |bn: &BayesNet, v: VarId| bn.catalog().name(v).to_string();
        for (i, want_parents) in truth.parents().iter().enumerate() {
            let mut want: Vec<String> =
                want_parents.iter().map(|&p| name(&truth, p)).collect();
            let mut got: Vec<String> = learned.parents()[i]
                .iter()
                .map(|&p| name(&learned, p))
                .collect();
            want.sort();
            got.sort();
            assert_eq!(
                want, got,
                "node {} has wrong parents",
                name(&truth, truth.nodes()[i])
            );
        }
        // BIC prefers the true structure to the empty one.
        let mut empty_b = BayesNetBuilder::new();
        let mut ids = Vec::new();
        for &v in truth.nodes() {
            ids.push(
                empty_b
                    .variable(truth.catalog().name(v), truth.catalog().domain_size(v))
                    .unwrap(),
            );
        }
        for &v in &ids {
            empty_b.cpt(v, &[], vec![0.5, 0.5]).unwrap();
        }
        let empty = empty_b.build().unwrap();
        let bic_true = BayesNet::bic_score(&truth, &samples).unwrap();
        let bic_empty = BayesNet::bic_score(&empty, &samples).unwrap();
        assert!(bic_true > bic_empty);
    }

    #[test]
    fn log_likelihood_prefers_true_model() {
        let truth = BayesNet::sprinkler();
        let samples = truth.sample(5_000, 5).unwrap();
        let fitted = BayesNet::fit(&truth, &samples, 1.0).unwrap();
        let ll_true = fitted.log_likelihood(&samples).unwrap();
        // A shuffled-CPT model explains the data worse.
        let random = BayesNet::random(4, 2, 2, 99);
        let ll_rand = random.log_likelihood(&samples).unwrap();
        assert!(ll_true > ll_rand, "{ll_true} vs {ll_rand}");
        assert!(ll_true.is_finite());
    }

    #[test]
    fn fitting_with_no_data_gives_uniform_cpts() {
        let truth = BayesNet::sprinkler();
        let fitted = BayesNet::fit(&truth, &[], 1.0).unwrap();
        for cpt in fitted.cpts() {
            for (_, p) in cpt.rows() {
                assert!(approx_eq(p, 0.5), "binary uniform expected, got {p}");
            }
        }
    }

    #[test]
    fn builder_rejects_bad_cpts() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("A", 2).unwrap();
        // Does not sum to 1.
        b.cpt(a, &[], vec![0.3, 0.3]).unwrap();
        assert!(matches!(b.build(), Err(InferError::InvalidCpt(_))));

        let mut b = BayesNetBuilder::new();
        let a = b.variable("A", 2).unwrap();
        // Wrong length.
        b.cpt(a, &[], vec![1.0]).unwrap();
        assert!(matches!(b.build(), Err(InferError::InvalidCpt(_))));

        let mut b = BayesNetBuilder::new();
        let _ = b.variable("A", 2).unwrap();
        // Missing CPT.
        assert!(matches!(b.build(), Err(InferError::MissingCpt(_))));
    }

    #[test]
    fn builder_rejects_cycles() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("A", 2).unwrap();
        let c = b.variable("B", 2).unwrap();
        b.cpt(a, &[c], vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        b.cpt(c, &[a], vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        assert!(matches!(b.build(), Err(InferError::CyclicNetwork)));
    }
}
