//! Belief Propagation as a semijoin program (Algorithm 4 / Appendix A).
//!
//! BP reduces each table of an acyclic schema with respect to its
//! neighbours: a forward pass of **product semijoins** (each table absorbs
//! its already-visited neighbour's marginal) and a backward pass of
//! **update semijoins** (the reverse reductions, using division so values
//! propagated forward are not propagated again). After both passes every
//! table satisfies the Definition 5 invariant: any MPF query on a variable
//! it contains can be answered from the table alone (Theorem 6, Pearl).
//!
//! As the paper's Figure 12 example shows, BP is incorrect on cyclic
//! schemas — measures get multiplied in twice along the cycle — so
//! [`bp_acyclic`] refuses them; run the Junction Tree algorithm first.

use std::collections::BTreeSet;

use mpf_algebra::ExecContext;
use mpf_semiring::SemiringKind;
use mpf_storage::{FunctionalRelation, VarId};

use crate::{InferError, JoinTree, Result};

/// One reduction step of a semijoin program, for tracing/debugging
/// (Figures 11 and 12 of the paper render such programs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BpStep {
    /// `tables[target] ⋉* tables[source]` (forward, product semijoin).
    Forward {
        /// Absorbing table.
        target: usize,
        /// Table whose marginal is absorbed.
        source: usize,
    },
    /// `tables[target] ⋉ tables[source]` (backward, update semijoin).
    Backward {
        /// Absorbing table.
        target: usize,
        /// Table whose marginal is absorbed.
        source: usize,
    },
}

/// Calibrate `tables` over the join `tree` in place: an upward (leaf to
/// root) pass of product semijoins followed by a downward pass of update
/// semijoins, per component. Afterwards every table holds the view's
/// marginal on its schema, up to the cross-component scaling also applied
/// here (a disconnected view is a cross product of its components, so each
/// table is additionally scaled by the other components' totals).
///
/// Returns the executed semijoin program.
///
/// Runs inside the caller-owned [`ExecContext`]: every semijoin of the
/// program runs under the context's budget, deadline, cancellation,
/// tracing, and fault hooks, and its work lands in the caller's stats.
pub fn calibrate_in(
    cx: &mut ExecContext<'_>,
    tables: &mut [FunctionalRelation],
    tree: &JoinTree,
) -> Result<Vec<BpStep>> {
    cx.span_phase("bp::calibrate");
    let result = calibrate_inner(cx, tables, tree);
    cx.span_close(|| result.as_ref().err().map(|e| e.to_string()));
    result
}

fn calibrate_inner(
    cx: &mut ExecContext<'_>,
    tables: &mut [FunctionalRelation],
    tree: &JoinTree,
) -> Result<Vec<BpStep>> {
    cx.fault("bp::calibrate")?;
    let sr = cx.semiring();
    if !sr.has_division() {
        return Err(InferError::Algebra(mpf_algebra::AlgebraError::NoDivision));
    }
    assert_eq!(tables.len(), tree.n);
    let mut program = Vec::new();

    let components = tree.components();
    for comp in &components {
        let root = comp[0];
        let order = tree.bfs_from(root);
        // Upward: children push marginals into parents, leaves first.
        for &(node, parent) in order.iter().rev() {
            if let Some(p) = parent {
                tables[p] = mpf_algebra::ops::product_semijoin(cx, &tables[p], &tables[node])?;
                program.push(BpStep::Forward {
                    target: p,
                    source: node,
                });
            }
        }
        // Downward: parents push calibrated marginals back, root first.
        for &(node, parent) in &order {
            if let Some(p) = parent {
                tables[node] = mpf_algebra::ops::update_semijoin(cx, &tables[node], &tables[p])?;
                program.push(BpStep::Backward {
                    target: node,
                    source: p,
                });
            }
        }
    }

    // Cross-component scaling: each table is multiplied by the product of
    // the *other* components' totals, making every table a true marginal of
    // the full (cross-product) view.
    if components.len() > 1 {
        let totals: Vec<f64> = components
            .iter()
            .map(|comp| {
                let t = mpf_algebra::ops::group_by(cx, &tables[comp[0]], &[])?;
                Ok(if t.is_empty() { sr.zero() } else { t.measure(0) })
            })
            .collect::<Result<_>>()?;
        for (ci, comp) in components.iter().enumerate() {
            let other: f64 = sr.product(
                totals
                    .iter()
                    .enumerate()
                    .filter(|&(cj, _)| cj != ci)
                    .map(|(_, &t)| t),
            );
            for &node in comp {
                scale(sr, &mut tables[node], other);
            }
        }
    }
    Ok(program)
}

/// Multiply every measure of `rel` by `factor` (semiring multiplication).
pub fn scale(sr: SemiringKind, rel: &mut FunctionalRelation, factor: f64) {
    for i in 0..rel.len() {
        let m = rel.measure(i);
        rel.set_measure(i, sr.mul(m, factor));
    }
}

/// Run Belief Propagation over an **acyclic** relation schema: build the
/// join tree over the relations themselves (Theorem 7) and calibrate.
/// Returns the calibrated tables and the executed program.
///
/// # Errors
/// [`InferError::CyclicSchema`] if no join tree with the running-intersection
/// property exists (the Figure 12 situation).
pub fn bp_acyclic(
    sr: SemiringKind,
    rels: &[&FunctionalRelation],
) -> Result<(Vec<FunctionalRelation>, Vec<BpStep>)> {
    bp_acyclic_in(&mut ExecContext::new(sr), rels)
}

/// [`bp_acyclic`] inside a caller-owned [`ExecContext`] — the budgeted
/// entry point of the BP semijoin program.
pub fn bp_acyclic_in(
    cx: &mut ExecContext<'_>,
    rels: &[&FunctionalRelation],
) -> Result<(Vec<FunctionalRelation>, Vec<BpStep>)> {
    let sets: Vec<BTreeSet<VarId>> = rels.iter().map(|r| r.schema().iter().collect()).collect();
    let tree = JoinTree::build(&sets);
    if !tree.verify_rip(&sets) {
        return Err(InferError::CyclicSchema);
    }
    let mut tables: Vec<FunctionalRelation> = rels.iter().map(|r| (*r).clone()).collect();
    let program = calibrate_in(cx, &mut tables, &tree)?;
    Ok((tables, program))
}

/// Check the Definition 5 correctness invariant: for every calibrated table
/// and every variable it contains, the table's marginal on that variable
/// equals the marginal of the full view (the product join of all `base`
/// relations). Exponential in the view size — test/verification use only.
pub fn satisfies_invariant(
    sr: SemiringKind,
    base: &[&FunctionalRelation],
    tables: &[FunctionalRelation],
) -> Result<bool> {
    assert!(!base.is_empty());
    let cx = &mut ExecContext::new(sr);
    let mut view = base[0].clone();
    for r in &base[1..] {
        view = mpf_algebra::ops::product_join(cx, &view, r)?;
    }
    for t in tables {
        for v in t.schema().iter() {
            let from_table = mpf_algebra::ops::group_by(cx, t, &[v])?;
            let from_view = mpf_algebra::ops::group_by(cx, &view, &[v])?;
            // Explicit additive-zero rows and missing rows denote the same
            // function value (see `FunctionalRelation::function_eq_in`).
            if !from_view.function_eq_in(&from_table, sr) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_storage::{Catalog, Schema};

    /// A small random-ish chain of complete relations:
    /// r0(x0, x1), r1(x1, x2), ..., with deterministic measures.
    fn chain(cat: &mut Catalog, n: usize, dom: u64) -> Vec<FunctionalRelation> {
        let vars: Vec<VarId> = (0..=n)
            .map(|i| cat.add_var(&format!("x{i}"), dom).unwrap())
            .collect();
        (0..n)
            .map(|i| {
                FunctionalRelation::complete(
                    format!("r{i}"),
                    Schema::new(vec![vars[i], vars[i + 1]]).unwrap(),
                    cat,
                    |row| ((row[0] * 3 + row[1] * 7 + i as u32) % 5 + 1) as f64 / 2.0,
                )
            })
            .collect()
    }

    #[test]
    fn bp_calibrates_chain() {
        let mut cat = Catalog::new();
        let rels = chain(&mut cat, 5, 3);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let (tables, program) = bp_acyclic(SemiringKind::SumProduct, &refs).unwrap();
        assert!(satisfies_invariant(SemiringKind::SumProduct, &refs, &tables).unwrap());
        // A chain of 5 tables: 4 forward + 4 backward steps (Figure 11 has
        // 4+4 for the 5-relation supply chain).
        assert_eq!(program.len(), 8);
        assert_eq!(
            program.iter().filter(|s| matches!(s, BpStep::Forward { .. })).count(),
            4
        );
    }

    #[test]
    fn bp_calibrates_in_tropical_semiring() {
        let mut cat = Catalog::new();
        let rels = chain(&mut cat, 3, 2);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let (tables, _) = bp_acyclic(SemiringKind::MinSum, &refs).unwrap();
        assert!(satisfies_invariant(SemiringKind::MinSum, &refs, &tables).unwrap());
    }

    #[test]
    fn bp_rejects_cyclic_schema() {
        // Figure 12: the supply chain plus stdeals is cyclic.
        let mut cat = Catalog::new();
        let pid = cat.add_var("pid", 2).unwrap();
        let sid = cat.add_var("sid", 2).unwrap();
        let wid = cat.add_var("wid", 2).unwrap();
        let cid = cat.add_var("cid", 2).unwrap();
        let tid = cat.add_var("tid", 2).unwrap();
        let mk = |name: &str, vars: Vec<VarId>| {
            FunctionalRelation::complete(
                name,
                Schema::new(vars).unwrap(),
                &cat,
                |row| (row.iter().sum::<u32>() + 1) as f64,
            )
        };
        let rels = [mk("contracts", vec![pid, sid]),
            mk("warehouses", vec![wid, cid]),
            mk("transporters", vec![tid]),
            mk("location", vec![pid, wid]),
            mk("ctdeals", vec![cid, tid]),
            mk("stdeals", vec![sid, tid])];
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        assert!(matches!(
            bp_acyclic(SemiringKind::SumProduct, &refs),
            Err(InferError::CyclicSchema)
        ));
        // Without stdeals the schema is acyclic and BP succeeds.
        let refs2: Vec<&FunctionalRelation> = rels[..5].iter().collect();
        let (tables, _) = bp_acyclic(SemiringKind::SumProduct, &refs2).unwrap();
        assert!(satisfies_invariant(SemiringKind::SumProduct, &refs2, &tables).unwrap());
    }

    #[test]
    fn bp_handles_disconnected_components() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 2).unwrap();
        let b = cat.add_var("b", 2).unwrap();
        let c = cat.add_var("c", 2).unwrap();
        let d = cat.add_var("d", 2).unwrap();
        let mk = |name: &str, vars: Vec<VarId>, salt: u32| {
            FunctionalRelation::complete(name, Schema::new(vars).unwrap(), &cat, move |row| {
                ((row[0] * 2 + row[1] + salt) % 4 + 1) as f64
            })
        };
        let rels = [mk("r1", vec![a, b], 0), mk("r2", vec![c, d], 1)];
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let (tables, _) = bp_acyclic(SemiringKind::SumProduct, &refs).unwrap();
        // With cross-component scaling the invariant holds globally.
        assert!(satisfies_invariant(SemiringKind::SumProduct, &refs, &tables).unwrap());
    }

    #[test]
    fn bp_requires_division() {
        let mut cat = Catalog::new();
        let rels = chain(&mut cat, 2, 2);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        assert!(bp_acyclic(SemiringKind::BoolOrAnd, &refs).is_err());
    }

    #[test]
    fn star_tree_calibrates() {
        // A star join tree: centre (a,b,c) with three leaves.
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 2).unwrap();
        let b = cat.add_var("b", 2).unwrap();
        let c = cat.add_var("c", 2).unwrap();
        let centre = FunctionalRelation::complete(
            "centre",
            Schema::new(vec![a, b, c]).unwrap(),
            &cat,
            |row| (row[0] + row[1] * 2 + row[2] * 3 + 1) as f64,
        );
        let la = FunctionalRelation::complete(
            "la",
            Schema::new(vec![a]).unwrap(),
            &cat,
            |row| (row[0] + 1) as f64,
        );
        let lb = FunctionalRelation::complete(
            "lb",
            Schema::new(vec![b]).unwrap(),
            &cat,
            |row| (row[0] + 2) as f64,
        );
        let lc = FunctionalRelation::complete(
            "lc",
            Schema::new(vec![c]).unwrap(),
            &cat,
            |row| (2 * row[0] + 1) as f64,
        );
        let refs: Vec<&FunctionalRelation> = vec![&centre, &la, &lb, &lc];
        let (tables, _) = bp_acyclic(SemiringKind::SumProduct, &refs).unwrap();
        assert!(satisfies_invariant(SemiringKind::SumProduct, &refs, &tables).unwrap());
    }
}
