//! The Triangulization procedure (Algorithm 6) and elimination orders.
//!
//! Triangulation repeatedly selects a vertex, connects its not-yet-connected
//! neighbours (the *fill edges*), and removes it; the vertex together with
//! its neighbours at removal time forms an *elimination clique*. The
//! resulting filled graph is chordal, and the maximal elimination cliques
//! become the relations of the junction-tree schema (Algorithm 5).
//!
//! Finding the order minimizing the induced width is NP-complete
//! (Yannakakis, Theorem 9); the classical min-fill and min-degree greedy
//! orders are provided.

use std::collections::BTreeSet;

use mpf_storage::VarId;

use crate::VariableGraph;

/// Result of triangulating a variable graph with a given order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Triangulation {
    /// The input graph plus all fill edges (chordal).
    pub filled: VariableGraph,
    /// Fill edges added, in insertion order.
    pub fill_edges: Vec<(VarId, VarId)>,
    /// Elimination cliques: for each eliminated vertex, the vertex plus its
    /// neighbours at elimination time.
    pub cliques: Vec<BTreeSet<VarId>>,
}

impl Triangulation {
    /// The induced width: size of the largest elimination clique minus one.
    pub fn induced_width(&self) -> usize {
        self.cliques.iter().map(BTreeSet::len).max().unwrap_or(0).saturating_sub(1)
    }

    /// The maximal cliques (cliques not strictly contained in another) —
    /// the relations of the junction-tree schema. Order follows first
    /// appearance in the elimination.
    pub fn maximal_cliques(&self) -> Vec<BTreeSet<VarId>> {
        let mut out: Vec<BTreeSet<VarId>> = Vec::new();
        for c in &self.cliques {
            if out.iter().any(|m| c.is_subset(m)) {
                continue;
            }
            out.retain(|m| !m.is_subset(c));
            out.push(c.clone());
        }
        out
    }
}

/// Triangulate `graph` by eliminating vertices in `order` (Algorithm 6).
/// Vertices of the graph missing from `order` are eliminated last, in
/// ascending id order.
pub fn triangulate(graph: &VariableGraph, order: &[VarId]) -> Triangulation {
    let mut work = graph.clone();
    let mut filled = graph.clone();
    let mut fill_edges = Vec::new();
    let mut cliques = Vec::new();

    let mut full_order: Vec<VarId> = order.to_vec();
    for v in graph.vertices() {
        if !full_order.contains(&v) {
            full_order.push(v);
        }
    }

    for v in full_order {
        if !work.vertices().contains(&v) {
            continue;
        }
        let nbrs: Vec<VarId> = work.neighbors(v).into_iter().collect();
        let mut clique: BTreeSet<VarId> = nbrs.iter().copied().collect();
        clique.insert(v);
        cliques.push(clique);
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                if !work.has_edge(nbrs[i], nbrs[j]) {
                    work.add_edge(nbrs[i], nbrs[j]);
                    filled.add_edge(nbrs[i], nbrs[j]);
                    fill_edges.push((nbrs[i], nbrs[j]));
                }
            }
        }
        work.remove_vertex(v);
    }

    Triangulation {
        filled,
        fill_edges,
        cliques,
    }
}

/// Greedy min-fill elimination order: repeatedly eliminate the vertex whose
/// elimination adds the fewest fill edges.
pub fn min_fill_order(graph: &VariableGraph) -> Vec<VarId> {
    greedy_order(graph, |g, v| {
        let nbrs: Vec<VarId> = g.neighbors(v).into_iter().collect();
        let mut fill = 0usize;
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                if !g.has_edge(nbrs[i], nbrs[j]) {
                    fill += 1;
                }
            }
        }
        fill
    })
}

/// Greedy min-degree elimination order: repeatedly eliminate the vertex with
/// the fewest remaining neighbours.
pub fn min_degree_order(graph: &VariableGraph) -> Vec<VarId> {
    greedy_order(graph, |g, v| g.neighbors(v).len())
}

fn greedy_order(graph: &VariableGraph, score: impl Fn(&VariableGraph, VarId) -> usize) -> Vec<VarId> {
    let mut work = graph.clone();
    let mut order = Vec::with_capacity(graph.len());
    while !work.is_empty() {
        let v = work
            .vertices()
            .into_iter()
            .min_by_key(|&v| (score(&work, v), v))
            .expect("nonempty graph");
        // Eliminate: connect neighbours, remove.
        let nbrs: Vec<VarId> = work.neighbors(v).into_iter().collect();
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                work.add_edge(nbrs[i], nbrs[j]);
            }
        }
        work.remove_vertex(v);
        order.push(v);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// The paper's cyclic supply chain + stdeals example (Figure 14):
    /// chain sid—pid—wid—cid—tid closed by the stdeals edge sid—tid.
    fn cyclic_supply_chain() -> VariableGraph {
        let mut g = VariableGraph::new();
        let (pid, sid, wid, cid, tid) = (v(0), v(1), v(2), v(3), v(4));
        g.add_edge(pid, sid);
        g.add_edge(pid, wid);
        g.add_edge(wid, cid);
        g.add_edge(cid, tid);
        g.add_edge(sid, tid); // stdeals
        g
    }

    #[test]
    fn triangulation_produces_chordal_graph() {
        let g = cyclic_supply_chain();
        assert!(!g.is_chordal());
        // The paper's Figure 14 order: eliminate tid then sid (remaining
        // vertices follow automatically).
        let t = triangulate(&g, &[v(4), v(1)]);
        assert!(t.filled.is_chordal());
        // Eliminating tid (neighbours cid, sid) adds cid—sid; eliminating
        // sid (neighbours pid, cid) adds pid—cid — the two dotted edges of
        // Figure 14.
        assert_eq!(t.fill_edges, vec![(v(1), v(3)), (v(0), v(3))]);
    }

    #[test]
    fn figure_15_junction_tree_cliques() {
        // With the Figure 14 triangulation, the maximal cliques are
        // {tid, cid, sid}, {sid, cid, pid}, {pid, wid, cid} — the three
        // relations of the paper's Figure 15 junction tree.
        let g = cyclic_supply_chain();
        let t = triangulate(&g, &[v(4), v(1)]);
        let cliques = t.maximal_cliques();
        let want: Vec<BTreeSet<VarId>> = vec![
            [v(4), v(3), v(1)].into_iter().collect(),
            [v(1), v(0), v(3)].into_iter().collect(),
            [v(0), v(2), v(3)].into_iter().collect(),
        ];
        assert_eq!(cliques.len(), 3);
        for w in &want {
            assert!(cliques.contains(w), "missing clique {w:?}");
        }
        assert_eq!(t.induced_width(), 2);
    }

    #[test]
    fn already_chordal_graph_gets_no_fill() {
        let mut g = VariableGraph::new();
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        let order = min_fill_order(&g);
        let t = triangulate(&g, &order);
        assert!(t.fill_edges.is_empty());
        assert_eq!(t.maximal_cliques().len(), 2);
    }

    #[test]
    fn greedy_orders_cover_all_vertices() {
        let g = cyclic_supply_chain();
        for order in [min_fill_order(&g), min_degree_order(&g)] {
            assert_eq!(order.len(), 5);
            let t = triangulate(&g, &order);
            assert!(t.filled.is_chordal());
        }
    }

    #[test]
    fn min_fill_avoids_fill_on_chordal_input() {
        // On a chordal graph min-fill must find a zero-fill (perfect) order.
        let mut g = VariableGraph::new();
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(0), v(2));
        g.add_edge(v(2), v(3));
        let t = triangulate(&g, &min_fill_order(&g));
        assert!(t.fill_edges.is_empty());
    }

    #[test]
    fn partial_order_is_completed() {
        let g = cyclic_supply_chain();
        let t = triangulate(&g, &[v(4)]); // rest auto-appended
        assert_eq!(t.cliques.len(), 5);
        assert!(t.filled.is_chordal());
    }
}
