use std::collections::{BTreeMap, BTreeSet};

use mpf_storage::{Schema, VarId};

/// The variable (co-occurrence) graph of a schema — Theorem 8 of the paper:
/// nodes are the variables appearing in the schema, with an edge between two
/// variables iff they co-occur in some relation.
///
/// A schema is acyclic iff its variable graph is chordal *and* the schema is
/// conformal; for the clique schemas produced by triangulation the chordality
/// test is the operative one, and [`VariableGraph::is_chordal`] implements it
/// via Maximum Cardinality Search (Tarjan & Yannakakis).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VariableGraph {
    adj: BTreeMap<VarId, BTreeSet<VarId>>,
}

impl VariableGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the co-occurrence graph of a set of relation schemas.
    pub fn from_schemas<'a>(schemas: impl IntoIterator<Item = &'a Schema>) -> Self {
        let mut g = Self::new();
        for s in schemas {
            let vars: Vec<VarId> = s.iter().collect();
            for &v in &vars {
                g.adj.entry(v).or_default();
            }
            for i in 0..vars.len() {
                for j in i + 1..vars.len() {
                    g.add_edge(vars[i], vars[j]);
                }
            }
        }
        g
    }

    /// Insert an (undirected) edge; inserts the endpoints if new.
    pub fn add_edge(&mut self, a: VarId, b: VarId) {
        if a == b {
            return;
        }
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    /// Insert an isolated vertex.
    pub fn add_vertex(&mut self, v: VarId) {
        self.adj.entry(v).or_default();
    }

    /// Whether the edge `(a, b)` exists.
    pub fn has_edge(&self, a: VarId, b: VarId) -> bool {
        self.adj.get(&a).is_some_and(|n| n.contains(&b))
    }

    /// Neighbours of `v` (empty if `v` is unknown).
    pub fn neighbors(&self, v: VarId) -> BTreeSet<VarId> {
        self.adj.get(&v).cloned().unwrap_or_default()
    }

    /// All vertices, ascending.
    pub fn vertices(&self) -> Vec<VarId> {
        self.adj.keys().copied().collect()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Remove vertex `v` and its incident edges.
    pub fn remove_vertex(&mut self, v: VarId) {
        if let Some(nbrs) = self.adj.remove(&v) {
            for n in nbrs {
                if let Some(set) = self.adj.get_mut(&n) {
                    set.remove(&v);
                }
            }
        }
    }

    /// Maximum Cardinality Search: visits vertices in decreasing order of
    /// already-visited-neighbour count. Returns the visit order.
    ///
    /// The *reverse* of an MCS order is a perfect elimination order iff the
    /// graph is chordal.
    pub fn mcs_order(&self) -> Vec<VarId> {
        let vertices = self.vertices();
        let mut weight: BTreeMap<VarId, usize> = vertices.iter().map(|&v| (v, 0)).collect();
        let mut visited: BTreeSet<VarId> = BTreeSet::new();
        let mut order = Vec::with_capacity(vertices.len());
        while visited.len() < vertices.len() {
            // Highest weight among unvisited; ties toward smaller VarId.
            let &v = weight
                .iter()
                .filter(|(v, _)| !visited.contains(v))
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(v, _)| v)
                .expect("unvisited vertex exists");
            visited.insert(v);
            order.push(v);
            for n in self.neighbors(v) {
                if !visited.contains(&n) {
                    *weight.get_mut(&n).unwrap() += 1;
                }
            }
        }
        order
    }

    /// Chordality test (Tarjan–Yannakakis): compute an MCS order and verify
    /// it yields zero fill-in.
    pub fn is_chordal(&self) -> bool {
        let order = self.mcs_order();
        let pos: BTreeMap<VarId, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        // For each v, let P(v) = neighbours of v earlier in the MCS order,
        // and u the latest of them: the graph is chordal iff
        // P(v) \ {u} ⊆ neighbours(u) for every v.
        for &v in &order {
            let earlier: Vec<VarId> = self
                .neighbors(v)
                .into_iter()
                .filter(|n| pos[n] < pos[&v])
                .collect();
            if let Some(&u) = earlier.iter().max_by_key(|n| pos[n]) {
                let u_nbrs = self.neighbors(u);
                for &w in &earlier {
                    if w != u && !u_nbrs.contains(&w) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn schema(vars: &[u32]) -> Schema {
        Schema::new(vars.iter().map(|&i| v(i)).collect()).unwrap()
    }

    #[test]
    fn co_occurrence_edges() {
        let g = VariableGraph::from_schemas([&schema(&[0, 1, 2]), &schema(&[2, 3])]);
        assert!(g.has_edge(v(0), v(1)));
        assert!(g.has_edge(v(0), v(2)));
        assert!(g.has_edge(v(1), v(2)));
        assert!(g.has_edge(v(2), v(3)));
        assert!(!g.has_edge(v(0), v(3)));
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn triangle_is_chordal_c4_is_not() {
        let mut triangle = VariableGraph::new();
        triangle.add_edge(v(0), v(1));
        triangle.add_edge(v(1), v(2));
        triangle.add_edge(v(0), v(2));
        assert!(triangle.is_chordal());

        let mut c4 = VariableGraph::new();
        c4.add_edge(v(0), v(1));
        c4.add_edge(v(1), v(2));
        c4.add_edge(v(2), v(3));
        c4.add_edge(v(3), v(0));
        assert!(!c4.is_chordal());

        // Adding a chord makes C4 chordal.
        c4.add_edge(v(0), v(2));
        assert!(c4.is_chordal());
    }

    #[test]
    fn paper_figure_13_supply_chain_is_chordal() {
        // Variable graph of the acyclic supply-chain schema: the chain
        // sid — pid — wid — cid — tid (Figure 13).
        let g = VariableGraph::from_schemas([
            &schema(&[0, 1]), // contracts(pid=0, sid=1)
            &schema(&[2, 3]), // warehouses(wid=2, cid=3)
            &schema(&[4]),    // transporters(tid=4)
            &schema(&[0, 2]), // location(pid, wid)
            &schema(&[3, 4]), // ctdeals(cid, tid)
        ]);
        assert!(g.is_chordal());
    }

    #[test]
    fn paper_stdeals_breaks_chordality() {
        // Adding stdeals(sid=1, tid=4) creates the chordless 5-cycle of the
        // paper's Figure 14 discussion.
        let g = VariableGraph::from_schemas([
            &schema(&[0, 1]),
            &schema(&[2, 3]),
            &schema(&[4]),
            &schema(&[0, 2]),
            &schema(&[3, 4]),
            &schema(&[1, 4]), // stdeals
        ]);
        assert!(!g.is_chordal());
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = VariableGraph::new();
        assert!(g.is_chordal());
        let mut g2 = VariableGraph::new();
        g2.add_vertex(v(5));
        assert!(g2.is_chordal());
        assert_eq!(g2.mcs_order(), vec![v(5)]);
    }

    #[test]
    fn disconnected_chordal_components() {
        let mut g = VariableGraph::new();
        g.add_edge(v(0), v(1));
        g.add_edge(v(2), v(3));
        assert!(g.is_chordal());
        assert_eq!(g.mcs_order().len(), 4);
    }

    #[test]
    fn remove_vertex_cleans_edges() {
        let mut g = VariableGraph::new();
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.remove_vertex(v(1));
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(v(0), v(1)));
    }
}
