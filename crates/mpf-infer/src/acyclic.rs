//! Schema acyclicity via GYO (Graham / Yu–Özsoyoğlu) ear reduction.
//!
//! A relational schema (hypergraph) is **acyclic** iff repeatedly applying
//! the two reduction rules below empties it:
//!
//! 1. remove a variable that appears in exactly one relation (an *isolated*
//!    variable);
//! 2. remove a relation whose variable set is contained in another
//!    relation's (an *ear*).
//!
//! This is the classical test equivalent to the paper's Theorem 7 (a schema
//! is acyclic iff a join tree with the running-intersection property
//! exists); the supply-chain schema of Figure 1 reduces to empty, while
//! adding `stdeals` (Figure 12) leaves an irreducible cycle.

use std::collections::BTreeSet;

use mpf_storage::{Schema, VarId};

/// Whether the schema (as a hypergraph of variable sets) is acyclic.
pub fn is_acyclic<'a>(schemas: impl IntoIterator<Item = &'a Schema>) -> bool {
    let edges: Vec<BTreeSet<VarId>> = schemas
        .into_iter()
        .map(|s| s.iter().collect())
        .collect();
    gyo_reduces_to_empty(edges)
}

/// GYO reduction over raw variable sets.
pub fn gyo_reduces_to_empty(mut edges: Vec<BTreeSet<VarId>>) -> bool {
    // Empty hyperedges carry no structure.
    edges.retain(|e| !e.is_empty());
    loop {
        let mut changed = false;

        // Rule 1: drop variables occurring in exactly one edge.
        let mut counts: std::collections::BTreeMap<VarId, usize> = Default::default();
        for e in &edges {
            for &v in e {
                *counts.entry(v).or_default() += 1;
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|v| counts[v] > 1);
            if e.len() != before {
                changed = true;
            }
        }
        edges.retain(|e| !e.is_empty());

        // Rule 2: drop edges contained in another edge.
        let mut keep = vec![true; edges.len()];
        for i in 0..edges.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..edges.len() {
                if i != j && keep[j] && edges[i].is_subset(&edges[j]) {
                    // On equality keep the lower index.
                    if edges[i] == edges[j] && i < j {
                        continue;
                    }
                    keep[i] = false;
                    changed = true;
                    break;
                }
            }
        }
        let mut it = keep.iter();
        edges.retain(|_| *it.next().unwrap());

        if edges.is_empty() {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(vars: &[u32]) -> BTreeSet<VarId> {
        vars.iter().map(|&i| VarId(i)).collect()
    }

    /// pid=0, sid=1, wid=2, cid=3, tid=4.
    fn supply_chain() -> Vec<BTreeSet<VarId>> {
        vec![
            edge(&[0, 1]), // contracts
            edge(&[2, 3]), // warehouses
            edge(&[4]),    // transporters
            edge(&[0, 2]), // location
            edge(&[3, 4]), // ctdeals
        ]
    }

    #[test]
    fn paper_supply_chain_is_acyclic() {
        assert!(gyo_reduces_to_empty(supply_chain()));
    }

    #[test]
    fn stdeals_makes_it_cyclic() {
        let mut edges = supply_chain();
        edges.push(edge(&[1, 4])); // stdeals(sid, tid)
        assert!(!gyo_reduces_to_empty(edges));
    }

    #[test]
    fn triangle_of_binary_relations_is_cyclic() {
        assert!(!gyo_reduces_to_empty(vec![
            edge(&[0, 1]),
            edge(&[1, 2]),
            edge(&[0, 2]),
        ]));
        // But covered by a ternary relation it becomes acyclic (conformal).
        assert!(gyo_reduces_to_empty(vec![
            edge(&[0, 1]),
            edge(&[1, 2]),
            edge(&[0, 2]),
            edge(&[0, 1, 2]),
        ]));
    }

    #[test]
    fn trivial_cases() {
        assert!(gyo_reduces_to_empty(vec![]));
        assert!(gyo_reduces_to_empty(vec![edge(&[0])]));
        assert!(gyo_reduces_to_empty(vec![edge(&[0, 1, 2])]));
        assert!(gyo_reduces_to_empty(vec![edge(&[]), edge(&[1])]));
    }

    #[test]
    fn duplicate_edges_reduce() {
        assert!(gyo_reduces_to_empty(vec![edge(&[0, 1]), edge(&[0, 1])]));
    }

    #[test]
    fn schema_api() {
        let s1 = Schema::new(vec![VarId(0), VarId(1)]).unwrap();
        let s2 = Schema::new(vec![VarId(1), VarId(2)]).unwrap();
        assert!(is_acyclic([&s1, &s2]));
    }
}
